-- Window geometry arithmetic.
area wh = fst wh * snd wh
main = lift (\wh -> (area wh, fst wh - snd wh)) Window.dimensions
