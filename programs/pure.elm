-- A non-reactive program: main is a plain value.
fib = \n -> if n < 2 then n else n
main = (fib 10) * 6 + 2
