-- An ADT-driven state machine: the traffic light cycles on clicks.
data Light = Red | Green | Blue
next l = case l of | Red -> Green | Green -> Blue | Blue -> Red
show l = case l of | Red -> "red" | Green -> "green" | Blue -> "blue"
main = lift show (foldp (\c l -> next l) Red Mouse.clicks)
