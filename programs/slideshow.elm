-- Paper Fig. 14: a simple slide-show.
pics = ["shells.jpg", "car.jpg", "book.jpg"]
display i = ith (i % length pics) pics
count s = foldp (\x c -> c + 1) 0 s
index1 = count Mouse.clicks
main = lift display index1
