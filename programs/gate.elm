-- Conditional display: pick between two views based on the shift key.
label s = if s then "recording" else "idle"
truthy n = n /= 0
main = lift (\s -> label (truthy s)) Keyboard.shift
