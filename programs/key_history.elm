-- Accumulate the last pressed keys in a list.
main = foldp (\k hist -> k :: hist) [] Keyboard.lastPressed
