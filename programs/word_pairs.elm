-- Paper §3.3.2: pair words with their (simulated) translations,
-- asynchronously, alongside the live mouse position.
toFrench w = "fr:" ++ w
wordPairs = lift2 (\a b -> (a, b)) Words.input (lift toFrench Words.input)
main = lift2 (\p m -> (p, m)) (async wordPairs) Mouse.position
