-- §4.2 library primitives composed: count distinct even mouse positions
-- while sampling the window width on clicks.
evens = keepIf (\n -> n % 2 == 0) 0 Mouse.x
deduped = dropRepeats evens
sampled = sampleOn Mouse.clicks Window.width
main = foldp (\v acc -> acc + v) 0 (merge deduped sampled)
