-- Paper Fig. 7: relative x-position of the mouse.
main = lift2 (\y z -> (100 * y) / z) Mouse.x Window.width
