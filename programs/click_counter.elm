-- Paper §3.1: count key presses / clicks with foldp.
main = foldp (\k c -> c + 1) 0 Mouse.clicks
