-- Fig. 13's Keyboard.arrows record moves a character.
step a pos = {x = pos.x + a.x * 10, y = pos.y + a.y * 10}
main = foldp step {x = 0, y = 0} Keyboard.arrows
