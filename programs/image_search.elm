-- Paper §2 Example 3's wiring (the HTTP fetch is simulated by string work;
-- the Rust harness substitutes the real mock service).
requestTag t = "GET /search?tags=" ++ t
getImage tags = lift (\t -> requestTag t ++ ".jpg") tags
scene = \a -> \b -> (a, b)
main = lift3 (\i p m -> (i, (p, m))) Input.text Mouse.position (async (getImage Input.text))
