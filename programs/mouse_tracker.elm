-- Paper §2 Example 2: display the mouse position.
main = lift (\p -> p) Mouse.position
