-- Accumulate elapsed time from frame deltas.
main = foldp (\dt total -> total + dt) 0.0 Time.fps
