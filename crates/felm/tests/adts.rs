//! Algebraic data types and `case` — full Elm's `data` declarations,
//! including the **recursive simple types** the paper names in §4
//! ("Elm's type system allows let-polymorphism and recursive simple
//! types"). Covered end to end: declaration validation, both type
//! systems, both interpreters, signal graphs, exhaustiveness.

use elm_runtime::{changed_values, Occurrence, SyncRuntime, Value};
use felm::ast::Type;
use felm::check::type_of_with;
use felm::env::{Adts, InputEnv};
use felm::eval::{normalize, DEFAULT_FUEL};
use felm::infer::infer_type_with;
use felm::parser::{parse_expr, parse_program};
use felm::pipeline::{compile_source, CompileError, ProgramResult};
use felm::translate::expr_to_value;

/// Parses declarations + expression, resolves, and returns everything.
fn setup(data: &str, expr: &str) -> (Adts, felm::ast::Expr) {
    let prog = parse_program(&format!("{data}\nmain = {expr}")).unwrap();
    let adts = Adts::from_defs(&prog.datas).unwrap();
    let e = adts.resolve(&prog.to_expr().unwrap()).unwrap();
    (adts, e)
}

fn eval_value(data: &str, expr: &str) -> Value {
    let (_adts, e) = setup(data, expr);
    let n = normalize(&e, DEFAULT_FUEL).unwrap();
    expr_to_value(&n).unwrap()
}

const MAYBE: &str = "data MaybeInt = Just Int | Nothing";
const COLOR: &str = "data Color = Red | Green | Blue";
const INTLIST: &str = "data IntList = Nil | Cons Int IntList";

#[test]
fn declarations_validate() {
    assert!(Adts::from_defs(&parse_program(&format!("{MAYBE}\nmain = 1")).unwrap().datas).is_ok());
    // Errors.
    for bad in [
        "data Int = X",            // reserved name
        "data A = X\ndata A = Y",  // duplicate type
        "data A = X\ndata B = X",  // duplicate constructor
        "data A = X (Signal Int)", // non-simple argument
        "data A = X Unknown",      // unknown type reference
    ] {
        let prog = parse_program(&format!("{bad}\nmain = 1")).unwrap();
        assert!(Adts::from_defs(&prog.datas).is_err(), "{bad}");
    }
    // Recursive references are fine.
    let prog = parse_program(&format!("{INTLIST}\nmain = 1")).unwrap();
    assert!(Adts::from_defs(&prog.datas).is_ok());
}

#[test]
fn constructors_type_as_curried_functions() {
    let env = InputEnv::standard();
    let (adts, _) = setup(MAYBE, "1");
    let just = adts.resolve(&parse_expr("Just").unwrap()).unwrap();
    let t = infer_type_with(&env, &adts, &just).unwrap();
    assert_eq!(t, Type::fun(Type::Int, Type::Named("MaybeInt".into())));
    let app = adts.resolve(&parse_expr("Just 3").unwrap()).unwrap();
    assert_eq!(
        type_of_with(&env, &adts, &normalize(&app, 100).unwrap()).unwrap(),
        Type::Named("MaybeInt".into())
    );
}

#[test]
fn case_evaluates_in_both_interpreters() {
    let expr = "case Just 41 of | Just n -> n + 1 | Nothing -> 0";
    assert_eq!(eval_value(MAYBE, expr), Value::Int(42));

    // Big step agrees.
    let (_adts, e) = setup(MAYBE, expr);
    let big = felm::eval_big::eval(&felm::eval_big::Env::empty(), &e).unwrap();
    assert_eq!(felm::eval_big::to_runtime_value(&big), Some(Value::Int(42)));

    assert_eq!(
        eval_value(MAYBE, "case Nothing of | Just n -> n | Nothing -> 99"),
        Value::Int(99)
    );
    // Catch-all variable binds the whole value.
    assert_eq!(
        eval_value(
            MAYBE,
            "case Just 7 of | Nothing -> Nothing | other -> other"
        ),
        Value::tagged("Just", [Value::Int(7)])
    );
}

#[test]
fn recursive_data_types_work() {
    // Sum an IntList with an explicit recursive fold via let-bound
    // recursion … FElm has no recursion, so unroll manually: three deep.
    let expr = "\
case Cons 1 (Cons 2 (Cons 3 Nil)) of \
| Cons a rest -> a + (case rest of \
    | Cons b rest2 -> b + (case rest2 of | Cons c more -> c | Nil -> 0) \
    | Nil -> 0) \
| Nil -> 0";
    assert_eq!(eval_value(INTLIST, expr), Value::Int(6));
}

#[test]
fn exhaustiveness_is_enforced() {
    let env = InputEnv::standard();
    let (adts, _) = setup(COLOR, "1");
    let incomplete = adts
        .resolve(&parse_expr("\\(c : Color) -> case c of | Red -> 1 | Green -> 2").unwrap())
        .unwrap();
    let err = infer_type_with(&env, &adts, &incomplete).unwrap_err();
    assert!(err.message.contains("missing Blue"), "{}", err.message);
    let err = type_of_with(&env, &adts, &incomplete).unwrap_err();
    assert!(err.message.contains("missing Blue"), "{}", err.message);

    // A catch-all closes it.
    let complete = adts
        .resolve(&parse_expr("\\(c : Color) -> case c of | Red -> 1 | _ -> 0").unwrap())
        .unwrap();
    assert!(infer_type_with(&env, &adts, &complete).is_ok());
}

#[test]
fn case_type_errors_are_caught() {
    let env = InputEnv::standard();
    let (adts, _) = setup(&format!("{MAYBE}\n{COLOR}"), "1");
    for bad in [
        // Mixed ADTs in one case.
        "\\(m : MaybeInt) -> case m of | Just n -> 1 | Red -> 2",
        // Branch result types disagree.
        "case Just 1 of | Just n -> n | Nothing -> \"s\"",
        // Wrong binder count.
        "case Just 1 of | Just a b -> a | Nothing -> 0",
        // Unknown constructor.
        "case Mystery of | _ -> 1",
    ] {
        let resolved = adts.resolve(&parse_expr(bad).unwrap());
        let failed = match resolved {
            Err(_) => true,
            Ok(e) => infer_type_with(&env, &adts, &e).is_err(),
        };
        assert!(failed, "{bad} should fail");
    }
}

#[test]
fn adts_flow_through_signals() {
    // A state machine over clicks: Red -> Green -> Blue -> Red.
    let src = "\
data Light = Red | Green | Blue
next l = case l of | Red -> Green | Green -> Blue | Blue -> Red
show l = case l of | Red -> \"red\" | Green -> \"green\" | Blue -> \"blue\"
main = lift show (foldp (\\c l -> next l) Red Mouse.clicks)";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    assert_eq!(compiled.program_type, Type::signal(Type::Str));
    let g = compiled.graph().unwrap();
    let clicks = g.input_named("Mouse.clicks").unwrap();
    let outs =
        SyncRuntime::run_trace(g, (0..4).map(|_| Occurrence::input(clicks, Value::Unit))).unwrap();
    assert_eq!(
        changed_values(&outs),
        ["green", "blue", "red", "green"].map(Value::str).to_vec()
    );
}

#[test]
fn first_class_constructors_lift_over_signals() {
    // `Just` used as a function — the eta-expansion at work.
    let src = "\
data MaybeInt = Just Int | Nothing
orZero m = case m of | Just n -> n | Nothing -> 0
main = lift (\\x -> orZero (Just x) + orZero Nothing) Mouse.x";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let g = compiled.graph().unwrap();
    let mx = g.input_named("Mouse.x").unwrap();
    let outs = SyncRuntime::run_trace(g, [Occurrence::input(mx, 21i64)]).unwrap();
    assert_eq!(changed_values(&outs), vec![Value::Int(21)]);
}

#[test]
fn pure_adt_programs_produce_tagged_values() {
    let src = format!("{MAYBE}\nmain = Just (6 * 7)");
    let compiled = compile_source(&src, &InputEnv::standard()).unwrap();
    let ProgramResult::Value(v) = &compiled.result else {
        panic!()
    };
    assert_eq!(v, &Value::tagged("Just", [Value::Int(42)]));
}

#[test]
fn unknown_constructors_error_at_resolution() {
    let err = compile_source("main = Bogus 1", &InputEnv::standard()).unwrap_err();
    let CompileError::Type(t) = err else {
        panic!("expected a type error")
    };
    assert!(t.message.contains("unknown constructor"), "{}", t.message);
}
