//! The §4.2 library signal primitives in FElm source: `merge`,
//! `sampleOn`, `dropRepeats`, `keepIf` — typed, evaluated, translated,
//! and executed.

use elm_runtime::{changed_values, Occurrence, SyncRuntime, Value};
use felm::ast::Type;
use felm::check::type_of;
use felm::env::InputEnv;
use felm::infer::infer_type;
use felm::parser::{parse_expr, parse_program};
use felm::pipeline::compile_source;
use felm::pretty::pretty;

#[test]
fn primitives_type_check_and_infer() {
    let env = InputEnv::standard();
    let cases = [
        ("merge Mouse.x Window.width", Type::signal(Type::Int)),
        (
            "sampleOn Mouse.clicks Mouse.position",
            Type::signal(Type::pair(Type::Int, Type::Int)),
        ),
        ("dropRepeats Keyboard.shift", Type::signal(Type::Int)),
        (
            "keepIf (\\(n : Int) -> n > 100) 0 Mouse.x",
            Type::signal(Type::Int),
        ),
    ];
    for (src, want) in cases {
        let e = parse_expr(src).unwrap();
        assert_eq!(type_of(&env, &e).unwrap(), want, "checker: {src}");
        assert_eq!(infer_type(&env, &e).unwrap(), want, "inference: {src}");
    }
    for bad in [
        "merge Mouse.x Words.input",       // payloads disagree
        "merge Mouse.x 3",                 // non-signal operand
        "keepIf (\\n -> n) \"s\" Mouse.x", // base type mismatch
        "dropRepeats 5",
        "sampleOn Mouse.clicks", // parse: missing operand
    ] {
        let result = parse_expr(bad)
            .map_err(|e| e.to_string())
            .and_then(|e| infer_type(&env, &e).map_err(|e| e.to_string()));
        assert!(result.is_err(), "{bad} should fail");
    }
}

#[test]
fn primitives_pretty_print_round_trip() {
    for src in [
        "merge Mouse.x Mouse.y",
        "sampleOn Mouse.clicks (dropRepeats Mouse.position)",
        "keepIf (\\n -> n % 2 == 0) 0 Mouse.x",
    ] {
        let e = parse_expr(src).unwrap();
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| panic!("{printed}: {err}"));
        assert_eq!(pretty(&reparsed), printed, "{src}");
    }
}

#[test]
fn merge_runs_left_biased() {
    let src = "main = merge Mouse.x Window.width";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let g = compiled.graph().unwrap();
    let mx = g.input_named("Mouse.x").unwrap();
    let ww = g.input_named("Window.width").unwrap();
    let outs = SyncRuntime::run_trace(
        g,
        [
            Occurrence::input(mx, 1i64),
            Occurrence::input(ww, 500i64),
            Occurrence::input(mx, 2i64),
        ],
    )
    .unwrap();
    assert_eq!(
        changed_values(&outs),
        vec![Value::Int(1), Value::Int(500), Value::Int(2)]
    );
}

#[test]
fn sample_on_clicks_samples_the_mouse() {
    let src = "main = sampleOn Mouse.clicks Mouse.position";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let g = compiled.graph().unwrap();
    let clicks = g.input_named("Mouse.clicks").unwrap();
    let pos = g.input_named("Mouse.position").unwrap();
    let at = |x: i64, y: i64| Value::pair(Value::Int(x), Value::Int(y));
    let outs = SyncRuntime::run_trace(
        g,
        [
            Occurrence::input(pos, at(1, 1)),
            Occurrence::input(pos, at(2, 2)),
            Occurrence::input(clicks, Value::Unit),
            Occurrence::input(pos, at(3, 3)),
            Occurrence::input(clicks, Value::Unit),
        ],
    )
    .unwrap();
    assert_eq!(changed_values(&outs), vec![at(2, 2), at(3, 3)]);
}

#[test]
fn keep_if_filters_with_an_felm_predicate() {
    let src = "main = keepIf (\\n -> n % 2 == 0) 0 Mouse.x";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let g = compiled.graph().unwrap();
    let mx = g.input_named("Mouse.x").unwrap();
    let outs =
        SyncRuntime::run_trace(g, [1i64, 2, 3, 4, 5, 6].map(|v| Occurrence::input(mx, v))).unwrap();
    assert_eq!(
        changed_values(&outs),
        vec![Value::Int(2), Value::Int(4), Value::Int(6)]
    );
}

#[test]
fn drop_repeats_dedupes() {
    let src = "main = dropRepeats Keyboard.shift";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let g = compiled.graph().unwrap();
    let shift = g.input_named("Keyboard.shift").unwrap();
    let outs =
        SyncRuntime::run_trace(g, [1i64, 1, 0, 0, 1].map(|v| Occurrence::input(shift, v))).unwrap();
    assert_eq!(
        changed_values(&outs),
        vec![Value::Int(1), Value::Int(0), Value::Int(1)]
    );
}

#[test]
fn primitives_compose_with_the_core_forms() {
    // A whole program mixing everything: gated, deduped, folded.
    let src = "\
evens = keepIf (\\n -> n % 2 == 0) 0 Mouse.x
deduped = dropRepeats evens
main = foldp (\\v acc -> acc + v) 0 (merge deduped (sampleOn Mouse.clicks Window.width))";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    assert_eq!(compiled.program_type, Type::signal(Type::Int));
    let g = compiled.graph().unwrap();
    let mx = g.input_named("Mouse.x").unwrap();
    let clicks = g.input_named("Mouse.clicks").unwrap();
    let outs = SyncRuntime::run_trace(
        g,
        vec![
            Occurrence::input(mx, 2i64),            // +2
            Occurrence::input(mx, 2i64),            // deduped
            Occurrence::input(mx, 4i64),            // +4
            Occurrence::input(clicks, Value::Unit), // +1024 (window width)
            Occurrence::input(mx, 5i64),            // filtered
        ],
    )
    .unwrap();
    assert_eq!(
        changed_values(&outs).last(),
        Some(&Value::Int(2 + 4 + 1024))
    );
}

#[test]
fn primitives_under_async_still_split_subgraphs() {
    let src = "main = lift2 (\\a b -> (a, b)) (async (dropRepeats Words.input)) Mouse.x";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    let g = compiled.graph().unwrap();
    assert_eq!(g.async_sources().len(), 1);
    let owner = g.subgraph_owner();
    let secondary = owner.iter().filter(|o| o.is_some()).count();
    assert_eq!(secondary, 2, "Words.input + dropRepeats are secondary");
}

#[test]
fn whole_programs_with_prims_parse_via_program_syntax() {
    let prog =
        parse_program("gate = keepIf (\\n -> n > 0) 0 Mouse.x\nmain = merge gate Mouse.y").unwrap();
    let e = prog.to_expr().unwrap();
    assert_eq!(
        infer_type(&InputEnv::standard(), &e).unwrap(),
        Type::signal(Type::Int)
    );
}
