//! Lists — the full-language extension (§4: "Elm libraries provide data
//! structures such as options, lists, sets, and dictionaries"), exercised
//! through every pipeline stage, culminating in the *verbatim-shape*
//! Fig. 14 slide-show program.

use elm_runtime::{changed_values, Occurrence, SyncRuntime, Value};
use felm::ast::Type;
use felm::check::type_of;
use felm::env::InputEnv;
use felm::eval::{normalize, DEFAULT_FUEL};
use felm::infer::infer_type;
use felm::parser::{parse_expr, parse_program};
use felm::pipeline::compile_source;
use felm::pretty::pretty;
use felm::translate::expr_to_value;

fn eval_value(src: &str) -> Value {
    let e = parse_expr(src).unwrap();
    let n = normalize(&e, DEFAULT_FUEL).unwrap();
    expr_to_value(&n).unwrap()
}

fn ints(xs: &[i64]) -> Value {
    Value::list(xs.iter().map(|n| Value::Int(*n)))
}

#[test]
fn list_literals_and_primitives_evaluate() {
    assert_eq!(eval_value("[1, 2, 3]"), ints(&[1, 2, 3]));
    assert_eq!(eval_value("[]"), Value::list([]));
    assert_eq!(eval_value("head [7, 8]"), Value::Int(7));
    assert_eq!(eval_value("tail [7, 8, 9]"), ints(&[8, 9]));
    assert_eq!(eval_value("length [1, 2, 3, 4]"), Value::Int(4));
    assert_eq!(eval_value("isEmpty []"), Value::Int(1));
    assert_eq!(eval_value("isEmpty [0]"), Value::Int(0));
    assert_eq!(eval_value("ith 1 [10, 20, 30]"), Value::Int(20));
    assert_eq!(eval_value("0 :: 1 :: [2, 3]"), ints(&[0, 1, 2, 3]));
    assert_eq!(eval_value("[1 + 1, 2 * 2]"), ints(&[2, 4]));
    assert_eq!(
        eval_value("[\"a\", \"b\" ++ \"c\"]"),
        Value::list([Value::str("a"), Value::str("bc")])
    );
}

#[test]
fn list_runtime_errors_are_stuck() {
    for src in [
        "head []",
        "tail []",
        "ith 5 [1]",
        "ith (0 - 1) [1]",
        "1 :: 2",
    ] {
        let e = parse_expr(src).unwrap();
        assert!(
            normalize(&e, DEFAULT_FUEL).is_err(),
            "{src} should be stuck"
        );
    }
}

#[test]
fn list_types_check_and_infer() {
    let env = InputEnv::standard();
    let cases = [
        ("[1, 2]", Type::list(Type::Int)),
        ("[\"a\"]", Type::list(Type::Str)),
        ("[(1, 2)]", Type::list(Type::pair(Type::Int, Type::Int))),
        ("head [1]", Type::Int),
        ("tail [1]", Type::list(Type::Int)),
        ("length [\"x\"]", Type::Int),
        ("isEmpty [1]", Type::Int),
        ("ith 0 [\"a\", \"b\"]", Type::Str),
        ("1 :: [2]", Type::list(Type::Int)),
    ];
    for (src, want) in cases {
        let e = parse_expr(src).unwrap();
        assert_eq!(type_of(&env, &e).unwrap(), want, "checker: {src}");
        assert_eq!(infer_type(&env, &e).unwrap(), want, "inference: {src}");
    }
    // Inference picks the element type of [] from context.
    assert_eq!(
        infer_type(&env, &parse_expr("1 :: []").unwrap()).unwrap(),
        Type::list(Type::Int)
    );
    // Errors.
    for bad in [
        "[1, \"x\"]",
        "head 3",
        "ith \"a\" [1]",
        "\"s\" :: [1]",
        "[Mouse.x]",
    ] {
        let e = parse_expr(bad).unwrap();
        assert!(infer_type(&env, &e).is_err(), "{bad} should not type");
    }
}

#[test]
fn cons_is_right_associative() {
    let e = parse_expr("1 :: 2 :: []").unwrap();
    // 1 :: (2 :: []) evaluates; left association would be ill-typed.
    let n = normalize(&e, DEFAULT_FUEL).unwrap();
    assert_eq!(expr_to_value(&n), Some(ints(&[1, 2])));
}

#[test]
fn lists_pretty_print_round_trip() {
    for src in [
        "[1, 2, 3]",
        "head (tail [1, 2])",
        "ith (1 + 1) [10, 20, 30]",
        "(1 :: [2]) == (1 :: [2])",
        "\\xs -> length xs + 1",
    ] {
        let e = parse_expr(src).unwrap();
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| panic!("{printed}: {err}"));
        assert_eq!(pretty(&reparsed), printed, "{src}");
    }
}

#[test]
fn eq_on_lists_is_not_defined() {
    // Structural equality is only for primitives in FElm's ⊕ set; the
    // test above used == on cons-results? No: that case is Int lists —
    // verify it is actually rejected by the type system.
    let env = InputEnv::standard();
    let e = parse_expr("[1] == [1]").unwrap();
    assert!(infer_type(&env, &e).is_err());
}

/// Fig. 14, faithful shape: pics list, `ith (i mod length pics) pics`,
/// `count` via foldp, slide-show driven by clicks.
#[test]
fn fig14_slideshow_program_runs_end_to_end() {
    let src = r#"
pics = ["shells.jpg", "car.jpg", "book.jpg"]
display i = ith (i % length pics) pics
count s = foldp (\x c -> c + 1) 0 s
index1 = count Mouse.clicks
main = lift display index1
"#;
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    assert_eq!(compiled.program_type, Type::signal(Type::Str));
    let graph = compiled.graph().unwrap();
    let clicks = graph.input_named("Mouse.clicks").unwrap();
    let outs = SyncRuntime::run_trace(
        graph,
        (0..5).map(|_| Occurrence::input(clicks, Value::Unit)),
    )
    .unwrap();
    assert_eq!(
        changed_values(&outs),
        ["car.jpg", "book.jpg", "shells.jpg", "car.jpg", "book.jpg"]
            .map(Value::str)
            .to_vec()
    );
}

#[test]
fn signals_of_lists_work() {
    // A foldp accumulating a history list — `Signal [Int]`.
    let src = "main = foldp (\\k hist -> k :: hist) [] Keyboard.lastPressed";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    assert_eq!(compiled.program_type, Type::signal(Type::list(Type::Int)));
    let graph = compiled.graph().unwrap();
    let keys = graph.input_named("Keyboard.lastPressed").unwrap();
    let outs =
        SyncRuntime::run_trace(graph, [65i64, 66, 67].map(|k| Occurrence::input(keys, k))).unwrap();
    assert_eq!(changed_values(&outs).last(), Some(&ints(&[67, 66, 65])));
}

#[test]
fn lists_of_signals_are_rejected() {
    let env = InputEnv::standard();
    let e = parse_program("main = [Mouse.x, Mouse.y]")
        .unwrap()
        .to_expr()
        .unwrap();
    assert!(
        infer_type(&env, &e).is_err(),
        "lists of signals violate stratification"
    );
}
