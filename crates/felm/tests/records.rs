//! Records — the full-language extension ("Elm … has extensible records",
//! §4). This reproduction implements *non-extensible* records (literals,
//! field access, structural typing); row polymorphism is out of scope and
//! documented as a delta in DESIGN.md.

use elm_runtime::{changed_values, Occurrence, SyncRuntime, Value};
use felm::ast::Type;
use felm::check::type_of;
use felm::env::InputEnv;
use felm::eval::{normalize, DEFAULT_FUEL};
use felm::infer::infer_type;
use felm::parser::parse_expr;
use felm::pipeline::compile_source;
use felm::pretty::pretty;
use felm::translate::expr_to_value;

fn eval_value(src: &str) -> Value {
    let e = parse_expr(src).unwrap();
    let n = normalize(&e, DEFAULT_FUEL).unwrap();
    expr_to_value(&n).unwrap()
}

fn point(x: i64, y: i64) -> Value {
    Value::record([
        ("x".to_string(), Value::Int(x)),
        ("y".to_string(), Value::Int(y)),
    ])
}

#[test]
fn record_literals_and_access_evaluate() {
    assert_eq!(eval_value("{x = 1, y = 2}"), point(1, 2));
    assert_eq!(eval_value("{x = 1 + 1, y = 2 * 3}.y"), Value::Int(6));
    assert_eq!(eval_value("{}"), Value::record([]));
    // Nested access chains.
    assert_eq!(
        eval_value("{inner = {x = 7, y = 8}, tag = \"p\"}.inner.x"),
        Value::Int(7)
    );
    // Records in lists.
    assert_eq!(
        eval_value("ith 1 [{x = 1, y = 1}, {x = 2, y = 2}]"),
        point(2, 2)
    );
}

#[test]
fn record_types_check_and_infer() {
    let env = InputEnv::standard();
    let pt = Type::record([("x".to_string(), Type::Int), ("y".to_string(), Type::Int)]);
    for (src, want) in [
        ("{x = 1, y = 2}", pt.clone()),
        ("{x = 1, y = 2}.x", Type::Int),
        ("{s = \"hi\"}.s", Type::Str),
        (
            "\\(r : {x : Int, y : Int}) -> r.x + r.y",
            Type::fun(pt.clone(), Type::Int),
        ),
    ] {
        let e = parse_expr(src).unwrap();
        assert_eq!(type_of(&env, &e).unwrap(), want, "checker: {src}");
        assert_eq!(infer_type(&env, &e).unwrap(), want, "inference: {src}");
    }
    // Field order does not matter (structural, sorted).
    let a = infer_type(&env, &parse_expr("{y = 2, x = 1}").unwrap()).unwrap();
    assert_eq!(a, pt);
    // Errors.
    for bad in [
        "{x = 1}.y",
        "{x = 1, x = 2}",
        "3 .x",
        "{x = Mouse.x}",
        "\\r -> r.x", // needs an annotation without row polymorphism
    ] {
        let e = parse_expr(bad).unwrap();
        assert!(infer_type(&env, &e).is_err(), "{bad} should not type");
    }
}

#[test]
fn records_pretty_print_round_trip() {
    for src in [
        "{x = 1, y = 2}",
        "{p = {x = 0, y = 0}, label = \"origin\"}.p.x",
        "\\(r : {x : Int}) -> r.x",
    ] {
        let e = parse_expr(src).unwrap();
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| panic!("{printed}: {err}"));
        assert_eq!(pretty(&reparsed), printed, "{src}");
    }
}

#[test]
fn fig13_arrows_record_program_runs() {
    // Keyboard.arrows : Signal {x : Int, y : Int} — move a character.
    let src = "\
step a pos = (fst pos + a.x, snd pos + a.y)
main = foldp step (0, 0) Keyboard.arrows";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    assert_eq!(
        compiled.program_type,
        Type::signal(Type::pair(Type::Int, Type::Int))
    );
    let graph = compiled.graph().unwrap();
    let arrows = graph.input_named("Keyboard.arrows").unwrap();
    let push = |x: i64, y: i64| {
        Occurrence::input(
            arrows,
            Value::record([
                ("x".to_string(), Value::Int(x)),
                ("y".to_string(), Value::Int(y)),
            ]),
        )
    };
    let outs = SyncRuntime::run_trace(graph, [push(1, 0), push(1, 1), push(0, -1)]).unwrap();
    assert_eq!(
        changed_values(&outs).last(),
        Some(&Value::pair(Value::Int(2), Value::Int(0)))
    );
}

#[test]
fn inference_handles_annotated_record_params_in_programs() {
    // `step` gets its record type from Keyboard.arrows via unification —
    // no annotation needed when the record flows from an input.
    let src = "main = lift (\\a -> a) Keyboard.arrows";
    let compiled = compile_source(src, &InputEnv::standard()).unwrap();
    assert_eq!(
        compiled.program_type.to_string(),
        "Signal {x : Int, y : Int}"
    );
}

#[test]
fn records_of_signals_are_rejected() {
    let env = InputEnv::standard();
    let e = parse_expr("{bad = Mouse.x}").unwrap();
    assert!(infer_type(&env, &e).is_err());
    assert!(type_of(&env, &e).is_err());
}
