//! Satellite property: fueled evaluation is *transparent* when the budget
//! suffices and *deterministic* when it does not.
//!
//! * With a sufficient budget, metered evaluation returns bit-identical
//!   results to unmetered evaluation — across both the big-step
//!   interpreter and the Fig. 6 small-step machine.
//! * With a fixed insufficient budget, `OutOfFuel` (and the fuel consumed
//!   before it) is a pure function of the term and the budget: two runs
//!   agree exactly. This is what makes trapped events safe to roll back
//!   and replay — governance can never diverge recovered state.
//!
//! Plus end-to-end checks that a runaway `twice`-tower and a
//! string-doubling allocator bomb trap inside a governed signal runtime,
//! with the event rolled back and the session healthy afterwards.

use felm::budget::{Budget, Meter, Trap};
use felm::env::InputEnv;
use felm::eval::{normalize, normalize_metered, EvalError, DEFAULT_FUEL};
use felm::eval_big::{eval, eval_metered, Env, RtValue};
use felm::parser::parse_expr;
use felm::pipeline::compile_source;
use felm::translate::expr_to_value;

use elm_runtime::{EventLimits, Occurrence, SyncRuntime, TrapKind, Value};
use proptest::prelude::*;

/// Closed, well-typed-by-construction integer expressions: arithmetic,
/// `let`, fully-applied lambdas, pairs, and list primitives — total (no
/// stuck states: division by zero is defined as 0, lists are non-empty).
fn int_expr() -> BoxedStrategy<String> {
    fn gen(rng: &mut rand::rngs::StdRng, depth: usize) -> String {
        use rand::Rng;
        if depth == 0 || rng.gen_bool(0.25) {
            // Non-negative literals only: unary minus is not valid in
            // every expression position. Subtraction makes negatives.
            return format!("{}", rng.gen_range(0i64..10));
        }
        let d = depth - 1;
        match rng.gen_range(0u32..8) {
            0 => {
                let op = ["+", "-", "*", "/"][rng.gen_range(0usize..4)];
                format!("({} {op} {})", gen(rng, d), gen(rng, d))
            }
            1 => format!("(let x = {} in ({} + x))", gen(rng, d), gen(rng, d)),
            2 => format!("((\\x y -> x + y * 2) {} {})", gen(rng, d), gen(rng, d)),
            3 => format!("(fst ({}, {}))", gen(rng, d), gen(rng, d)),
            4 => format!("(snd ({}, {}))", gen(rng, d), gen(rng, d)),
            5 => format!("(head [{}, 0])", gen(rng, d)),
            6 => {
                let a = gen(rng, d);
                format!("(length [{a}, {a}, 1])")
            }
            _ => {
                let c = gen(rng, d);
                format!("(if {c} then {} else 1)", gen(rng, d))
            }
        }
    }
    BoxedStrategy::from_fn(|rng| gen(rng, 4))
}

fn big(src: &str, meter: &mut Meter) -> Result<RtValue, EvalError> {
    let e = parse_expr(src).expect("generated expression parses");
    eval_metered(&Env::empty(), &e, meter)
}

/// A `twice`-tower: `k` characters of source demanding `2^k` β-steps.
/// Monomorphic (`t : (Int -> Int) -> Int -> Int`), so it passes the
/// checker; only fuel can stop it in reasonable time.
fn runaway_tower(k: usize) -> String {
    let mut f = String::from("(\\n -> n + 1)");
    for _ in 0..k {
        f = format!("(t {f})");
    }
    format!("(let t = \\f y -> f (f y) in {f} 0)")
}

/// A string-doubling chain allocating `8 * 2^k` bytes.
fn allocator_bomb(k: usize) -> String {
    let mut s = String::from("\"88888888\"");
    for _ in 0..k {
        s = format!("(d {s})");
    }
    format!("(let d = \\s -> s ++ s in length [{s}])")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sufficient_budget_is_transparent_in_both_evaluators(src in int_expr()) {
        let e = parse_expr(&src).expect("generated expression parses");

        // Big-step: unmetered vs unlimited meter vs exactly-sufficient
        // budget — all three bit-identical.
        let plain = eval(&Env::empty(), &e).expect("total expression");
        let mut probe = Meter::unlimited();
        let unlimited = eval_metered(&Env::empty(), &e, &mut probe).unwrap();
        prop_assert_eq!(&plain, &unlimited);
        let exact = Budget {
            fuel: probe.fuel_used(),
            max_alloc_cells: probe.alloc_cells(),
            max_depth: u64::MAX,
        };
        let exact_run = big(&src, &mut Meter::new(exact)).expect("exact budget suffices");
        prop_assert_eq!(&plain, &exact_run);

        // Small-step: compare through the data universe (normal forms are
        // ground values here), sidestepping fresh-name counters.
        let spec = normalize(&e, DEFAULT_FUEL).expect("total expression");
        let mut meter = Meter::unlimited();
        let spec_metered = normalize_metered(&e, &mut meter).expect("unlimited budget");
        let v = expr_to_value(&spec);
        prop_assert!(v.is_some(), "normal form is data");
        prop_assert_eq!(v, expr_to_value(&spec_metered));
    }

    #[test]
    fn out_of_fuel_is_deterministic_for_a_fixed_budget(src in int_expr(), fuel in 0u64..64) {
        let budget = Budget::with_fuel(fuel);
        let mut m1 = Meter::new(budget);
        let mut m2 = Meter::new(budget);
        let r1 = big(&src, &mut m1);
        let r2 = big(&src, &mut m2);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(m1.fuel_used(), m2.fuel_used());
        if let Err(err) = r1 {
            prop_assert_eq!(err, EvalError::Trap(Trap::OutOfFuel));
        }

        // Small-step machine, same property.
        let e = parse_expr(&src).unwrap();
        let mut s1 = Meter::new(budget);
        let mut s2 = Meter::new(budget);
        let n1 = normalize_metered(&e, &mut s1);
        let n2 = normalize_metered(&e, &mut s2);
        prop_assert_eq!(n1.is_err(), n2.is_err());
        prop_assert_eq!(s1.fuel_used(), s2.fuel_used());
        if let (Ok(a), Ok(b)) = (&n1, &n2) {
            prop_assert_eq!(expr_to_value(a), expr_to_value(b));
        }
    }
}

#[test]
fn runaway_tower_traps_in_both_evaluators() {
    let src = runaway_tower(40); // 2^40 steps: finishes never, traps fast
    let err = big(&src, &mut Meter::new(Budget::default())).unwrap_err();
    assert_eq!(err, EvalError::Trap(Trap::OutOfFuel));

    // The small-step machine *duplicates* the argument on every β-step of
    // a `twice`, so on this term the space dimension explodes before the
    // step count does; the allocation budget must catch it (an
    // unlimited-allocation meter would eat gigabytes before 50k steps).
    let e = parse_expr(&src).unwrap();
    let budget = Budget {
        fuel: 50_000,
        max_alloc_cells: 100_000,
        max_depth: u64::MAX,
    };
    let err = normalize_metered(&e, &mut Meter::new(budget)).unwrap_err();
    assert!(
        matches!(
            err,
            EvalError::Trap(Trap::OutOfFuel) | EvalError::Trap(Trap::OutOfMemory)
        ),
        "expected a resource trap, got {err:?}"
    );
}

#[test]
fn allocator_bomb_traps_out_of_memory() {
    let src = allocator_bomb(40); // 8 * 2^40 bytes if left unchecked
    let err = big(&src, &mut Meter::new(Budget::default())).unwrap_err();
    assert_eq!(err, EvalError::Trap(Trap::OutOfMemory));
}

#[test]
fn depth_budget_traps_deep_nesting() {
    // 64 nested unapplied redexes exceed a depth budget of 16.
    let mut src = String::from("1");
    for _ in 0..64 {
        src = format!("((\\x -> x) {src})");
    }
    let budget = Budget {
        max_depth: 16,
        ..Budget::UNLIMITED
    };
    let err = big(&src, &mut Meter::new(budget)).unwrap_err();
    assert_eq!(err, EvalError::Trap(Trap::DepthExceeded));
}

/// End to end: a governed synchronous runtime traps a runaway event,
/// rolls it back completely (the fold's accumulator is untouched), keeps
/// the node healthy, and the session keeps serving honest events.
#[test]
fn governed_runtime_traps_runaway_event_and_rolls_back() {
    let src = format!(
        "main = foldp (\\k acc -> if k then {} else acc + 1) 0 Keyboard.lastPressed",
        runaway_tower(40)
    );
    let compiled = compile_source(&src, &InputEnv::standard()).unwrap();
    let graph = compiled.graph().expect("reactive program").clone();
    let keys = graph.input_named("Keyboard.lastPressed").unwrap();

    let mut rt = SyncRuntime::new(&graph);
    rt.set_governor(
        Some(EventLimits {
            fuel: 100_000,
            ..EventLimits::default()
        }),
        None,
    );

    // Honest event: k = 0 takes the cheap branch.
    rt.feed(Occurrence::input(keys, 0i64)).unwrap();
    let outs = rt.run_to_quiescence();
    assert_eq!(outs[0].value(), Some(&Value::Int(1)));

    // Adversarial event: k = 1 dives into the tower and traps.
    rt.feed(Occurrence::input(keys, 1i64)).unwrap();
    let outs = rt.run_to_quiescence();
    assert!(outs[0].value().is_none(), "trapped event reports NoChange");
    assert_eq!(
        rt.take_traps()
            .into_iter()
            .map(|(_, k)| k)
            .collect::<Vec<_>>(),
        vec![TrapKind::OutOfFuel]
    );
    assert_eq!(rt.stats().traps(), 1);
    assert_eq!(rt.stats().node_panics(), 0, "trap is not a poisoning");

    // Rollback: the accumulator still reads 1, and the node still works.
    assert_eq!(rt.output_value(), &Value::Int(1));
    rt.feed(Occurrence::input(keys, 0i64)).unwrap();
    let outs = rt.run_to_quiescence();
    assert_eq!(outs[0].value(), Some(&Value::Int(2)));
    assert!(rt.take_traps().is_empty());
}

/// The same trapped event on two runtimes leaves bit-identical state:
/// replaying the full event log (traps included) equals replaying it on a
/// fresh runtime — the recovery-determinism contract.
#[test]
fn trapped_events_replay_deterministically() {
    let src = format!(
        "main = foldp (\\k acc -> if k then {} else acc * 2 + 1) 0 Keyboard.lastPressed",
        runaway_tower(40)
    );
    let compiled = compile_source(&src, &InputEnv::standard()).unwrap();
    let graph = compiled.graph().unwrap().clone();
    let keys = graph.input_named("Keyboard.lastPressed").unwrap();
    let limits = EventLimits {
        fuel: 50_000,
        ..EventLimits::default()
    };

    let run = || {
        let mut rt = SyncRuntime::new(&graph);
        rt.set_governor(Some(limits), None);
        for k in [0i64, 1, 0, 1, 0] {
            rt.feed(Occurrence::input(keys, k)).unwrap();
        }
        rt.run_to_quiescence();
        (rt.output_value().clone(), rt.take_traps())
    };
    let (v1, t1) = run();
    let (v2, t2) = run();
    assert_eq!(v1, Value::Int(7)); // three honest events: 1, 3, 7
    assert_eq!(v1, v2);
    assert_eq!(t1, t2);
    assert_eq!(t1.len(), 2);
}
