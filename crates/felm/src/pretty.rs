//! Pretty-printing expressions back to parseable surface syntax.
//!
//! The printer is conservative with parentheses; its output always
//! re-parses to an α-equivalent (indeed, structurally equal) AST, which the
//! round-trip property test in this module pins down.

use std::fmt::Write as _;

use crate::ast::{Expr, ExprKind, Pattern};

/// Renders `e` as surface syntax that [`crate::parser::parse_expr`] accepts.
///
/// ```
/// use felm::{parser::parse_expr, pretty::pretty};
/// let e = parse_expr("lift2 (\\y z -> y / z) Mouse.x Window.width").unwrap();
/// let printed = pretty(&e);
/// let reparsed = parse_expr(&printed).unwrap();
/// // Printing is a fixed point through the parser.
/// assert_eq!(pretty(&reparsed), printed);
/// ```
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, false);
    out
}

/// True if the expression prints as a single token / parenthesized unit and
/// therefore needs no extra parentheses in argument position.
fn is_atomic(e: &Expr) -> bool {
    matches!(
        e.kind,
        ExprKind::Unit
            | ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Var(_)
            | ExprKind::Input(_)
            | ExprKind::Pair(..)
            | ExprKind::List(_)
            | ExprKind::Record(_)
            | ExprKind::Field(..)
            | ExprKind::Ctor(_)
    ) || matches!(&e.kind, ExprKind::CtorApp(_, args) if args.is_empty())
        || matches!(&e.kind, ExprKind::Int(n) if *n >= 0)
}

fn write_atom(out: &mut String, e: &Expr) {
    if is_atomic(e) {
        write_expr(out, e, false);
    } else {
        out.push('(');
        write_expr(out, e, false);
        out.push(')');
    }
}

fn write_expr(out: &mut String, e: &Expr, parenthesize_app: bool) {
    match &e.kind {
        ExprKind::Unit => out.push_str("()"),
        ExprKind::Int(n) => {
            if *n < 0 {
                let _ = write!(out, "(0 - {})", n.unsigned_abs());
            } else {
                let _ = write!(out, "{n}");
            }
        }
        ExprKind::Float(x) => {
            if x.fract() == 0.0 && x.is_finite() && *x >= 0.0 {
                let _ = write!(out, "{x:.1}");
            } else if *x < 0.0 {
                let _ = write!(out, "(0.0 - {:?})", x.abs());
            } else {
                let _ = write!(out, "{x:?}");
            }
        }
        ExprKind::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        ExprKind::Var(x) => out.push_str(x),
        ExprKind::Input(i) => out.push_str(i),
        ExprKind::Lam { param, ann, body } => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            match ann {
                Some(t) => {
                    let _ = write!(out, "\\({param} : {t}) -> ");
                }
                None => {
                    let _ = write!(out, "\\{param} -> ");
                }
            }
            write_expr(out, body, false);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::App(f, a) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            // Application heads may themselves be applications (left
            // associative); anything else non-atomic is parenthesized.
            match f.kind {
                ExprKind::App(..) => write_expr(out, f, false),
                _ => write_atom(out, f),
            }
            out.push(' ');
            write_atom(out, a);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::BinOp(op, a, b) => {
            out.push('(');
            write_expr(out, a, true);
            let _ = write!(out, " {op} ");
            write_expr(out, b, true);
            out.push(')');
        }
        ExprKind::If(c, t, f) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("if ");
            write_expr(out, c, false);
            out.push_str(" then ");
            write_expr(out, t, false);
            out.push_str(" else ");
            write_expr(out, f, false);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Let { name, value, body } => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            let _ = write!(out, "let {name} = ");
            write_expr(out, value, false);
            out.push_str(" in ");
            write_expr(out, body, false);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Pair(a, b) => {
            out.push('(');
            write_expr(out, a, false);
            out.push_str(", ");
            write_expr(out, b, false);
            out.push(')');
        }
        ExprKind::List(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item, false);
            }
            out.push(']');
        }
        ExprKind::Record(fields) => {
            out.push('{');
            for (k, (name, value)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{name} = ");
                write_expr(out, value, false);
            }
            out.push('}');
        }
        ExprKind::Field(rec, name) => {
            write_atom(out, rec);
            let _ = write!(out, ".{name}");
        }
        ExprKind::ListOp(op, l) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str(op.keyword());
            out.push(' ');
            write_atom(out, l);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Ith(index, l) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("ith ");
            write_atom(out, index);
            out.push(' ');
            write_atom(out, l);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Fst(p) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("fst ");
            write_atom(out, p);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Snd(p) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("snd ");
            write_atom(out, p);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Lift { func, args } => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            let _ = write!(out, "lift{} ", args.len());
            write_atom(out, func);
            for a in args {
                out.push(' ');
                write_atom(out, a);
            }
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Foldp { func, init, signal } => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("foldp ");
            write_atom(out, func);
            out.push(' ');
            write_atom(out, init);
            out.push(' ');
            write_atom(out, signal);
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Ctor(name) => out.push_str(name),
        ExprKind::CtorApp(name, args) => {
            let wrap = parenthesize_app && !args.is_empty();
            if wrap {
                out.push('(');
            }
            out.push_str(name);
            for a in args {
                out.push(' ');
                write_atom(out, a);
            }
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("case ");
            write_expr(out, scrutinee, false);
            out.push_str(" of");
            for b in branches {
                out.push_str(" | ");
                match &b.pattern {
                    Pattern::Ctor { name, binders } => {
                        out.push_str(name);
                        for binder in binders {
                            out.push(' ');
                            out.push_str(binder);
                        }
                    }
                    Pattern::Var(x) => out.push_str(x),
                    Pattern::Wildcard => out.push('_'),
                }
                out.push_str(" -> ");
                write_expr(out, &b.body, true);
            }
            if wrap {
                out.push(')');
            }
        }
        ExprKind::SignalPrim { op, args } => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str(op.keyword());
            for a in args {
                out.push(' ');
                write_atom(out, a);
            }
            if wrap {
                out.push(')');
            }
        }
        ExprKind::Async(inner) => {
            let wrap = parenthesize_app;
            if wrap {
                out.push('(');
            }
            out.push_str("async ");
            write_atom(out, inner);
            if wrap {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    /// Structural equality ignoring spans.
    fn same(a: &Expr, b: &Expr) -> bool {
        use ExprKind as K;
        match (&a.kind, &b.kind) {
            (K::Unit, K::Unit) => true,
            (K::Int(x), K::Int(y)) => x == y,
            (K::Float(x), K::Float(y)) => x == y,
            (K::Str(x), K::Str(y)) => x == y,
            (K::Var(x), K::Var(y)) | (K::Input(x), K::Input(y)) => x == y,
            (
                K::Lam {
                    param: p1,
                    ann: a1,
                    body: b1,
                },
                K::Lam {
                    param: p2,
                    ann: a2,
                    body: b2,
                },
            ) => p1 == p2 && a1 == a2 && same(b1, b2),
            (K::App(f1, x1), K::App(f2, x2)) => same(f1, f2) && same(x1, x2),
            (K::BinOp(o1, x1, y1), K::BinOp(o2, x2, y2)) => {
                o1 == o2 && same(x1, x2) && same(y1, y2)
            }
            (K::If(c1, t1, f1), K::If(c2, t2, f2)) => same(c1, c2) && same(t1, t2) && same(f1, f2),
            (
                K::Let {
                    name: n1,
                    value: v1,
                    body: b1,
                },
                K::Let {
                    name: n2,
                    value: v2,
                    body: b2,
                },
            ) => n1 == n2 && same(v1, v2) && same(b1, b2),
            (K::Pair(x1, y1), K::Pair(x2, y2)) => same(x1, x2) && same(y1, y2),
            (K::Fst(x), K::Fst(y)) | (K::Snd(x), K::Snd(y)) | (K::Async(x), K::Async(y)) => {
                same(x, y)
            }
            (K::Lift { func: f1, args: a1 }, K::Lift { func: f2, args: a2 }) => {
                same(f1, f2) && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| same(x, y))
            }
            (
                K::Foldp {
                    func: f1,
                    init: i1,
                    signal: s1,
                },
                K::Foldp {
                    func: f2,
                    init: i2,
                    signal: s2,
                },
            ) => same(f1, f2) && same(i1, i2) && same(s1, s2),
            _ => false,
        }
    }

    fn round_trip(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed form failed to parse: {printed:?}: {err}"));
        assert!(same(&e, &reparsed), "round trip changed:\n{src}\n{printed}");
    }

    #[test]
    fn round_trips_paper_examples() {
        round_trip("lift2 (\\y z -> y / z) Mouse.x Window.width");
        round_trip("foldp (\\k c -> c + 1) 0 Keyboard.lastPressed");
        round_trip("lift2 (\\a b -> (a, b)) Mouse.x (async (lift (\\y -> y) Mouse.y))");
        round_trip("let wordPairs = lift2 (\\a b -> (a, b)) Words.input Words.input in wordPairs");
    }

    #[test]
    fn round_trips_tricky_shapes() {
        round_trip("f (g x) (h y)");
        round_trip("(\\x -> x) (\\y -> y)");
        round_trip("if a < b then f x else g y");
        round_trip("1 - 2 - 3");
        round_trip("1 - (2 - 3)");
        round_trip("fst (snd ((1, 2), (3, 4)))");
        round_trip("\"quote \\\" backslash \\\\ newline \\n\"");
        round_trip("\\(f : Int -> Int) -> \\(s : Signal Int) -> lift f s");
        round_trip("let x = 1 in let y = 2 in x + y");
    }

    #[test]
    fn negative_numbers_print_parseably() {
        use crate::ast::ExprKind;
        let e = Expr::synth(ExprKind::Int(-5));
        let printed = pretty(&e);
        let back = parse_expr(&printed).unwrap();
        let normalized = crate::eval::normalize(&back, 100).unwrap();
        assert!(matches!(normalized.kind, ExprKind::Int(-5)));
    }
}
