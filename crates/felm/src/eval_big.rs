//! Big-step, environment-based evaluation of the *functional* fragment.
//!
//! The small-step machine in [`crate::eval`] is the paper's Fig. 6,
//! verbatim — ideal as a specification, quadratic in practice (substitution
//! copies terms). Signal-graph nodes apply their embedded FElm functions on
//! *every event*, so stage two wants a fast interpreter: this module
//! evaluates the simple-typed fragment with closures and persistent
//! environments in one pass.
//!
//! Scope: values of simple types only (unit, numbers, strings, pairs,
//! functions). Signal forms are out of scope by construction — stage one
//! has already reduced programs to signal terms whose embedded functions
//! are simple-typed values (Fig. 5), and those are what nodes apply.
//!
//! Agreement with the small-step semantics is property-tested in
//! `tests/theorem1_prop.rs` and benchmarked (`interpreter` bench).

use std::fmt;
use std::sync::Arc;

use crate::ast::{BinOp, Expr, ExprKind, ListOp, Pattern};
use crate::budget::Meter;
use crate::eval::EvalError;

/// A runtime value of the big-step machine.
#[derive(Clone)]
pub enum RtValue {
    /// `()`
    Unit,
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(Arc<str>),
    /// A pair.
    Pair(Arc<(RtValue, RtValue)>),
    /// A list.
    List(Arc<Vec<RtValue>>),
    /// A record.
    Record(Arc<std::collections::BTreeMap<String, RtValue>>),
    /// A constructor application of an algebraic data type.
    Tagged {
        /// Constructor name.
        tag: Arc<str>,
        /// Arguments.
        args: Arc<Vec<RtValue>>,
    },
    /// A function closure.
    Closure {
        /// Parameter name.
        param: String,
        /// Body (shared).
        body: Arc<Expr>,
        /// Captured environment.
        env: Env,
    },
}

impl fmt::Debug for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Unit => write!(f, "()"),
            RtValue::Int(n) => write!(f, "{n}"),
            RtValue::Float(x) => write!(f, "{x:?}"),
            RtValue::Str(s) => write!(f, "{s:?}"),
            RtValue::Pair(p) => write!(f, "({:?}, {:?})", p.0, p.1),
            RtValue::List(items) => f.debug_list().entries(items.iter()).finish(),
            RtValue::Record(fields) => {
                let mut m = f.debug_map();
                for (k, v) in fields.iter() {
                    m.entry(&format_args!("{k}"), v);
                }
                m.finish()
            }
            RtValue::Tagged { tag, args } => {
                write!(f, "{tag}")?;
                for a in args.iter() {
                    write!(f, " {a:?}")?;
                }
                Ok(())
            }
            RtValue::Closure { param, .. } => write!(f, "<closure λ{param}>"),
        }
    }
}

impl PartialEq for RtValue {
    /// Structural equality on data; closures are never equal (functions
    /// have no decidable equality).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (RtValue::Unit, RtValue::Unit) => true,
            (RtValue::Int(a), RtValue::Int(b)) => a == b,
            (RtValue::Float(a), RtValue::Float(b)) => a == b,
            (RtValue::Str(a), RtValue::Str(b)) => a == b,
            (RtValue::Pair(a), RtValue::Pair(b)) => a.0 == b.0 && a.1 == b.1,
            (RtValue::List(a), RtValue::List(b)) => a == b,
            (RtValue::Record(a), RtValue::Record(b)) => a == b,
            (RtValue::Tagged { tag: t1, args: a1 }, RtValue::Tagged { tag: t2, args: a2 }) => {
                t1 == t2 && a1 == a2
            }
            _ => false,
        }
    }
}

/// A persistent (immutable, shareable) environment.
#[derive(Clone, Default)]
pub struct Env(Option<Arc<Binding>>);

struct Binding {
    name: String,
    value: RtValue,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends with one binding (O(1), shares the tail).
    pub fn bind(&self, name: impl Into<String>, value: RtValue) -> Env {
        Env(Some(Arc::new(Binding {
            name: name.into(),
            value,
            next: self.clone(),
        })))
    }

    /// Looks up a name (innermost binding wins).
    pub fn lookup(&self, name: &str) -> Option<&RtValue> {
        let mut cur = self;
        while let Some(b) = &cur.0 {
            if b.name == name {
                return Some(&b.value);
            }
            cur = &b.next;
        }
        None
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        let mut cur = self;
        while let Some(b) = &cur.0 {
            names.push(b.name.as_str());
            cur = &b.next;
        }
        write!(f, "Env{names:?}")
    }
}

fn stuck<T>(reason: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError::Stuck {
        reason: reason.into(),
    })
}

/// Evaluates a simple-typed expression under `env`.
///
/// # Errors
///
/// [`EvalError::Stuck`] on ill-typed terms or signal forms.
///
/// ```
/// use felm::eval_big::{eval, Env, RtValue};
/// use felm::parser::parse_expr;
///
/// let e = parse_expr("(\\x y -> x * y + 1) 6 7").unwrap();
/// assert_eq!(eval(&Env::empty(), &e).unwrap(), RtValue::Int(43));
/// ```
pub fn eval(env: &Env, e: &Expr) -> Result<RtValue, EvalError> {
    eval_metered(env, e, &mut Meter::unlimited())
}

/// [`eval`] under a [`Meter`]: every node visit charges one fuel tick,
/// every value construction charges allocation (strings/lists/records by
/// length), and evaluation nesting counts against the depth budget, so an
/// adversarial term traps with a typed [`crate::budget::Trap`] instead of
/// spinning or exhausting memory. With an unlimited meter this is the
/// exact same computation as [`eval`] (which is this function with
/// [`Meter::unlimited`]).
///
/// # Errors
///
/// [`EvalError::Stuck`] on ill-typed terms, [`EvalError::Trap`] on budget
/// exhaustion.
pub fn eval_metered(env: &Env, e: &Expr, meter: &mut Meter) -> Result<RtValue, EvalError> {
    meter.tick()?;
    meter.enter()?;
    let r = eval_node(env, e, meter);
    meter.leave();
    r
}

fn eval_node(env: &Env, e: &Expr, meter: &mut Meter) -> Result<RtValue, EvalError> {
    match &e.kind {
        ExprKind::Unit => Ok(RtValue::Unit),
        ExprKind::Int(n) => Ok(RtValue::Int(*n)),
        ExprKind::Float(x) => Ok(RtValue::Float(*x)),
        ExprKind::Str(s) => {
            meter.alloc(1 + s.len() as u64)?;
            Ok(RtValue::Str(Arc::from(s.as_str())))
        }
        ExprKind::Var(x) => match env.lookup(x) {
            Some(v) => Ok(v.clone()),
            None => stuck(format!("unbound variable {x}")),
        },
        ExprKind::Lam { param, body, .. } => {
            meter.alloc(1)?;
            Ok(RtValue::Closure {
                param: param.clone(),
                body: Arc::new((**body).clone()),
                env: env.clone(),
            })
        }
        ExprKind::App(f, a) => {
            let fv = eval_metered(env, f, meter)?;
            let av = eval_metered(env, a, meter)?;
            apply_metered(fv, av, meter)
        }
        ExprKind::BinOp(op, a, b) => {
            let av = eval_metered(env, a, meter)?;
            let bv = eval_metered(env, b, meter)?;
            delta(*op, &av, &bv, meter)
        }
        ExprKind::If(c, t, f) => match eval_metered(env, c, meter)? {
            RtValue::Int(n) => {
                if n != 0 {
                    eval_metered(env, t, meter)
                } else {
                    eval_metered(env, f, meter)
                }
            }
            other => stuck(format!("if-condition is not an integer: {other:?}")),
        },
        ExprKind::Let { name, value, body } => {
            let v = eval_metered(env, value, meter)?;
            meter.alloc(1)?;
            eval_metered(&env.bind(name.clone(), v), body, meter)
        }
        ExprKind::Pair(a, b) => {
            meter.alloc(1)?;
            Ok(RtValue::Pair(Arc::new((
                eval_metered(env, a, meter)?,
                eval_metered(env, b, meter)?,
            ))))
        }
        ExprKind::Fst(p) => match eval_metered(env, p, meter)? {
            RtValue::Pair(pr) => Ok(pr.0.clone()),
            other => stuck(format!("fst of a non-pair: {other:?}")),
        },
        ExprKind::Snd(p) => match eval_metered(env, p, meter)? {
            RtValue::Pair(pr) => Ok(pr.1.clone()),
            other => stuck(format!("snd of a non-pair: {other:?}")),
        },
        ExprKind::List(items) => {
            meter.alloc(1 + items.len() as u64)?;
            let vals = items
                .iter()
                .map(|i| eval_metered(env, i, meter))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RtValue::List(Arc::new(vals)))
        }
        ExprKind::ListOp(op, l) => match eval_metered(env, l, meter)? {
            RtValue::List(items) => match op {
                ListOp::Head => match items.first() {
                    Some(h) => Ok(h.clone()),
                    None => stuck("head of the empty list"),
                },
                ListOp::Tail => {
                    if items.is_empty() {
                        stuck("tail of the empty list")
                    } else {
                        meter.alloc(items.len() as u64)?;
                        Ok(RtValue::List(Arc::new(items[1..].to_vec())))
                    }
                }
                ListOp::IsEmpty => Ok(RtValue::Int(items.is_empty() as i64)),
                ListOp::Length => Ok(RtValue::Int(items.len() as i64)),
            },
            other => stuck(format!("{} of a non-list: {other:?}", op.keyword())),
        },
        ExprKind::Ith(index, l) => {
            let i = match eval_metered(env, index, meter)? {
                RtValue::Int(n) => n,
                other => return stuck(format!("ith index is not an int: {other:?}")),
            };
            match eval_metered(env, l, meter)? {
                RtValue::List(items) => {
                    if i < 0 || i as usize >= items.len() {
                        stuck(format!(
                            "ith index {i} out of bounds for a {}-element list",
                            items.len()
                        ))
                    } else {
                        Ok(items[i as usize].clone())
                    }
                }
                other => stuck(format!("ith of a non-list: {other:?}")),
            }
        }
        ExprKind::Record(fields) => {
            meter.alloc(1 + fields.len() as u64)?;
            let mut out = std::collections::BTreeMap::new();
            for (name, value) in fields {
                out.insert(name.clone(), eval_metered(env, value, meter)?);
            }
            Ok(RtValue::Record(Arc::new(out)))
        }
        ExprKind::Field(rec, name) => match eval_metered(env, rec, meter)? {
            RtValue::Record(fields) => match fields.get(name) {
                Some(v) => Ok(v.clone()),
                None => stuck(format!("record has no field `{name}`")),
            },
            other => stuck(format!("field access on a non-record: {other:?}")),
        },
        ExprKind::Ctor(name) => stuck(format!(
            "unresolved constructor `{name}` (run Adts::resolve first)"
        )),
        ExprKind::CtorApp(name, args) => {
            meter.alloc(1 + args.len() as u64)?;
            let vals = args
                .iter()
                .map(|a| eval_metered(env, a, meter))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RtValue::Tagged {
                tag: Arc::from(name.as_str()),
                args: Arc::new(vals),
            })
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            let value = eval_metered(env, scrutinee, meter)?;
            for b in branches {
                match (&b.pattern, &value) {
                    (Pattern::Ctor { name, binders }, RtValue::Tagged { tag, args })
                        if name.as_str() == &**tag =>
                    {
                        let mut env2 = env.clone();
                        for (binder, arg) in binders.iter().zip(args.iter()) {
                            if binder != "_" {
                                env2 = env2.bind(binder.clone(), arg.clone());
                            }
                        }
                        return eval_metered(&env2, &b.body, meter);
                    }
                    (Pattern::Ctor { .. }, _) => continue,
                    (Pattern::Var(x), _) => {
                        return eval_metered(&env.bind(x.clone(), value.clone()), &b.body, meter)
                    }
                    (Pattern::Wildcard, _) => return eval_metered(env, &b.body, meter),
                }
            }
            stuck(format!("no case branch matched {value:?}"))
        }
        ExprKind::Input(i) => stuck(format!("signal form in big-step evaluation: input {i}")),
        ExprKind::Lift { .. }
        | ExprKind::Foldp { .. }
        | ExprKind::Async(_)
        | ExprKind::SignalPrim { .. } => stuck("signal form in big-step evaluation"),
    }
}

/// Applies a closure to an argument.
///
/// # Errors
///
/// [`EvalError::Stuck`] if `f` is not a closure.
pub fn apply(f: RtValue, arg: RtValue) -> Result<RtValue, EvalError> {
    apply_metered(f, arg, &mut Meter::unlimited())
}

/// [`apply`] under a [`Meter`] (see [`eval_metered`]).
///
/// # Errors
///
/// [`EvalError::Stuck`] if `f` is not a closure, [`EvalError::Trap`] on
/// budget exhaustion.
pub fn apply_metered(f: RtValue, arg: RtValue, meter: &mut Meter) -> Result<RtValue, EvalError> {
    match f {
        RtValue::Closure { param, body, env } => eval_metered(&env.bind(param, arg), &body, meter),
        other => stuck(format!("application of a non-function: {other:?}")),
    }
}

fn delta(op: BinOp, a: &RtValue, b: &RtValue, meter: &mut Meter) -> Result<RtValue, EvalError> {
    use RtValue::{Float, Int, Str};
    let r = match (op, a, b) {
        (BinOp::Append, Str(x), Str(y)) => {
            // Charge before materializing: an append chain must trap on the
            // budget, not take the memory down with it.
            meter.alloc(x.len() as u64 + y.len() as u64)?;
            Str(Arc::from(format!("{x}{y}").as_str()))
        }
        (BinOp::Cons, head, RtValue::List(items)) => {
            meter.alloc(1 + items.len() as u64)?;
            let mut out = Vec::with_capacity(items.len() + 1);
            out.push(head.clone());
            out.extend(items.iter().cloned());
            RtValue::List(Arc::new(out))
        }
        (_, Int(x), Int(y)) => {
            let (x, y) = (*x, *y);
            match op {
                BinOp::Add => Int(x.wrapping_add(y)),
                BinOp::Sub => Int(x.wrapping_sub(y)),
                BinOp::Mul => Int(x.wrapping_mul(y)),
                BinOp::Div => Int(if y == 0 { 0 } else { x.wrapping_div(y) }),
                BinOp::Mod => Int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
                BinOp::Eq => Int((x == y) as i64),
                BinOp::Ne => Int((x != y) as i64),
                BinOp::Lt => Int((x < y) as i64),
                BinOp::Le => Int((x <= y) as i64),
                BinOp::Gt => Int((x > y) as i64),
                BinOp::Ge => Int((x >= y) as i64),
                BinOp::And => Int(((x != 0) && (y != 0)) as i64),
                BinOp::Or => Int(((x != 0) || (y != 0)) as i64),
                BinOp::Append | BinOp::Cons => return stuck("++/:: on integers"),
            }
        }
        (_, Float(x), Float(y)) => {
            let (x, y) = (*x, *y);
            match op {
                BinOp::Add => Float(x + y),
                BinOp::Sub => Float(x - y),
                BinOp::Mul => Float(x * y),
                BinOp::Div => Float(if y == 0.0 { 0.0 } else { x / y }),
                BinOp::Eq => Int((x == y) as i64),
                BinOp::Ne => Int((x != y) as i64),
                BinOp::Lt => Int((x < y) as i64),
                BinOp::Le => Int((x <= y) as i64),
                BinOp::Gt => Int((x > y) as i64),
                BinOp::Ge => Int((x >= y) as i64),
                _ => return stuck("unsupported float operator"),
            }
        }
        (BinOp::Eq, Str(x), Str(y)) => Int((x == y) as i64),
        (BinOp::Ne, Str(x), Str(y)) => Int((x != y) as i64),
        _ => return stuck(format!("operator {op} applied to {a:?} and {b:?}")),
    };
    Ok(r)
}

/// Converts a big-step value to a runtime [`elm_runtime::Value`] (data
/// only — closures return `None`).
pub fn to_runtime_value(v: &RtValue) -> Option<elm_runtime::Value> {
    Some(match v {
        RtValue::Unit => elm_runtime::Value::Unit,
        RtValue::Int(n) => elm_runtime::Value::Int(*n),
        RtValue::Float(x) => elm_runtime::Value::Float(*x),
        RtValue::Str(s) => elm_runtime::Value::Str(s.clone()),
        RtValue::Pair(p) => {
            elm_runtime::Value::pair(to_runtime_value(&p.0)?, to_runtime_value(&p.1)?)
        }
        RtValue::List(items) => elm_runtime::Value::list(
            items
                .iter()
                .map(to_runtime_value)
                .collect::<Option<Vec<_>>>()?,
        ),
        RtValue::Record(fields) => elm_runtime::Value::record(
            fields
                .iter()
                .map(|(k, v)| Some((k.clone(), to_runtime_value(v)?)))
                .collect::<Option<Vec<_>>>()?,
        ),
        RtValue::Tagged { tag, args } => elm_runtime::Value::tagged(
            tag.as_ref(),
            args.iter()
                .map(to_runtime_value)
                .collect::<Option<Vec<_>>>()?,
        ),
        RtValue::Closure { .. } => return None,
    })
}

/// Converts a runtime [`elm_runtime::Value`] into a big-step value.
pub fn from_runtime_value(v: &elm_runtime::Value) -> Option<RtValue> {
    Some(match v {
        elm_runtime::Value::Unit => RtValue::Unit,
        elm_runtime::Value::Int(n) => RtValue::Int(*n),
        elm_runtime::Value::Float(x) => RtValue::Float(*x),
        elm_runtime::Value::Bool(b) => RtValue::Int(*b as i64),
        elm_runtime::Value::Str(s) => RtValue::Str(s.clone()),
        elm_runtime::Value::Pair(p) => RtValue::Pair(Arc::new((
            from_runtime_value(&p.0)?,
            from_runtime_value(&p.1)?,
        ))),
        elm_runtime::Value::List(items) => RtValue::List(Arc::new(
            items
                .iter()
                .map(from_runtime_value)
                .collect::<Option<Vec<_>>>()?,
        )),
        elm_runtime::Value::Record(fields) => RtValue::Record(Arc::new(
            fields
                .iter()
                .map(|(k, v)| Some((k.clone(), from_runtime_value(v)?)))
                .collect::<Option<std::collections::BTreeMap<_, _>>>()?,
        )),
        elm_runtime::Value::Tagged(tag, args) => RtValue::Tagged {
            tag: tag.clone(),
            args: Arc::new(
                args.iter()
                    .map(from_runtime_value)
                    .collect::<Option<Vec<_>>>()?,
            ),
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{normalize, DEFAULT_FUEL};
    use crate::parser::parse_expr;
    use crate::translate::expr_to_value;

    fn big(src: &str) -> RtValue {
        eval(&Env::empty(), &parse_expr(src).unwrap()).unwrap()
    }

    #[test]
    fn evaluates_functional_programs() {
        assert_eq!(big("1 + 2 * 3"), RtValue::Int(7));
        assert_eq!(big("(\\f x -> f (f x)) (\\n -> n * 2) 5"), RtValue::Int(20));
        assert_eq!(big("let a = 3 in let b = a * a in b + a"), RtValue::Int(12));
        assert_eq!(
            big("if 1 < 2 then \"y\" else \"n\""),
            RtValue::Str("y".into())
        );
        assert_eq!(big("fst (snd ((1, 2), (3, 4)))"), RtValue::Int(3));
    }

    #[test]
    fn closures_capture_lexically() {
        // The classic shadowing test: adder captures its own x.
        assert_eq!(
            big("let makeAdd = \\x -> \\y -> x + y in let x = 100 in makeAdd 1 x"),
            RtValue::Int(101)
        );
        assert_eq!(
            big("let x = 1 in let f = \\y -> x + y in let x = 50 in f 0"),
            RtValue::Int(1),
            "static scoping, not dynamic"
        );
    }

    #[test]
    fn agrees_with_small_step_on_sample_programs() {
        for src in [
            "1 + 2 * 3 - 4 / 2",
            "(\\x -> x * x) 12",
            "let compose = \\f g x -> f (g x) in compose (\\a -> a + 1) (\\b -> b * 2) 10",
            "if 7 % 2 then 1 else 0",
            "\"a\" ++ \"b\" ++ \"c\"",
            "(1 + 1, \"two\")",
            "snd (0, if 1 then 10 else 20)",
        ] {
            let e = parse_expr(src).unwrap();
            let small = normalize(&e, DEFAULT_FUEL).unwrap();
            let small_val = expr_to_value(&small).expect("data result");
            let big_val = to_runtime_value(&eval(&Env::empty(), &e).unwrap()).unwrap();
            assert_eq!(small_val, big_val, "{src}");
        }
    }

    #[test]
    fn signal_forms_are_rejected() {
        assert!(eval(&Env::empty(), &parse_expr("Mouse.x").unwrap()).is_err());
        assert!(eval(
            &Env::empty(),
            &parse_expr("lift (\\x -> x) Mouse.x").unwrap()
        )
        .is_err());
    }

    #[test]
    fn value_conversions_round_trip() {
        use elm_runtime::Value;
        for v in [
            Value::Unit,
            Value::Int(5),
            Value::Float(1.5),
            Value::str("s"),
            Value::pair(Value::Int(1), Value::str("x")),
        ] {
            let rt = from_runtime_value(&v).unwrap();
            assert_eq!(to_runtime_value(&rt), Some(v));
        }
        let lst = Value::list([Value::Int(1), Value::Int(2)]);
        let rt = from_runtime_value(&lst).unwrap();
        assert_eq!(to_runtime_value(&rt), Some(lst));
        assert!(from_runtime_value(&Value::ext(0u8)).is_none());
    }

    #[test]
    fn env_lookup_is_innermost_first() {
        let env = Env::empty()
            .bind("x", RtValue::Int(1))
            .bind("y", RtValue::Int(2))
            .bind("x", RtValue::Int(3));
        assert_eq!(env.lookup("x"), Some(&RtValue::Int(3)));
        assert_eq!(env.lookup("y"), Some(&RtValue::Int(2)));
        assert_eq!(env.lookup("z"), None);
    }
}
