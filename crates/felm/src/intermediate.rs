//! The intermediate language of stage-one evaluation (paper Fig. 5).
//!
//! A well-typed program normalizes to a *final term*: either a simple value
//! or a *signal term*
//!
//! ```text
//! s ::= x | let x = s in u | i | liftn v s1 … sn | foldp v1 v2 s | async s
//! u ::= v | s
//! ```
//!
//! [`FinalTerm::from_expr`] validates that grammar over a normalized
//! [`Expr`] and produces a structured representation that
//! [`crate::translate`] walks to build the signal graph. Keeping this as a
//! separate pass (rather than trusting the evaluator) gives Theorem 1 a
//! machine-checked second witness: normal forms of well-typed programs
//! always satisfy the grammar.

use std::fmt;

use crate::ast::{Expr, ExprKind};
use crate::eval::is_value;

/// Errors from validating the intermediate-language grammar.
#[derive(Clone, Debug, PartialEq)]
pub struct IlError {
    /// What was violated.
    pub message: String,
}

impl fmt::Display for IlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "intermediate language violation: {}", self.message)
    }
}

impl std::error::Error for IlError {}

/// A validated final term `u ::= v | s`.
#[derive(Clone, Debug, PartialEq)]
pub enum FinalTerm {
    /// A simple value — the program is not reactive.
    Value(Expr),
    /// A signal term — the program denotes a signal graph.
    Signal(SignalTerm),
}

/// A validated signal term (Fig. 5).
#[derive(Clone, Debug, PartialEq)]
pub enum SignalTerm {
    /// A let-bound signal variable `x` (multicast reference).
    Var(String),
    /// `let x = s in u` — `x` multicasts `s` to its uses in `u`.
    Let {
        /// Bound name.
        name: String,
        /// The shared signal.
        value: Box<SignalTerm>,
        /// The body (value or signal term).
        body: Box<FinalTerm>,
    },
    /// An input signal `i`.
    Input(String),
    /// `liftn v s1 … sn` — `func` is a simple value (a function).
    Lift {
        /// The lifted function value.
        func: Expr,
        /// Signal arguments.
        args: Vec<SignalTerm>,
    },
    /// `foldp v1 v2 s`.
    Foldp {
        /// The fold function value.
        func: Expr,
        /// The initial accumulator value.
        init: Expr,
        /// The folded signal.
        signal: Box<SignalTerm>,
    },
    /// `async s`.
    Async(Box<SignalTerm>),
    /// A §4.2 library primitive: leading simple values, then signals.
    Prim {
        /// Which primitive.
        op: crate::ast::SignalPrimOp,
        /// The leading value operands (e.g. keepIf's predicate and base).
        values: Vec<Expr>,
        /// The signal operands.
        signals: Vec<SignalTerm>,
    },
}

impl FinalTerm {
    /// Validates a normalized expression against `u ::= v | s`.
    ///
    /// # Errors
    ///
    /// Returns [`IlError`] if `expr` is not in the grammar (i.e. stage-one
    /// evaluation was incomplete or the program was ill-typed).
    pub fn from_expr(expr: &Expr) -> Result<FinalTerm, IlError> {
        if is_value(expr) {
            return Ok(FinalTerm::Value(expr.clone()));
        }
        Ok(FinalTerm::Signal(SignalTerm::from_expr(expr)?))
    }
}

impl SignalTerm {
    /// Validates a normalized expression against the signal-term grammar.
    ///
    /// # Errors
    ///
    /// Returns [`IlError`] when the expression falls outside Fig. 5.
    pub fn from_expr(expr: &Expr) -> Result<SignalTerm, IlError> {
        match &expr.kind {
            ExprKind::Var(x) => Ok(SignalTerm::Var(x.clone())),
            ExprKind::Input(i) => Ok(SignalTerm::Input(i.clone())),
            ExprKind::Let { name, value, body } => {
                let value = SignalTerm::from_expr(value)?;
                let body = FinalTerm::from_expr(body)?;
                Ok(SignalTerm::Let {
                    name: name.clone(),
                    value: Box::new(value),
                    body: Box::new(body),
                })
            }
            ExprKind::Lift { func, args } => {
                if !is_value(func) {
                    return Err(IlError {
                        message: "lift function position is not a value".into(),
                    });
                }
                let args = args
                    .iter()
                    .map(SignalTerm::from_expr)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(SignalTerm::Lift {
                    func: (**func).clone(),
                    args,
                })
            }
            ExprKind::Foldp { func, init, signal } => {
                if !is_value(func) || !is_value(init) {
                    return Err(IlError {
                        message: "foldp function/base positions are not values".into(),
                    });
                }
                Ok(SignalTerm::Foldp {
                    func: (**func).clone(),
                    init: (**init).clone(),
                    signal: Box::new(SignalTerm::from_expr(signal)?),
                })
            }
            ExprKind::Async(inner) => {
                Ok(SignalTerm::Async(Box::new(SignalTerm::from_expr(inner)?)))
            }
            ExprKind::SignalPrim { op, args } => {
                let n = op.value_args();
                let (values, signals) = args.split_at(n);
                if !values.iter().all(is_value) {
                    return Err(IlError {
                        message: format!("{} value operands are not values", op.keyword()),
                    });
                }
                Ok(SignalTerm::Prim {
                    op: *op,
                    values: values.to_vec(),
                    signals: signals
                        .iter()
                        .map(SignalTerm::from_expr)
                        .collect::<Result<Vec<_>, _>>()?,
                })
            }
            other => Err(IlError {
                message: format!("expression is not a signal term: {other:?}"),
            }),
        }
    }

    /// Counts the nodes this term will produce in the signal graph
    /// (variables resolve to existing nodes and add none).
    pub fn node_count(&self) -> usize {
        match self {
            SignalTerm::Var(_) => 0,
            SignalTerm::Input(_) => 1,
            SignalTerm::Let { value, body, .. } => {
                value.node_count()
                    + match &**body {
                        FinalTerm::Signal(s) => s.node_count(),
                        FinalTerm::Value(_) => 0,
                    }
            }
            SignalTerm::Lift { args, .. } => {
                1 + args.iter().map(SignalTerm::node_count).sum::<usize>()
            }
            SignalTerm::Foldp { signal, .. } => 1 + signal.node_count(),
            SignalTerm::Async(inner) => 1 + inner.node_count(),
            SignalTerm::Prim { signals, .. } => {
                1 + signals.iter().map(SignalTerm::node_count).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{normalize, DEFAULT_FUEL};
    use crate::parser::parse_expr;

    fn extract(src: &str) -> FinalTerm {
        let e = parse_expr(src).unwrap();
        let n = normalize(&e, DEFAULT_FUEL).unwrap();
        FinalTerm::from_expr(&n).unwrap()
    }

    #[test]
    fn values_extract_as_values() {
        assert!(matches!(extract("1 + 2"), FinalTerm::Value(_)));
        assert!(matches!(extract("\\x -> x"), FinalTerm::Value(_)));
    }

    #[test]
    fn signal_terms_extract_structurally() {
        let FinalTerm::Signal(s) = extract("lift (\\x -> x + 1) Mouse.x") else {
            panic!()
        };
        let SignalTerm::Lift { args, .. } = &s else {
            panic!()
        };
        assert!(matches!(&args[0], SignalTerm::Input(i) if i == "Mouse.x"));
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn shared_lets_count_nodes_once() {
        let FinalTerm::Signal(s) =
            extract("let s = lift (\\x -> x) Mouse.x in lift2 (\\a b -> a + b) s s")
        else {
            panic!()
        };
        // let(value: lift+input = 2) + body lift = 3; the two Var uses are free.
        assert_eq!(s.node_count(), 3);
    }

    #[test]
    fn async_extracts_nested() {
        let FinalTerm::Signal(s) = extract("async (lift (\\x -> x) Mouse.y)") else {
            panic!()
        };
        assert!(matches!(s, SignalTerm::Async(_)));
        assert_eq!(s.node_count(), 3);
    }

    #[test]
    fn non_normal_terms_are_rejected() {
        let e = parse_expr("lift ((\\x -> x) (\\y -> y)) Mouse.x").unwrap();
        // Without normalization, the function position is an application.
        assert!(SignalTerm::from_expr(&e).is_err());
        let e = parse_expr("1 + Mouse.x").unwrap();
        assert!(FinalTerm::from_expr(&e).is_err());
    }
}
