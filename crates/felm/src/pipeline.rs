//! The full FElm pipeline: parse → typecheck → normalize → extract →
//! translate.
//!
//! [`compile_source`] strings the stages together, producing either a plain
//! value (for non-reactive programs) or a runnable
//! [`elm_runtime::SignalGraph`]. This is the front half of the
//! Elm-to-JavaScript compiler (`elm-compiler` reuses it for code
//! generation) and the engine behind the interpreter examples.

use std::fmt;

use elm_runtime::{SignalGraph, Value};

use crate::ast::Type;
use crate::check::TypeError;
use crate::env::{Adts, InputEnv};
use crate::eval::{normalize, EvalError, DEFAULT_FUEL};
use crate::infer::infer_type_with;
use crate::intermediate::{FinalTerm, IlError, SignalTerm};
use crate::parser::{parse_program, ParseError};
use crate::translate::{expr_to_value, translate, TranslateError};

/// Any failure along the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Lexing / parsing failed.
    Parse(ParseError),
    /// Type checking failed.
    Type(TypeError),
    /// Stage-one evaluation failed (impossible for well-typed programs).
    Eval(EvalError),
    /// The normal form violated the intermediate-language grammar.
    Intermediate(IlError),
    /// Graph construction failed.
    Translate(TranslateError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Eval(e) => write!(f, "{e}"),
            CompileError::Intermediate(e) => write!(f, "{e}"),
            CompileError::Translate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

impl From<EvalError> for CompileError {
    fn from(e: EvalError) -> Self {
        CompileError::Eval(e)
    }
}

impl From<IlError> for CompileError {
    fn from(e: IlError) -> Self {
        CompileError::Intermediate(e)
    }
}

impl From<TranslateError> for CompileError {
    fn from(e: TranslateError) -> Self {
        CompileError::Translate(e)
    }
}

/// What a program denotes after both evaluation stages.
#[derive(Clone, Debug)]
pub enum ProgramResult {
    /// The program is pure: `main` is a plain value.
    Value(Value),
    /// The program is reactive: `main` is a signal graph.
    Reactive(SignalGraph),
}

/// A fully compiled program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The inferred type of `main`.
    pub program_type: Type,
    /// The program's `data` declarations.
    pub adts: Adts,
    /// The validated intermediate term (for inspection / codegen).
    pub final_term: FinalTerm,
    /// The runnable result.
    pub result: ProgramResult,
}

impl CompiledProgram {
    /// The signal graph, if the program is reactive.
    pub fn graph(&self) -> Option<&SignalGraph> {
        match &self.result {
            ProgramResult::Reactive(g) => Some(g),
            ProgramResult::Value(_) => None,
        }
    }
}

/// Compiles a whole FElm program (definitions + `main`).
///
/// # Errors
///
/// Returns the first error from any pipeline stage.
///
/// ```
/// use felm::{env::InputEnv, pipeline::compile_source};
/// let p = compile_source(
///     "main = lift2 (\\y z -> y / z) Mouse.x Window.width",
///     &InputEnv::standard(),
/// ).unwrap();
/// assert!(p.graph().is_some());
/// ```
pub fn compile_source(src: &str, env: &InputEnv) -> Result<CompiledProgram, CompileError> {
    let program = parse_program(src)?;
    let adts = Adts::from_defs(&program.datas)?;
    let expr = program.to_expr()?;
    // Resolve bare constructor references against the declarations before
    // typing and evaluation.
    let expr = adts.resolve(&expr)?;
    let program_type = infer_type_with(env, &adts, &expr)?;
    let normal = normalize(&expr, DEFAULT_FUEL)?;
    let final_term = FinalTerm::from_expr(&normal)?;
    let result = match &final_term {
        FinalTerm::Value(v) => {
            let value = expr_to_value(v).unwrap_or(Value::Unit);
            ProgramResult::Value(value)
        }
        FinalTerm::Signal(s) => ProgramResult::Reactive(build_graph(s, env)?),
    };
    Ok(CompiledProgram {
        program_type,
        adts,
        final_term,
        result,
    })
}

fn build_graph(term: &SignalTerm, env: &InputEnv) -> Result<SignalGraph, CompileError> {
    Ok(translate(term, env)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_runtime::{changed_values, Occurrence, SyncRuntime};

    #[test]
    fn compiles_the_slideshow_skeleton() {
        // Paper Fig. 14 (sans graphics): count clicks, pick an index.
        let src = "\
count s = foldp (\\x c -> c + 1) 0 s
index1 = count Mouse.clicks
main = lift (\\i -> i % 3) index1";
        let p = compile_source(src, &InputEnv::standard()).unwrap();
        assert_eq!(p.program_type, Type::signal(Type::Int));
        let g = p.graph().unwrap();
        let clicks = g.input_named("Mouse.clicks").unwrap();
        let outs =
            SyncRuntime::run_trace(g, (0..5).map(|_| Occurrence::input(clicks, Value::Unit)))
                .unwrap();
        assert_eq!(
            changed_values(&outs),
            [1, 2, 0, 1, 2].map(Value::Int).to_vec()
        );
    }

    #[test]
    fn pure_programs_compile_to_values() {
        let p = compile_source("main = 6 * 7", &InputEnv::standard()).unwrap();
        assert_eq!(p.program_type, Type::Int);
        let ProgramResult::Value(v) = &p.result else {
            panic!()
        };
        assert_eq!(v, &Value::Int(42));
        assert!(p.graph().is_none());
    }

    #[test]
    fn each_stage_reports_errors() {
        let env = InputEnv::standard();
        assert!(matches!(
            compile_source("main = ((", &env),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile_source("main = 1 + ()", &env),
            Err(CompileError::Type(_))
        ));
        assert!(matches!(
            compile_source("main = lift (\\x -> Mouse.x) Mouse.y", &env),
            Err(CompileError::Type(_))
        ));
        assert!(matches!(
            compile_source("x = 1", &env),
            Err(CompileError::Parse(_))
        ));
    }

    #[test]
    fn example3_wiring_compiles_with_async() {
        // §2 Example 3's structure with the HTTP fetch replaced by string
        // work (the environment crate supplies the real mock service).
        let src = "\
getImage tags = lift (\\t -> \"img:\" ++ t) tags
scene = \\a -> \\b -> (a, b)
main = lift2 scene Mouse.x (async (getImage Words.input))";
        let p = compile_source(src, &InputEnv::standard()).unwrap();
        let g = p.graph().unwrap();
        assert_eq!(g.async_sources().len(), 1);
        assert_eq!(
            p.program_type,
            Type::signal(Type::pair(Type::Int, Type::Str))
        );
    }
}
