//! Abstract syntax for FElm (paper Fig. 3, plus full-language extensions).
//!
//! Expressions carry [`Span`]s for diagnostics. The type language is
//! stratified exactly as in the paper: *simple types* τ never mention
//! signals; *signal types* σ are `signal τ`, functions into signal types,
//! or functions between signal types. The stratification (checked by
//! [`Type::classify`]) is what rules out signals-of-signals (§3.2).

use std::fmt;

use crate::span::Span;

/// Binary operators. The paper's ⊕ ranges over total binary integer
/// operations; the full language adds comparisons (returning `0`/`1` as in
/// FElm's int-encoded booleans), logical connectives, and string append.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (total: division by zero yields 0, keeping ⊕ total as required)
    Div,
    /// `%` (total: modulo by zero yields 0)
    Mod,
    /// `==`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (on int-encoded booleans)
    And,
    /// `||`
    Or,
    /// `++` string append
    Append,
    /// `::` list cons (full-language extension)
    Cons,
}

impl BinOp {
    /// The operator's surface symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "/=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Append => "++",
            BinOp::Cons => "::",
        }
    }

    /// Looks up an operator by symbol.
    pub fn from_symbol(s: &str) -> Option<BinOp> {
        Some(match s {
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Mod,
            "==" => BinOp::Eq,
            "/=" => BinOp::Ne,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "&&" => BinOp::And,
            "||" => BinOp::Or,
            "++" => BinOp::Append,
            "::" => BinOp::Cons,
            _ => return None,
        })
    }

    /// True for operators whose operands are strings (`++`).
    pub fn is_string_op(self) -> bool {
        matches!(self, BinOp::Append)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression together with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The node itself.
    pub kind: ExprKind,
    /// Source location (dummy for synthesized nodes).
    pub span: Span,
}

impl Expr {
    /// Wraps a kind with a span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Wraps a kind with a dummy span (synthesized nodes).
    pub fn synth(kind: ExprKind) -> Self {
        Expr::new(kind, Span::dummy())
    }
}

/// Expression forms (paper Fig. 3 plus floats, strings, pairs).
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// `()`
    Unit,
    /// Integer literal `n`.
    Int(i64),
    /// Float literal (full-language extension).
    Float(f64),
    /// String literal (full-language extension).
    Str(String),
    /// Variable `x`.
    Var(String),
    /// Input signal `i ∈ Input`, e.g. `Mouse.x`.
    Input(String),
    /// `λx[:τ]. e` — annotation optional (required by the checker, inferred
    /// otherwise).
    Lam {
        /// Parameter name.
        param: String,
        /// Optional parameter type annotation.
        ann: Option<Type>,
        /// Body.
        body: Box<Expr>,
    },
    /// Application `e1 e2`.
    App(Box<Expr>, Box<Expr>),
    /// `e1 ⊕ e2`.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// `if e1 then e2 else e3` (test is an int; nonzero = true).
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let x = e1 in e2`.
    Let {
        /// Bound name.
        name: String,
        /// Bound expression.
        value: Box<Expr>,
        /// Body.
        body: Box<Expr>,
    },
    /// Pair `(e1, e2)` (simple-typed components).
    Pair(Box<Expr>, Box<Expr>),
    /// `fst e`.
    Fst(Box<Expr>),
    /// `snd e`.
    Snd(Box<Expr>),
    /// A list literal `[e1, …, en]` (full-language extension).
    List(Vec<Expr>),
    /// A unary list primitive (`head`, `tail`, `isEmpty`, `length`).
    ListOp(ListOp, Box<Expr>),
    /// `ith e1 e2` — zero-based indexing (Fig. 14's `ith`).
    Ith(Box<Expr>, Box<Expr>),
    /// A record literal `{x = e1, y = e2}` (full-language extension;
    /// non-extensible — see the crate docs for the delta from full Elm).
    Record(Vec<(String, Expr)>),
    /// Field access `e.x`.
    Field(Box<Expr>, String),
    /// `liftn e e1 … en`.
    Lift {
        /// The function to lift.
        func: Box<Expr>,
        /// The `n` signal arguments.
        args: Vec<Expr>,
    },
    /// `foldp e1 e2 e3`.
    Foldp {
        /// The fold function `τ → τ' → τ'`.
        func: Box<Expr>,
        /// The initial accumulator.
        init: Box<Expr>,
        /// The signal folded over.
        signal: Box<Expr>,
    },
    /// `async e`.
    Async(Box<Expr>),
    /// A bare constructor reference, e.g. `Just` — produced by the parser
    /// and eliminated by [`crate::env::Adts::resolve`] (nullary becomes a
    /// saturated [`ExprKind::CtorApp`]; n-ary becomes an eta-expanded
    /// lambda around one).
    Ctor(String),
    /// A saturated constructor application, e.g. `Just 3` after
    /// resolution. Only ever constructed with exactly the declared number
    /// of arguments.
    CtorApp(String, Vec<Expr>),
    /// `case e of | p1 -> e1 | p2 -> e2 …` — pattern matching over an
    /// algebraic data type (flat patterns).
    Case {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The branches, tried in order.
        branches: Vec<CaseBranch>,
    },
    /// A library signal primitive of §4.2: `merge s1 s2`,
    /// `sampleOn ticker data`, `dropRepeats s`, `keepIf pred base s`.
    SignalPrim {
        /// Which primitive.
        op: SignalPrimOp,
        /// Operands in surface order (functions/values first, then
        /// signals — see [`SignalPrimOp::arity`]).
        args: Vec<Expr>,
    },
}

/// One branch of a `case` expression.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseBranch {
    /// The pattern.
    pub pattern: Pattern,
    /// The branch body.
    pub body: Expr,
}

/// Flat patterns: a constructor with variable binders, a catch-all
/// variable, or a wildcard.
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    /// `Ctor x y` — matches the constructor, binding its arguments.
    Ctor {
        /// Constructor name.
        name: String,
        /// One binder per constructor argument (`_` allowed as a binder).
        binders: Vec<String>,
    },
    /// `x` — matches anything, binding it.
    Var(String),
    /// `_` — matches anything.
    Wildcard,
}

/// A top-level algebraic data type declaration:
/// `data Name = Ctor1 T1 T2 | Ctor2 | …` (monomorphic; recursive
/// references to `Name` in argument types are allowed — the "recursive
/// simple types" of paper §4).
#[derive(Clone, Debug, PartialEq)]
pub struct DataDef {
    /// The type name.
    pub name: String,
    /// The constructors with their argument types.
    pub ctors: Vec<(String, Vec<Type>)>,
}

/// The §4.2 library signal primitives available in FElm source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalPrimOp {
    /// `merge : Signal a -> Signal a -> Signal a` (left-biased).
    Merge,
    /// `sampleOn : Signal a -> Signal b -> Signal b`.
    SampleOn,
    /// `dropRepeats : Signal a -> Signal a`.
    DropRepeats,
    /// `keepIf : (a -> Bool) -> a -> Signal a -> Signal a`.
    KeepIf,
}

impl SignalPrimOp {
    /// The surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            SignalPrimOp::Merge => "merge",
            SignalPrimOp::SampleOn => "sampleOn",
            SignalPrimOp::DropRepeats => "dropRepeats",
            SignalPrimOp::KeepIf => "keepIf",
        }
    }

    /// Total operand count.
    pub fn arity(self) -> usize {
        match self {
            SignalPrimOp::Merge | SignalPrimOp::SampleOn => 2,
            SignalPrimOp::DropRepeats => 1,
            SignalPrimOp::KeepIf => 3,
        }
    }

    /// How many leading operands are simple values (the rest are signals).
    pub fn value_args(self) -> usize {
        match self {
            SignalPrimOp::KeepIf => 2, // predicate + base value
            _ => 0,
        }
    }
}

impl ExprKind {
    /// Convenience constructor producing a span-less [`Expr`].
    pub fn into_expr(self) -> Expr {
        Expr::synth(self)
    }
}

/// Unary list primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ListOp {
    /// First element; stuck on the empty list (a runtime error, as in Elm).
    Head,
    /// All but the first element; stuck on the empty list.
    Tail,
    /// `1` if empty, `0` otherwise (int-encoded boolean).
    IsEmpty,
    /// Number of elements.
    Length,
}

impl ListOp {
    /// The surface keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ListOp::Head => "head",
            ListOp::Tail => "tail",
            ListOp::IsEmpty => "isEmpty",
            ListOp::Length => "length",
        }
    }
}

/// FElm types (paper Fig. 3): τ simple, σ signal, with the full-language
/// additions `float`, `string`, pairs, and lists of simple types.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// `unit`
    Unit,
    /// `int`
    Int,
    /// `float`
    Float,
    /// `string`
    Str,
    /// `(τ1, τ2)` — both components simple.
    Pair(Box<Type>, Box<Type>),
    /// `[τ]` — element type simple.
    List(Box<Type>),
    /// `{x : τ1, …}` — field types simple; fields sorted by name.
    Record(std::collections::BTreeMap<String, Type>),
    /// A declared algebraic data type, by name (always simple; possibly
    /// recursive).
    Named(String),
    /// `t1 -> t2`
    Fun(Box<Type>, Box<Type>),
    /// `signal τ` — payload must be simple.
    Signal(Box<Type>),
    /// A unification variable (inference only; never in checked programs).
    Var(u32),
}

/// The stratum a type belongs to (paper Fig. 3's τ / σ split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stratum {
    /// A simple type τ: no signals anywhere.
    Simple,
    /// A signal type σ: `signal τ`, `τ → σ`, or `σ → σ'`.
    SignalKind,
    /// Outside the grammar (e.g. `signal (signal int)` or `σ → τ`).
    Invalid,
}

impl Type {
    /// Builds `t1 -> t2`.
    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// Builds `signal t`.
    pub fn signal(t: Type) -> Type {
        Type::Signal(Box::new(t))
    }

    /// Builds `(t1, t2)`.
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Pair(Box::new(a), Box::new(b))
    }

    /// Builds `[t]`.
    pub fn list(t: Type) -> Type {
        Type::List(Box::new(t))
    }

    /// Builds a record type from `(field, type)` pairs.
    pub fn record(fields: impl IntoIterator<Item = (String, Type)>) -> Type {
        Type::Record(fields.into_iter().collect())
    }

    /// True if the type contains no `Signal` constructor (and no
    /// unification variables): the τ stratum.
    pub fn is_simple(&self) -> bool {
        match self {
            Type::Unit | Type::Int | Type::Float | Type::Str => true,
            Type::Pair(a, b) => a.is_simple() && b.is_simple(),
            Type::List(t) => t.is_simple(),
            Type::Record(fields) => fields.values().all(Type::is_simple),
            Type::Named(_) => true,
            Type::Fun(a, b) => a.is_simple() && b.is_simple(),
            Type::Signal(_) | Type::Var(_) => false,
        }
    }

    /// Classifies the type against the stratified grammar of Fig. 3.
    ///
    /// ```
    /// use felm::ast::{Stratum, Type};
    /// assert_eq!(Type::Int.classify(), Stratum::Simple);
    /// assert_eq!(Type::signal(Type::Int).classify(), Stratum::SignalKind);
    /// // signals of signals are outside the grammar:
    /// assert_eq!(Type::signal(Type::signal(Type::Int)).classify(), Stratum::Invalid);
    /// // and so are functions from signals to simple values:
    /// assert_eq!(
    ///     Type::fun(Type::signal(Type::Int), Type::Int).classify(),
    ///     Stratum::Invalid
    /// );
    /// ```
    pub fn classify(&self) -> Stratum {
        match self {
            Type::Unit | Type::Int | Type::Float | Type::Str => Stratum::Simple,
            Type::Pair(a, b) => {
                if a.is_simple() && b.is_simple() {
                    Stratum::Simple
                } else {
                    Stratum::Invalid
                }
            }
            Type::List(t) => {
                if t.is_simple() {
                    Stratum::Simple
                } else {
                    Stratum::Invalid
                }
            }
            Type::Record(fields) => {
                if fields.values().all(Type::is_simple) {
                    Stratum::Simple
                } else {
                    Stratum::Invalid
                }
            }
            Type::Named(_) => Stratum::Simple,
            Type::Signal(t) => {
                if t.is_simple() {
                    Stratum::SignalKind
                } else {
                    Stratum::Invalid
                }
            }
            Type::Fun(a, b) => match (a.classify(), b.classify()) {
                (Stratum::Simple, Stratum::Simple) => Stratum::Simple,
                // σ ::= τ → σ | σ → σ'
                (Stratum::Simple, Stratum::SignalKind) => Stratum::SignalKind,
                (Stratum::SignalKind, Stratum::SignalKind) => Stratum::SignalKind,
                _ => Stratum::Invalid,
            },
            Type::Var(_) => Stratum::Invalid,
        }
    }

    /// True if the type is in the grammar at all (τ or σ).
    pub fn is_well_formed(&self) -> bool {
        self.classify() != Stratum::Invalid
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn atom(t: &Type, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                Type::Fun(..) | Type::Signal(..) => write!(f, "({t})"),
                _ => write!(f, "{t}"),
            }
        }
        match self {
            Type::Unit => write!(f, "()"),
            Type::Int => write!(f, "Int"),
            Type::Float => write!(f, "Float"),
            Type::Str => write!(f, "String"),
            Type::Pair(a, b) => write!(f, "({a}, {b})"),
            Type::List(t) => write!(f, "[{t}]"),
            Type::Named(name) => write!(f, "{name}"),
            Type::Record(fields) => {
                write!(f, "{{")?;
                for (k, (name, ty)) in fields.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} : {ty}")?;
                }
                write!(f, "}}")
            }
            Type::Fun(a, b) => match **a {
                Type::Fun(..) => write!(f, "({a}) -> {b}"),
                _ => write!(f, "{a} -> {b}"),
            },
            Type::Signal(t) => {
                write!(f, "Signal ")?;
                atom(t, f)
            }
            Type::Var(n) => write!(f, "t{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_symbol_round_trip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
            BinOp::Append,
        ] {
            assert_eq!(BinOp::from_symbol(op.symbol()), Some(op));
        }
        assert_eq!(BinOp::from_symbol("??"), None);
    }

    #[test]
    fn stratification_matches_fig3() {
        use Stratum::*;
        // τ examples
        assert_eq!(Type::fun(Type::Int, Type::Int).classify(), Simple);
        assert_eq!(Type::pair(Type::Int, Type::Str).classify(), Simple);
        // σ examples
        assert_eq!(Type::signal(Type::Int).classify(), SignalKind);
        assert_eq!(
            Type::fun(Type::Int, Type::signal(Type::Int)).classify(),
            SignalKind
        );
        assert_eq!(
            Type::fun(Type::signal(Type::Int), Type::signal(Type::Int)).classify(),
            SignalKind
        );
        // invalid examples
        assert_eq!(Type::signal(Type::signal(Type::Unit)).classify(), Invalid);
        assert_eq!(
            Type::fun(Type::signal(Type::Int), Type::Int).classify(),
            Invalid
        );
        assert_eq!(
            Type::pair(Type::signal(Type::Int), Type::Int).classify(),
            Invalid
        );
        assert_eq!(
            Type::signal(Type::fun(Type::Int, Type::signal(Type::Int))).classify(),
            Invalid
        );
    }

    #[test]
    fn type_display_is_readable() {
        assert_eq!(Type::signal(Type::Int).to_string(), "Signal Int");
        assert_eq!(
            Type::fun(Type::fun(Type::Int, Type::Int), Type::signal(Type::Int)).to_string(),
            "(Int -> Int) -> Signal Int"
        );
        assert_eq!(
            Type::signal(Type::pair(Type::Int, Type::Int)).to_string(),
            "Signal (Int, Int)"
        );
        assert_eq!(
            Type::fun(Type::Int, Type::fun(Type::Int, Type::Int)).to_string(),
            "Int -> Int -> Int"
        );
    }
}
