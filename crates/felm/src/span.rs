//! Source spans for diagnostics.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width placeholder span (synthesized nodes).
    pub fn dummy() -> Self {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based line and column of this span's start in `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_and_line_col() {
        let a = Span::new(2, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.to(b), Span::new(2, 10));
        let src = "ab\ncdef\ng";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 4));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
    }
}
