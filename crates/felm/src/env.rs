//! Input-signal environments: the `Γinput` of the paper.
//!
//! A program is well typed if `Γinput ⊢ e : t` where `Γinput` maps every
//! input identifier `i ∈ Input` to a signal type (§3.2). Every input also
//! carries its required default value (§3.1), which stage two uses to seed
//! the graph.
//!
//! [`InputEnv::standard`] declares the signals of paper Fig. 13 that fit
//! the core calculus's types, playing the role of the browser environment;
//! the simulated drivers in `elm-environment` generate events for them.

use std::collections::BTreeMap;

use elm_runtime::Value;

use crate::ast::{CaseBranch, DataDef, Expr, ExprKind, Type};
use crate::span::Span;

/// Declaration of one input signal.
#[derive(Clone, Debug, PartialEq)]
pub struct InputDecl {
    /// The qualified name, e.g. `"Mouse.position"`.
    pub name: String,
    /// Its type — always `Signal τ` for simple τ.
    pub ty: Type,
    /// The default (pre-first-event) value, of shape τ.
    pub default: Value,
}

/// A set of input-signal declarations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct InputEnv {
    decls: BTreeMap<String, InputDecl>,
}

impl InputEnv {
    /// An empty environment.
    pub fn new() -> Self {
        InputEnv::default()
    }

    /// The environment of paper Fig. 13 (those signals expressible in the
    /// core type language), plus `Words.input` used by the translation
    /// examples of §3.3.2.
    pub fn standard() -> Self {
        let mut env = InputEnv::new();
        let pair_i = Type::pair(Type::Int, Type::Int);
        let origin = Value::pair(Value::Int(0), Value::Int(0));
        env.declare(
            "Mouse.position",
            Type::signal(pair_i.clone()),
            origin.clone(),
        );
        env.declare("Mouse.x", Type::signal(Type::Int), Value::Int(0));
        env.declare("Mouse.y", Type::signal(Type::Int), Value::Int(0));
        env.declare("Mouse.clicks", Type::signal(Type::Unit), Value::Unit);
        env.declare("Mouse.isDown", Type::signal(Type::Int), Value::Int(0));
        env.declare("Window.dimensions", Type::signal(pair_i), origin);
        env.declare("Window.width", Type::signal(Type::Int), Value::Int(1024));
        env.declare("Window.height", Type::signal(Type::Int), Value::Int(768));
        env.declare(
            "Keyboard.lastPressed",
            Type::signal(Type::Int),
            Value::Int(0),
        );
        env.declare("Keyboard.shift", Type::signal(Type::Int), Value::Int(0));
        env.declare(
            "Keyboard.arrows",
            Type::signal(Type::record([
                ("x".to_string(), Type::Int),
                ("y".to_string(), Type::Int),
            ])),
            Value::record([
                ("x".to_string(), Value::Int(0)),
                ("y".to_string(), Value::Int(0)),
            ]),
        );
        env.declare("Time.millis", Type::signal(Type::Int), Value::Int(0));
        env.declare("Time.fps", Type::signal(Type::Float), Value::Float(0.0));
        env.declare(
            "Touch.taps",
            Type::signal(Type::pair(Type::Int, Type::Int)),
            Value::pair(Value::Int(0), Value::Int(0)),
        );
        env.declare(
            "Touch.touches",
            Type::signal(Type::list(Type::pair(Type::Int, Type::Int))),
            Value::list([]),
        );
        env.declare("Words.input", Type::signal(Type::Str), Value::str(""));
        env.declare("Input.text", Type::signal(Type::Str), Value::str(""));
        env
    }

    /// Adds (or replaces) a declaration.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not `Signal τ` for a simple τ — input signals must
    /// have signal types (§3.2).
    pub fn declare(&mut self, name: impl Into<String>, ty: Type, default: Value) {
        let name = name.into();
        match &ty {
            Type::Signal(inner) if inner.is_simple() => {}
            other => panic!("input {name} must have a simple signal type, got {other}"),
        }
        self.decls
            .insert(name.clone(), InputDecl { name, ty, default });
    }

    /// Looks up a declaration.
    pub fn get(&self, name: &str) -> Option<&InputDecl> {
        self.decls.get(name)
    }

    /// All declarations, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &InputDecl> {
        self.decls.values()
    }

    /// Number of declared inputs.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// True if no inputs are declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_env_has_paper_signals() {
        let env = InputEnv::standard();
        assert_eq!(
            env.get("Mouse.position").unwrap().ty,
            Type::signal(Type::pair(Type::Int, Type::Int))
        );
        assert_eq!(env.get("Window.width").unwrap().default, Value::Int(1024));
        assert!(env.get("Flickr.photos").is_none());
        assert!(env.len() > 10);
    }

    #[test]
    #[should_panic(expected = "simple signal type")]
    fn non_signal_inputs_are_rejected() {
        let mut env = InputEnv::new();
        env.declare("Bad.input", Type::Int, Value::Int(0));
    }

    #[test]
    #[should_panic(expected = "simple signal type")]
    fn signal_of_signal_inputs_are_rejected() {
        let mut env = InputEnv::new();
        env.declare(
            "Bad.nested",
            Type::signal(Type::signal(Type::Int)),
            Value::Int(0),
        );
    }
}

/// Information about one declared constructor.
#[derive(Clone, Debug, PartialEq)]
pub struct CtorInfo {
    /// The ADT this constructor belongs to.
    pub adt: String,
    /// The constructor's argument types.
    pub args: Vec<Type>,
}

/// The algebraic data types declared by a program (`data` definitions).
///
/// Constructor names are global (as in Elm): declaring two ADTs with a
/// shared constructor name is an error.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Adts {
    ctors: BTreeMap<String, CtorInfo>,
    adts: BTreeMap<String, Vec<String>>,
}

impl Adts {
    /// No declarations.
    pub fn new() -> Self {
        Adts::default()
    }

    /// Builds a registry from parsed `data` definitions, validating that
    /// names are fresh, argument types are well-formed simple types, and
    /// every `Named` reference resolves (self/forward references allowed —
    /// recursive simple types, paper §4).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::check::TypeError`] describing the violation.
    pub fn from_defs(defs: &[DataDef]) -> Result<Adts, crate::check::TypeError> {
        let mut out = Adts::new();
        let err = |message: String| crate::check::TypeError {
            message,
            span: Span::dummy(),
        };
        // First pass: register type names.
        for def in defs {
            if matches!(def.name.as_str(), "Int" | "Float" | "String" | "Signal") {
                return Err(err(format!("type name `{}` is reserved", def.name)));
            }
            if out.adts.insert(def.name.clone(), Vec::new()).is_some() {
                return Err(err(format!("duplicate data type `{}`", def.name)));
            }
        }
        // Second pass: register constructors and validate argument types.
        for def in defs {
            if def.ctors.is_empty() {
                return Err(err(format!("data type `{}` has no constructors", def.name)));
            }
            for (ctor, args) in &def.ctors {
                for ty in args {
                    out.validate_arg(ty)
                        .map_err(|m| err(format!("constructor `{ctor}` of `{}`: {m}", def.name)))?;
                }
                let info = CtorInfo {
                    adt: def.name.clone(),
                    args: args.clone(),
                };
                if out.ctors.insert(ctor.clone(), info).is_some() {
                    return Err(err(format!("duplicate constructor `{ctor}`")));
                }
                out.adts
                    .get_mut(&def.name)
                    .expect("registered in the first pass")
                    .push(ctor.clone());
            }
        }
        Ok(out)
    }

    fn validate_arg(&self, ty: &Type) -> Result<(), String> {
        match ty {
            Type::Named(name) => {
                if self.adts.contains_key(name) {
                    Ok(())
                } else {
                    Err(format!("unknown type `{name}`"))
                }
            }
            Type::Signal(_) | Type::Var(_) => Err(format!("`{ty}` is not a simple type")),
            Type::Pair(a, b) | Type::Fun(a, b) => {
                self.validate_arg(a)?;
                self.validate_arg(b)
            }
            Type::List(t) => self.validate_arg(t),
            Type::Record(fields) => fields.values().try_for_each(|t| self.validate_arg(t)),
            _ => Ok(()),
        }
    }

    /// Looks up a constructor.
    pub fn ctor(&self, name: &str) -> Option<&CtorInfo> {
        self.ctors.get(name)
    }

    /// The constructor names of an ADT, in declaration order.
    pub fn variants(&self, adt: &str) -> Option<&[String]> {
        self.adts.get(adt).map(Vec::as_slice)
    }

    /// True if the type name is declared.
    pub fn contains_type(&self, name: &str) -> bool {
        self.adts.contains_key(name)
    }

    /// Eliminates bare [`ExprKind::Ctor`] references: nullary constructors
    /// become saturated [`ExprKind::CtorApp`]s; n-ary ones become
    /// eta-expanded lambdas around a saturated application (so downstream
    /// stages never deal with partial constructor application).
    ///
    /// # Errors
    ///
    /// Fails on references to undeclared constructors.
    pub fn resolve(&self, e: &Expr) -> Result<Expr, crate::check::TypeError> {
        let kind = match &e.kind {
            ExprKind::Ctor(name) => {
                let info = self.ctor(name).ok_or_else(|| crate::check::TypeError {
                    message: format!("unknown constructor `{name}`"),
                    span: e.span,
                })?;
                let arity = info.args.len();
                if arity == 0 {
                    ExprKind::CtorApp(name.clone(), Vec::new())
                } else {
                    // 0 … a(n-1) -> Ctor a0 … a(n-1), with annotations so
                    // the declarative checker accepts it too.
                    let binders: Vec<String> =
                        (0..arity).map(|k| format!("{}#arg{k}", name)).collect();
                    let saturated = Expr::new(
                        ExprKind::CtorApp(
                            name.clone(),
                            binders
                                .iter()
                                .map(|b| Expr::new(ExprKind::Var(b.clone()), e.span))
                                .collect(),
                        ),
                        e.span,
                    );
                    let mut body = saturated;
                    for (binder, ty) in binders.iter().zip(&info.args).rev() {
                        body = Expr::new(
                            ExprKind::Lam {
                                param: binder.clone(),
                                ann: Some(ty.clone()),
                                body: Box::new(body),
                            },
                            e.span,
                        );
                    }
                    return Ok(body);
                }
            }
            ExprKind::CtorApp(name, args) => ExprKind::CtorApp(
                name.clone(),
                args.iter()
                    .map(|a| self.resolve(a))
                    .collect::<Result<_, _>>()?,
            ),
            ExprKind::Case {
                scrutinee,
                branches,
            } => ExprKind::Case {
                scrutinee: Box::new(self.resolve(scrutinee)?),
                branches: branches
                    .iter()
                    .map(|b| {
                        Ok(CaseBranch {
                            pattern: b.pattern.clone(),
                            body: self.resolve(&b.body)?,
                        })
                    })
                    .collect::<Result<_, crate::check::TypeError>>()?,
            },
            ExprKind::Unit
            | ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Var(_)
            | ExprKind::Input(_) => e.kind.clone(),
            ExprKind::Lam { param, ann, body } => ExprKind::Lam {
                param: param.clone(),
                ann: ann.clone(),
                body: Box::new(self.resolve(body)?),
            },
            ExprKind::App(..) => {
                // Contract constructor application spines directly into
                // saturated `CtorApp`s (partial applications fall back to
                // the eta-expanded head).
                let mut spine = Vec::new();
                let mut head = e;
                while let ExprKind::App(f, a) = &head.kind {
                    spine.push(&**a);
                    head = f;
                }
                spine.reverse();
                if let ExprKind::Ctor(name) = &head.kind {
                    if let Some(info) = self.ctor(name) {
                        if spine.len() == info.args.len() {
                            return Ok(Expr::new(
                                ExprKind::CtorApp(
                                    name.clone(),
                                    spine
                                        .iter()
                                        .map(|a| self.resolve(a))
                                        .collect::<Result<_, _>>()?,
                                ),
                                e.span,
                            ));
                        }
                    }
                }
                let ExprKind::App(f, a) = &e.kind else {
                    unreachable!("guarded by the outer match");
                };
                ExprKind::App(Box::new(self.resolve(f)?), Box::new(self.resolve(a)?))
            }
            ExprKind::BinOp(op, a, b) => {
                ExprKind::BinOp(*op, Box::new(self.resolve(a)?), Box::new(self.resolve(b)?))
            }
            ExprKind::If(c, t, f) => ExprKind::If(
                Box::new(self.resolve(c)?),
                Box::new(self.resolve(t)?),
                Box::new(self.resolve(f)?),
            ),
            ExprKind::Let { name, value, body } => ExprKind::Let {
                name: name.clone(),
                value: Box::new(self.resolve(value)?),
                body: Box::new(self.resolve(body)?),
            },
            ExprKind::Pair(a, b) => {
                ExprKind::Pair(Box::new(self.resolve(a)?), Box::new(self.resolve(b)?))
            }
            ExprKind::Fst(p) => ExprKind::Fst(Box::new(self.resolve(p)?)),
            ExprKind::Snd(p) => ExprKind::Snd(Box::new(self.resolve(p)?)),
            ExprKind::List(items) => ExprKind::List(
                items
                    .iter()
                    .map(|i| self.resolve(i))
                    .collect::<Result<_, _>>()?,
            ),
            ExprKind::ListOp(op, l) => ExprKind::ListOp(*op, Box::new(self.resolve(l)?)),
            ExprKind::Ith(i, l) => {
                ExprKind::Ith(Box::new(self.resolve(i)?), Box::new(self.resolve(l)?))
            }
            ExprKind::Record(fields) => ExprKind::Record(
                fields
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), self.resolve(v)?)))
                    .collect::<Result<_, crate::check::TypeError>>()?,
            ),
            ExprKind::Field(r, name) => ExprKind::Field(Box::new(self.resolve(r)?), name.clone()),
            ExprKind::Lift { func, args } => ExprKind::Lift {
                func: Box::new(self.resolve(func)?),
                args: args
                    .iter()
                    .map(|a| self.resolve(a))
                    .collect::<Result<_, _>>()?,
            },
            ExprKind::Foldp { func, init, signal } => ExprKind::Foldp {
                func: Box::new(self.resolve(func)?),
                init: Box::new(self.resolve(init)?),
                signal: Box::new(self.resolve(signal)?),
            },
            ExprKind::Async(inner) => ExprKind::Async(Box::new(self.resolve(inner)?)),
            ExprKind::SignalPrim { op, args } => ExprKind::SignalPrim {
                op: *op,
                args: args
                    .iter()
                    .map(|a| self.resolve(a))
                    .collect::<Result<_, _>>()?,
            },
        };
        Ok(Expr::new(kind, e.span))
    }
}
