//! Type inference for unannotated FElm programs.
//!
//! The paper's full language supports type inference and let-polymorphism
//! (§4). This module implements Hindley–Milner-style inference extended
//! with the *stratification* discipline of Fig. 3/4:
//!
//! * type variables that appear where a *simple* type τ is required (lift
//!   arguments/results, foldp operands, pair components, …) carry a
//!   **simple-mark**; unifying a marked variable with a type containing
//!   `Signal` is an error — this is exactly how signals-of-signals are
//!   ruled out without annotations;
//! * arithmetic (`+ - * / %`) and comparison operators carry class-style
//!   constraints (`Num`, `Cmp`) that are checked after solving and default
//!   to `Int` when unconstrained, matching the checker's overloading;
//! * `let` generalizes over unconstrained variables (let-polymorphism).
//!
//! The result of inference on a fully annotated program agrees with the
//! declarative checker ([`crate::check`]) — property-tested.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, ExprKind, Pattern, SignalPrimOp, Type};
use crate::check::TypeError;
use crate::env::Adts;
use crate::env::InputEnv;
use crate::span::Span;

/// A polymorphic type scheme `∀vars. ty`. Variables that carried a
/// simple-mark keep it: their instantiations are marked too, so
/// stratification survives generalization.
#[derive(Clone, Debug)]
struct Scheme {
    vars: Vec<u32>,
    marked: Vec<bool>,
    ty: Type,
}

impl Scheme {
    fn mono(ty: Type) -> Self {
        Scheme {
            vars: Vec::new(),
            marked: Vec::new(),
            ty,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    /// `Int` or `Float` (defaulting to `Int`).
    Num,
    /// `Int`, `Float`, or `String` for `==`/`/=`; `Int`/`Float` for `<` etc.
    Cmp { allow_str: bool },
}

/// The inference engine.
struct Infer<'a> {
    inputs: &'a InputEnv,
    adts: &'a Adts,
    subst: Vec<Option<Type>>,
    simple_marks: Vec<bool>,
    classes: Vec<(u32, Class, Span)>,
    /// Deferred `variable has field `name` of type t` constraints: a
    /// lightweight stand-in for row polymorphism. Resolved as soon as the
    /// variable is bound; unresolved constraints are errors at the end.
    field_constraints: Vec<(u32, String, Type, Span)>,
    vars: HashMap<String, Vec<Scheme>>,
}

/// Infers the principal type of `e` under `inputs`.
///
/// # Errors
///
/// Returns a [`TypeError`] on unification failure, stratification
/// violation, unsatisfiable operator constraints, or unknown names.
///
/// ```
/// use felm::{ast::Type, env::InputEnv, infer::infer_type, parser::parse_expr};
/// let e = parse_expr("lift2 (\\y z -> y / z) Mouse.x Window.width").unwrap();
/// assert_eq!(infer_type(&InputEnv::standard(), &e).unwrap(), Type::signal(Type::Int));
/// ```
pub fn infer_type(inputs: &InputEnv, e: &Expr) -> Result<Type, TypeError> {
    infer_type_with(inputs, &Adts::new(), e)
}

/// Like [`infer_type`], with the program's `data` declarations in scope.
///
/// # Errors
///
/// Returns a [`TypeError`] on any inference failure.
pub fn infer_type_with(inputs: &InputEnv, adts: &Adts, e: &Expr) -> Result<Type, TypeError> {
    let mut inf = Infer {
        inputs,
        adts,
        subst: Vec::new(),
        simple_marks: Vec::new(),
        classes: Vec::new(),
        field_constraints: Vec::new(),
        vars: HashMap::new(),
    };
    let t = inf.infer(e)?;
    inf.solve_field_constraints()?;
    inf.solve_classes()?;
    let t = inf.default_classes_in(t);
    let z = inf.zonk(&t);
    inf.check_stratified(&z, e.span)?;
    Ok(z)
}

impl Infer<'_> {
    fn fresh(&mut self) -> Type {
        let v = self.subst.len() as u32;
        self.subst.push(None);
        self.simple_marks.push(false);
        Type::Var(v)
    }

    fn zonk(&self, t: &Type) -> Type {
        match t {
            Type::Var(v) => match &self.subst[*v as usize] {
                Some(bound) => self.zonk(bound),
                None => Type::Var(*v),
            },
            Type::Pair(a, b) => Type::pair(self.zonk(a), self.zonk(b)),
            Type::List(t2) => Type::list(self.zonk(t2)),
            Type::Record(fields) => Type::Record(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), self.zonk(v)))
                    .collect(),
            ),
            Type::Fun(a, b) => Type::fun(self.zonk(a), self.zonk(b)),
            Type::Signal(inner) => Type::signal(self.zonk(inner)),
            other => other.clone(),
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match t {
            Type::Var(w) => {
                if *w == v {
                    return true;
                }
                match &self.subst[*w as usize] {
                    Some(bound) => self.occurs(v, &bound.clone()),
                    None => false,
                }
            }
            Type::Pair(a, b) | Type::Fun(a, b) => self.occurs(v, a) || self.occurs(v, b),
            Type::List(t2) | Type::Signal(t2) => self.occurs(v, t2),
            Type::Record(fields) => fields.values().any(|t| self.occurs(v, t)),
            _ => false,
        }
    }

    /// Marks a type as needing to be simple: any `Signal` inside is an
    /// immediate stratification error; unbound variables inherit the mark.
    fn mark_simple(&mut self, t: &Type, span: Span) -> Result<(), TypeError> {
        let z = self.zonk(t);
        match z {
            Type::Signal(_) => Err(TypeError {
                message: format!(
                    "signal type {z} used where a simple type is required \
                     (signals of signals are not allowed)"
                ),
                span,
            }),
            Type::Var(v) => {
                self.simple_marks[v as usize] = true;
                Ok(())
            }
            Type::Pair(a, b) | Type::Fun(a, b) => {
                self.mark_simple(&a, span)?;
                self.mark_simple(&b, span)
            }
            Type::List(t2) => self.mark_simple(&t2, span),
            Type::Record(fields) => {
                for t in fields.values() {
                    self.mark_simple(&t.clone(), span)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn bind(&mut self, v: u32, t: &Type, span: Span) -> Result<(), TypeError> {
        if let Type::Var(w) = t {
            if *w == v {
                return Ok(());
            }
        }
        if self.occurs(v, t) {
            return Err(TypeError {
                message: format!("infinite type: t{v} occurs in {}", self.zonk(t)),
                span,
            });
        }
        self.subst[v as usize] = Some(t.clone());
        if self.simple_marks[v as usize] {
            self.mark_simple(&t.clone(), span)?;
        }
        // Re-examine any field constraints waiting on this variable.
        let pending: Vec<(u32, String, Type, Span)> = {
            let (resolved, rest) = self
                .field_constraints
                .drain(..)
                .partition(|(w, _, _, _)| *w == v);
            self.field_constraints = rest;
            resolved
        };
        for (_, field, field_ty, c_span) in pending {
            self.apply_field_constraint(&Type::Var(v), &field, &field_ty, c_span)?;
        }
        Ok(())
    }

    /// Discharges (or re-defers) one field constraint against the current
    /// binding of `t`.
    fn apply_field_constraint(
        &mut self,
        t: &Type,
        field: &str,
        field_ty: &Type,
        span: Span,
    ) -> Result<(), TypeError> {
        match self.zonk(t) {
            Type::Record(fields) => match fields.get(field) {
                Some(actual) => self.unify(&actual.clone(), field_ty, span),
                None => Err(TypeError {
                    message: format!("record has no field `{field}`"),
                    span,
                }),
            },
            Type::Var(w) => {
                self.field_constraints
                    .push((w, field.to_string(), field_ty.clone(), span));
                Ok(())
            }
            other => Err(TypeError {
                message: format!("field access on a non-record: {other}"),
                span,
            }),
        }
    }

    /// End-of-inference check: every deferred field access must have found
    /// a record by now.
    fn solve_field_constraints(&mut self) -> Result<(), TypeError> {
        let pending = std::mem::take(&mut self.field_constraints);
        for (v, field, field_ty, span) in pending {
            match self.zonk(&Type::Var(v)) {
                Type::Record(fields) => match fields.get(&field) {
                    Some(actual) => self.unify(&actual.clone(), &field_ty, span)?,
                    None => {
                        return Err(TypeError {
                            message: format!("record has no field `{field}`"),
                            span,
                        })
                    }
                },
                Type::Var(_) => {
                    return Err(TypeError {
                        message: format!(
                            "cannot infer the record type for `.{field}`; \
                             annotate the parameter with a record type"
                        ),
                        span,
                    })
                }
                other => {
                    return Err(TypeError {
                        message: format!("field access on a non-record: {other}"),
                        span,
                    })
                }
            }
        }
        Ok(())
    }

    fn unify(&mut self, a: &Type, b: &Type, span: Span) -> Result<(), TypeError> {
        let a = self.zonk(a);
        let b = self.zonk(b);
        match (&a, &b) {
            (Type::Var(v), _) => self.bind(*v, &b, span),
            (_, Type::Var(v)) => self.bind(*v, &a, span),
            (Type::Unit, Type::Unit)
            | (Type::Int, Type::Int)
            | (Type::Float, Type::Float)
            | (Type::Str, Type::Str) => Ok(()),
            (Type::Pair(a1, a2), Type::Pair(b1, b2)) | (Type::Fun(a1, a2), Type::Fun(b1, b2)) => {
                self.unify(a1, b1, span)?;
                self.unify(a2, b2, span)
            }
            (Type::List(x), Type::List(y)) => self.unify(x, y, span),
            (Type::Named(x), Type::Named(y)) if x == y => Ok(()),
            (Type::Record(xs), Type::Record(ys)) => {
                if xs.len() != ys.len() || !xs.keys().eq(ys.keys()) {
                    return Err(TypeError {
                        message: format!("record fields differ: {a} versus {b}"),
                        span,
                    });
                }
                for (k, x) in xs {
                    self.unify(x, &ys[k], span)?;
                }
                Ok(())
            }
            (Type::Signal(x), Type::Signal(y)) => self.unify(x, y, span),
            _ => Err(TypeError {
                message: format!("cannot unify {a} with {b}"),
                span,
            }),
        }
    }

    fn free_vars_of(&self, t: &Type, out: &mut Vec<u32>) {
        match self.zonk(t) {
            Type::Var(v) if !out.contains(&v) => out.push(v),
            Type::Var(_) => {}
            Type::Pair(a, b) | Type::Fun(a, b) => {
                self.free_vars_of(&a, out);
                self.free_vars_of(&b, out);
            }
            Type::List(t2) => self.free_vars_of(&t2, out),
            Type::Record(fields) => {
                for t in fields.values() {
                    self.free_vars_of(&t.clone(), out);
                }
            }
            Type::Signal(inner) => self.free_vars_of(&inner, out),
            _ => {}
        }
    }

    fn env_free_vars(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for stack in self.vars.values() {
            for scheme in stack {
                let mut fv = Vec::new();
                self.free_vars_of(&scheme.ty, &mut fv);
                for v in fv {
                    if !scheme.vars.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    fn generalize(&mut self, t: &Type) -> Scheme {
        let env_fv = self.env_free_vars();
        let mut fv = Vec::new();
        self.free_vars_of(t, &mut fv);
        let mut constrained: Vec<u32> = self.classes.iter().map(|(v, _, _)| *v).collect();
        // Field-constrained variables stay monomorphic too: the deferred
        // constraint must bind the *same* variable its record later
        // unifies with.
        constrained.extend(self.field_constraints.iter().map(|(v, _, _, _)| *v));
        let vars: Vec<u32> = fv
            .into_iter()
            .filter(|v| !env_fv.contains(v) && !constrained.contains(v))
            .collect();
        let marked = vars
            .iter()
            .map(|v| self.simple_marks[*v as usize])
            .collect();
        Scheme {
            vars,
            marked,
            ty: self.zonk(t),
        }
    }

    fn instantiate(&mut self, scheme: &Scheme) -> Type {
        let mut mapping = HashMap::new();
        for (i, v) in scheme.vars.iter().enumerate() {
            let fresh = self.fresh();
            if scheme.marked.get(i).copied().unwrap_or(false) {
                if let Type::Var(w) = fresh {
                    self.simple_marks[w as usize] = true;
                }
            }
            mapping.insert(*v, fresh);
        }
        fn walk(t: &Type, mapping: &HashMap<u32, Type>) -> Type {
            match t {
                Type::Var(v) => mapping.get(v).cloned().unwrap_or(Type::Var(*v)),
                Type::Pair(a, b) => Type::pair(walk(a, mapping), walk(b, mapping)),
                Type::List(t2) => Type::list(walk(t2, mapping)),
                Type::Record(fields) => Type::Record(
                    fields
                        .iter()
                        .map(|(k, v)| (k.clone(), walk(v, mapping)))
                        .collect(),
                ),
                Type::Fun(a, b) => Type::fun(walk(a, mapping), walk(b, mapping)),
                Type::Signal(inner) => Type::signal(walk(inner, mapping)),
                other => other.clone(),
            }
        }
        walk(&scheme.ty, &mapping)
    }

    fn with_var<T>(&mut self, name: &str, scheme: Scheme, f: impl FnOnce(&mut Self) -> T) -> T {
        self.vars.entry(name.to_string()).or_default().push(scheme);
        let out = f(self);
        if let Some(stack) = self.vars.get_mut(name) {
            stack.pop();
        }
        out
    }

    fn class_constrain(&mut self, t: &Type, class: Class, span: Span) -> Result<(), TypeError> {
        match self.zonk(t) {
            Type::Var(v) => {
                self.classes.push((v, class, span));
                Ok(())
            }
            concrete => check_class(&concrete, class, span),
        }
    }

    fn solve_classes(&mut self) -> Result<(), TypeError> {
        // Iterate: default unresolved vars to Int, then verify.
        let classes = self.classes.clone();
        for (v, _class, _span) in &classes {
            let t = self.zonk(&Type::Var(*v));
            if let Type::Var(w) = t {
                // Defaulting: unconstrained numeric/comparable types are Int.
                self.subst[w as usize] = Some(Type::Int);
            }
        }
        for (v, class, span) in &classes {
            let t = self.zonk(&Type::Var(*v));
            check_class(&t, *class, *span)?;
        }
        Ok(())
    }

    /// Defaults any residual free type variables in the program type to
    /// their most useful ground type (Int), so `main = \x -> x` style
    /// programs still report a ground type.
    fn default_classes_in(&mut self, t: Type) -> Type {
        let mut fv = Vec::new();
        self.free_vars_of(&t, &mut fv);
        for v in fv {
            if self.subst[v as usize].is_none() {
                self.subst[v as usize] = Some(Type::Int);
            }
        }
        t
    }

    fn check_stratified(&self, t: &Type, span: Span) -> Result<(), TypeError> {
        if t.is_well_formed() {
            Ok(())
        } else {
            Err(TypeError {
                message: format!("inferred type {t} is outside the stratified grammar"),
                span,
            })
        }
    }

    fn infer(&mut self, e: &Expr) -> Result<Type, TypeError> {
        let span = e.span;
        match &e.kind {
            ExprKind::Unit => Ok(Type::Unit),
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Float(_) => Ok(Type::Float),
            ExprKind::Str(_) => Ok(Type::Str),
            ExprKind::Var(x) => {
                let scheme = self
                    .vars
                    .get(x)
                    .and_then(|s| s.last())
                    .cloned()
                    .ok_or_else(|| TypeError {
                        message: format!("unbound variable `{x}`"),
                        span,
                    })?;
                Ok(self.instantiate(&scheme))
            }
            ExprKind::Input(i) => match self.inputs.get(i) {
                Some(decl) => Ok(decl.ty.clone()),
                None => Err(TypeError {
                    message: format!("unknown input signal `{i}`"),
                    span,
                }),
            },
            ExprKind::Lam { param, ann, body } => {
                let param_ty = match ann {
                    Some(t) => {
                        if !t.is_well_formed() {
                            return Err(TypeError {
                                message: format!("ill-formed parameter type {t}"),
                                span,
                            });
                        }
                        t.clone()
                    }
                    None => self.fresh(),
                };
                let scheme = Scheme::mono(param_ty.clone());
                let body_ty = self.with_var(param, scheme, |s| s.infer(body))?;
                Ok(Type::fun(param_ty, body_ty))
            }
            ExprKind::App(f, a) => {
                let f_ty = self.infer(f)?;
                let a_ty = self.infer(a)?;
                let result = self.fresh();
                self.unify(&f_ty, &Type::fun(a_ty, result.clone()), span)?;
                Ok(result)
            }
            ExprKind::BinOp(op, a, b) => {
                let a_ty = self.infer(a)?;
                let b_ty = self.infer(b)?;
                use BinOp::*;
                match op {
                    Cons => {
                        self.unify(&b_ty, &Type::list(a_ty.clone()), span)?;
                        self.mark_simple(&a_ty, span)?;
                        Ok(self.zonk(&b_ty))
                    }
                    Append => {
                        self.unify(&a_ty, &Type::Str, a.span)?;
                        self.unify(&b_ty, &Type::Str, b.span)?;
                        Ok(Type::Str)
                    }
                    And | Or => {
                        self.unify(&a_ty, &Type::Int, a.span)?;
                        self.unify(&b_ty, &Type::Int, b.span)?;
                        Ok(Type::Int)
                    }
                    Mod => {
                        self.unify(&a_ty, &Type::Int, a.span)?;
                        self.unify(&b_ty, &Type::Int, b.span)?;
                        Ok(Type::Int)
                    }
                    Add | Sub | Mul | Div => {
                        self.unify(&a_ty, &b_ty, span)?;
                        self.class_constrain(&a_ty, Class::Num, span)?;
                        Ok(self.zonk(&a_ty))
                    }
                    Eq | Ne => {
                        self.unify(&a_ty, &b_ty, span)?;
                        self.class_constrain(&a_ty, Class::Cmp { allow_str: true }, span)?;
                        Ok(Type::Int)
                    }
                    Lt | Le | Gt | Ge => {
                        self.unify(&a_ty, &b_ty, span)?;
                        self.class_constrain(&a_ty, Class::Cmp { allow_str: false }, span)?;
                        Ok(Type::Int)
                    }
                }
            }
            ExprKind::If(c, t, f) => {
                let c_ty = self.infer(c)?;
                self.unify(&c_ty, &Type::Int, c.span)?;
                let t_ty = self.infer(t)?;
                let f_ty = self.infer(f)?;
                self.unify(&t_ty, &f_ty, span)?;
                Ok(self.zonk(&t_ty))
            }
            ExprKind::Let { name, value, body } => {
                let v_ty = self.infer(value)?;
                let scheme = self.generalize(&v_ty);
                self.with_var(name, scheme, |s| s.infer(body))
            }
            ExprKind::Pair(a, b) => {
                let a_ty = self.infer(a)?;
                let b_ty = self.infer(b)?;
                self.mark_simple(&a_ty, a.span)?;
                self.mark_simple(&b_ty, b.span)?;
                Ok(Type::pair(a_ty, b_ty))
            }
            ExprKind::List(items) => {
                let elem = self.fresh();
                for item in items {
                    let t = self.infer(item)?;
                    self.unify(&t, &elem, item.span)?;
                }
                self.mark_simple(&elem, span)?;
                Ok(Type::list(self.zonk(&elem)))
            }
            ExprKind::ListOp(op, l) => {
                use crate::ast::ListOp;
                let elem = self.fresh();
                let l_ty = self.infer(l)?;
                self.unify(&l_ty, &Type::list(elem.clone()), l.span)?;
                self.mark_simple(&elem, l.span)?;
                Ok(match op {
                    ListOp::Head => self.zonk(&elem),
                    ListOp::Tail => Type::list(self.zonk(&elem)),
                    ListOp::IsEmpty | ListOp::Length => Type::Int,
                })
            }
            ExprKind::Record(fields) => {
                let mut tys = std::collections::BTreeMap::new();
                for (name, value) in fields {
                    let t = self.infer(value)?;
                    self.mark_simple(&t, value.span)?;
                    if tys.insert(name.clone(), self.zonk(&t)).is_some() {
                        return Err(TypeError {
                            message: format!("duplicate record field `{name}`"),
                            span,
                        });
                    }
                }
                Ok(Type::Record(tys))
            }
            ExprKind::Field(rec, field) => {
                // Without row polymorphism the record type must be known
                // here (from a literal, an input, or an annotation) —
                // documented delta from full Elm's extensible records.
                let rec_ty = self.infer(rec)?;
                match self.zonk(&rec_ty) {
                    Type::Record(tys) => match tys.get(field) {
                        Some(t) => Ok(t.clone()),
                        None => Err(TypeError {
                            message: format!("record has no field `{field}`"),
                            span,
                        }),
                    },
                    Type::Var(w) => {
                        // Defer: the record type may be pinned down later
                        // (e.g. a lambda parameter unified with an input
                        // signal's record payload at the lift site).
                        let field_ty = self.fresh();
                        self.field_constraints
                            .push((w, field.clone(), field_ty.clone(), span));
                        Ok(field_ty)
                    }
                    other => Err(TypeError {
                        message: format!("field access on a non-record: {other}"),
                        span,
                    }),
                }
            }
            ExprKind::Ith(index, l) => {
                let i_ty = self.infer(index)?;
                self.unify(&i_ty, &Type::Int, index.span)?;
                let elem = self.fresh();
                let l_ty = self.infer(l)?;
                self.unify(&l_ty, &Type::list(elem.clone()), l.span)?;
                self.mark_simple(&elem, l.span)?;
                Ok(self.zonk(&elem))
            }
            ExprKind::Fst(p) => {
                let p_ty = self.infer(p)?;
                let a = self.fresh();
                let b = self.fresh();
                self.unify(&p_ty, &Type::pair(a.clone(), b), p.span)?;
                Ok(self.zonk(&a))
            }
            ExprKind::Snd(p) => {
                let p_ty = self.infer(p)?;
                let a = self.fresh();
                let b = self.fresh();
                self.unify(&p_ty, &Type::pair(a, b.clone()), p.span)?;
                Ok(self.zonk(&b))
            }
            ExprKind::Lift { func, args } => {
                let f_ty = self.infer(func)?;
                let mut arg_payloads = Vec::with_capacity(args.len());
                let result = self.fresh();
                let mut expect = result.clone();
                for _ in args.iter().rev() {
                    let payload = self.fresh();
                    expect = Type::fun(payload.clone(), expect);
                    arg_payloads.push(payload);
                }
                arg_payloads.reverse();
                self.unify(&f_ty, &expect, func.span)?;
                for (a, payload) in args.iter().zip(&arg_payloads) {
                    let a_ty = self.infer(a)?;
                    self.unify(&a_ty, &Type::signal(payload.clone()), a.span)?;
                    self.mark_simple(payload, a.span)?;
                }
                self.mark_simple(&result, span)?;
                Ok(Type::signal(self.zonk(&result)))
            }
            ExprKind::Foldp { func, init, signal } => {
                let tau = self.fresh();
                let acc = self.fresh();
                let f_ty = self.infer(func)?;
                self.unify(
                    &f_ty,
                    &Type::fun(tau.clone(), Type::fun(acc.clone(), acc.clone())),
                    func.span,
                )?;
                let init_ty = self.infer(init)?;
                self.unify(&init_ty, &acc, init.span)?;
                let sig_ty = self.infer(signal)?;
                self.unify(&sig_ty, &Type::signal(tau.clone()), signal.span)?;
                self.mark_simple(&tau, signal.span)?;
                self.mark_simple(&acc, init.span)?;
                Ok(Type::signal(self.zonk(&acc)))
            }
            ExprKind::Ctor(name) => {
                let info = self.adts.ctor(name).ok_or_else(|| TypeError {
                    message: format!("unknown constructor `{name}`"),
                    span,
                })?;
                let mut ty = Type::Named(info.adt.clone());
                for arg in info.args.iter().rev() {
                    ty = Type::fun(arg.clone(), ty);
                }
                Ok(ty)
            }
            ExprKind::CtorApp(name, args) => {
                let info = self.adts.ctor(name).cloned().ok_or_else(|| TypeError {
                    message: format!("unknown constructor `{name}`"),
                    span,
                })?;
                if args.len() != info.args.len() {
                    return Err(TypeError {
                        message: format!(
                            "constructor `{name}` takes {} argument(s), got {}",
                            info.args.len(),
                            args.len()
                        ),
                        span,
                    });
                }
                for (arg, want) in args.iter().zip(&info.args) {
                    let got = self.infer(arg)?;
                    self.unify(&got, want, arg.span)?;
                }
                Ok(Type::Named(info.adt))
            }
            ExprKind::Case {
                scrutinee,
                branches,
            } => {
                let scrut_ty = self.infer(scrutinee)?;
                let result = self.fresh();
                let mut covered: Vec<String> = Vec::new();
                let mut catch_all = false;
                let mut adt_name: Option<String> = None;
                for branch in branches {
                    match &branch.pattern {
                        Pattern::Ctor { name, binders } => {
                            let info = self.adts.ctor(name).cloned().ok_or_else(|| TypeError {
                                message: format!("unknown constructor `{name}`"),
                                span,
                            })?;
                            if binders.len() != info.args.len() {
                                return Err(TypeError {
                                    message: format!(
                                        "pattern `{name}` needs {} binder(s), got {}",
                                        info.args.len(),
                                        binders.len()
                                    ),
                                    span,
                                });
                            }
                            self.unify(&scrut_ty, &Type::Named(info.adt.clone()), scrutinee.span)?;
                            adt_name.get_or_insert(info.adt.clone());
                            covered.push(name.clone());
                            // Bind pattern variables monomorphically.
                            let mut bound = Vec::new();
                            for (b, t) in binders.iter().zip(&info.args) {
                                if b != "_" {
                                    self.vars
                                        .entry(b.clone())
                                        .or_default()
                                        .push(Scheme::mono(t.clone()));
                                    bound.push(b.clone());
                                }
                            }
                            let body_ty = self.infer(&branch.body);
                            for b in &bound {
                                if let Some(stack) = self.vars.get_mut(b) {
                                    stack.pop();
                                }
                            }
                            let body_ty = body_ty?;
                            self.unify(&body_ty, &result, branch.body.span)?;
                        }
                        Pattern::Var(x) => {
                            catch_all = true;
                            self.vars
                                .entry(x.clone())
                                .or_default()
                                .push(Scheme::mono(scrut_ty.clone()));
                            let body_ty = self.infer(&branch.body);
                            if let Some(stack) = self.vars.get_mut(x) {
                                stack.pop();
                            }
                            let body_ty = body_ty?;
                            self.unify(&body_ty, &result, branch.body.span)?;
                        }
                        Pattern::Wildcard => {
                            catch_all = true;
                            let body_ty = self.infer(&branch.body)?;
                            self.unify(&body_ty, &result, branch.body.span)?;
                        }
                    }
                }
                if !catch_all {
                    if let Some(adt) = adt_name {
                        let variants = self.adts.variants(&adt).unwrap_or(&[]);
                        let missing: Vec<&str> = variants
                            .iter()
                            .map(String::as_str)
                            .filter(|v| !covered.iter().any(|c| c == v))
                            .collect();
                        if !missing.is_empty() {
                            return Err(TypeError {
                                message: format!(
                                    "case is not exhaustive: missing {}",
                                    missing.join(", ")
                                ),
                                span,
                            });
                        }
                    }
                }
                Ok(self.zonk(&result))
            }
            ExprKind::SignalPrim { op, args } => {
                let payload = self.fresh();
                match op {
                    SignalPrimOp::Merge => {
                        for a in args {
                            let t = self.infer(a)?;
                            self.unify(&t, &Type::signal(payload.clone()), a.span)?;
                        }
                    }
                    SignalPrimOp::SampleOn => {
                        let ticker = self.fresh();
                        let t0 = self.infer(&args[0])?;
                        self.unify(&t0, &Type::signal(ticker.clone()), args[0].span)?;
                        self.mark_simple(&ticker, args[0].span)?;
                        let t1 = self.infer(&args[1])?;
                        self.unify(&t1, &Type::signal(payload.clone()), args[1].span)?;
                    }
                    SignalPrimOp::DropRepeats => {
                        let t = self.infer(&args[0])?;
                        self.unify(&t, &Type::signal(payload.clone()), args[0].span)?;
                    }
                    SignalPrimOp::KeepIf => {
                        let pred = self.infer(&args[0])?;
                        self.unify(&pred, &Type::fun(payload.clone(), Type::Int), args[0].span)?;
                        let base = self.infer(&args[1])?;
                        self.unify(&base, &payload, args[1].span)?;
                        let sig = self.infer(&args[2])?;
                        self.unify(&sig, &Type::signal(payload.clone()), args[2].span)?;
                    }
                }
                self.mark_simple(&payload, span)?;
                Ok(Type::signal(self.zonk(&payload)))
            }
            ExprKind::Async(inner) => {
                let t = self.infer(inner)?;
                let payload = self.fresh();
                self.unify(&t, &Type::signal(payload.clone()), inner.span)?;
                self.mark_simple(&payload, span)?;
                Ok(Type::signal(self.zonk(&payload)))
            }
        }
    }
}

fn check_class(t: &Type, class: Class, span: Span) -> Result<(), TypeError> {
    let ok = match class {
        Class::Num => matches!(t, Type::Int | Type::Float),
        Class::Cmp { allow_str } => {
            matches!(t, Type::Int | Type::Float) || (allow_str && matches!(t, Type::Str))
        }
    };
    if ok {
        Ok(())
    } else {
        Err(TypeError {
            message: format!("type {t} does not support this operator"),
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn ty(src: &str) -> Result<Type, TypeError> {
        infer_type(&InputEnv::standard(), &parse_expr(src).unwrap())
    }

    #[test]
    fn infers_unannotated_paper_examples() {
        assert_eq!(
            ty("lift2 (\\y z -> y / z) Mouse.x Window.width").unwrap(),
            Type::signal(Type::Int)
        );
        assert_eq!(
            ty("foldp (\\k c -> c + 1) 0 Keyboard.lastPressed").unwrap(),
            Type::signal(Type::Int)
        );
        assert_eq!(
            ty("async (lift (\\x -> x * 2) Mouse.y)").unwrap(),
            Type::signal(Type::Int)
        );
    }

    #[test]
    fn numeric_defaulting_and_floats() {
        assert_eq!(ty("\\x -> x + x").unwrap(), Type::fun(Type::Int, Type::Int));
        assert_eq!(ty("1.5 * 2.0").unwrap(), Type::Float);
        assert!(ty("\"a\" + \"b\"").is_err());
        assert_eq!(ty("\"a\" == \"b\"").unwrap(), Type::Int);
        assert!(ty("() == ()").is_err());
        assert!(ty("\"a\" < \"b\"").is_err());
    }

    #[test]
    fn let_polymorphism_generalizes() {
        // id used at Int and at String.
        assert_eq!(
            ty("let id = \\x -> x in (id 1, id \"s\")").unwrap(),
            Type::pair(Type::Int, Type::Str)
        );
        // compose used polymorphically.
        assert_eq!(
            ty("let twice = \\f -> \\x -> f (f x) in twice (\\n -> n + 1) 0").unwrap(),
            Type::Int
        );
    }

    #[test]
    fn stratification_rejects_signals_of_signals() {
        assert!(ty("lift (\\x -> Mouse.x) Mouse.y").is_err());
        assert!(ty("lift (\\x -> x) (lift (\\y -> Mouse.x) Mouse.y)").is_err());
        assert!(ty("(Mouse.x, 1)").is_err());
        assert!(ty("foldp (\\x c -> c) Mouse.x Mouse.y").is_err());
        // async of a non-signal
        assert!(ty("async 3").is_err());
    }

    #[test]
    fn occurs_check_fires() {
        assert!(ty("\\x -> x x").is_err());
    }

    #[test]
    fn conditional_branches_unify() {
        assert_eq!(
            ty("\\b -> if b then 1 else 2").unwrap(),
            Type::fun(Type::Int, Type::Int)
        );
        assert!(ty("if 1 then 2 else \"s\"").is_err());
    }

    #[test]
    fn agrees_with_checker_on_annotated_terms() {
        use crate::check::type_of;
        let env = InputEnv::standard();
        for src in [
            "(\\(x : Int) -> x + 1) 41",
            "lift (\\(x : Int) -> x * 2) Window.width",
            "foldp (\\(k : Int) -> \\(c : Int) -> c + 1) 0 Keyboard.lastPressed",
            "async (lift (\\(x : Int) -> x) Mouse.x)",
            "(1, \"x\")",
            "if 1 < 2 then 3 else 4",
        ] {
            let e = parse_expr(src).unwrap();
            assert_eq!(
                type_of(&env, &e).unwrap(),
                infer_type(&env, &e).unwrap(),
                "checker/inference disagree on {src}"
            );
        }
    }

    #[test]
    fn whole_programs_infer() {
        let src = "\
count s = foldp (\\x c -> c + 1) 0 s
index1 = count Mouse.clicks
main = lift (\\i -> i * 10) index1";
        let prog = parse_program(src).unwrap();
        let e = prog.to_expr().unwrap();
        assert_eq!(
            infer_type(&InputEnv::standard(), &e).unwrap(),
            Type::signal(Type::Int)
        );
    }

    #[test]
    fn polymorphic_count_works_on_different_signals() {
        // `count` generalizes over the payload type of its signal argument.
        let src = "\
count s = foldp (\\x c -> c + 1) 0 s
main = lift2 (\\a b -> a + b) (count Mouse.clicks) (count Words.input)";
        let prog = parse_program(src).unwrap();
        let e = prog.to_expr().unwrap();
        assert_eq!(
            infer_type(&InputEnv::standard(), &e).unwrap(),
            Type::signal(Type::Int)
        );
    }
}
