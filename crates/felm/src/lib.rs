//! FElm — "Featherweight Elm", the core calculus of *Asynchronous
//! Functional Reactive Programming for GUIs* (Czaplicki & Chong, PLDI 2013).
//!
//! This crate implements the paper's Section 3 in full:
//!
//! * **Syntax** (Fig. 3): [`ast`] with a surface parser ([`parser`]) and
//!   lexer ([`token`]) covering the paper's example programs;
//! * **Type system** (Fig. 4): the declarative checker [`check`] for
//!   annotated terms, and Hindley–Milner-style inference with signal
//!   stratification and let-polymorphism in [`infer`] — both rule out
//!   signals-of-signals (§3.2);
//! * **Stage-one semantics** (Fig. 6): faithful small-step functional
//!   evaluation in [`eval`], including the EXPAND rule that floats
//!   signal-`let`s and the REDUCE restriction that shares (never
//!   duplicates) signal expressions;
//! * **Intermediate language** (Fig. 5): [`intermediate`] validates and
//!   represents final signal terms;
//! * **Stage-two semantics** (Figs. 9–11): [`translate`] turns signal
//!   terms into `elm-runtime` signal graphs — the Rust analogue of the
//!   paper's translation to Concurrent ML.
//!
//! # End to end
//!
//! ```
//! use felm::pipeline::compile_source;
//!
//! let program = compile_source(
//!     "main = foldp (\\k c -> c + 1) 0 Keyboard.lastPressed",
//!     &felm::env::InputEnv::standard(),
//! ).unwrap();
//! assert_eq!(program.program_type.to_string(), "Signal Int");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod budget;
pub mod check;
pub mod env;
pub mod eval;
pub mod eval_big;
pub mod infer;
pub mod intermediate;
pub mod parser;
pub mod pipeline;
pub mod pretty;
pub mod span;
pub mod token;
pub mod translate;
