//! Lexical analysis for FElm source text.
//!
//! The surface syntax extends the paper's core calculus (Fig. 3) with the
//! conveniences its examples use: `let … in`, `if … then … else`,
//! multi-argument lambdas, string/float literals, pairs, comparison and
//! logical operators, line (`--`) and block (`{- -}`) comments, and
//! qualified input-signal names such as `Mouse.position`.

use std::fmt;

use crate::span::Span;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents, unescaped).
    Str(String),
    /// Lowercase identifier (variables).
    Ident(String),
    /// Qualified name beginning with an uppercase module segment,
    /// e.g. `Mouse.position` — an input-signal identifier `i ∈ Input`.
    QualIdent(String),
    /// `liftn` for some arity `n ≥ 1` (`lift` alone means `lift1`).
    Lift(usize),
    /// `foldp`.
    Foldp,
    /// `async`.
    Async,
    /// `let`.
    Let,
    /// `in`.
    In,
    /// `if`.
    If,
    /// `then`.
    Then,
    /// `else`.
    Else,
    /// `fst`.
    Fst,
    /// `snd`.
    Snd,
    /// `head`.
    Head,
    /// `tail`.
    Tail,
    /// `isEmpty`.
    IsEmpty,
    /// `length`.
    Length,
    /// `ith`.
    Ith,
    /// `merge`.
    Merge,
    /// `sampleOn`.
    SampleOn,
    /// `dropRepeats`.
    DropRepeats,
    /// `keepIf`.
    KeepIf,
    /// `data`.
    Data,
    /// `case`.
    Case,
    /// `of`.
    Of,
    /// `|` (variant separator).
    Pipe,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `.` (record field access).
    Dot,
    /// `\` introducing a lambda.
    Backslash,
    /// `->`.
    Arrow,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `=`.
    Equals,
    /// `:`.
    Colon,
    /// A binary operator symbol (`+`, `-`, `*`, `/`, `%`, `==`, `/=`, `<`,
    /// `>`, `<=`, `>=`, `&&`, `||`, `++`).
    Op(&'static str),
    /// Statement separator: a newline at column zero between top-level
    /// definitions (the lexer emits these only at indentation level 0).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(n) => write!(f, "{n}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) | Token::QualIdent(s) => write!(f, "{s}"),
            Token::Lift(n) => write!(f, "lift{n}"),
            Token::Foldp => write!(f, "foldp"),
            Token::Async => write!(f, "async"),
            Token::Let => write!(f, "let"),
            Token::In => write!(f, "in"),
            Token::If => write!(f, "if"),
            Token::Then => write!(f, "then"),
            Token::Else => write!(f, "else"),
            Token::Fst => write!(f, "fst"),
            Token::Snd => write!(f, "snd"),
            Token::Head => write!(f, "head"),
            Token::Tail => write!(f, "tail"),
            Token::IsEmpty => write!(f, "isEmpty"),
            Token::Length => write!(f, "length"),
            Token::Ith => write!(f, "ith"),
            Token::Merge => write!(f, "merge"),
            Token::SampleOn => write!(f, "sampleOn"),
            Token::DropRepeats => write!(f, "dropRepeats"),
            Token::KeepIf => write!(f, "keepIf"),
            Token::Data => write!(f, "data"),
            Token::Case => write!(f, "case"),
            Token::Of => write!(f, "of"),
            Token::Pipe => write!(f, "|"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Dot => write!(f, "."),
            Token::Backslash => write!(f, "\\"),
            Token::Arrow => write!(f, "->"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Equals => write!(f, "="),
            Token::Colon => write!(f, ":"),
            Token::Op(s) => write!(f, "{s}"),
            Token::Newline => write!(f, "<newline>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}

/// Errors produced by the lexer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LexError {
    /// A character that cannot begin any token.
    UnexpectedChar(char, Span),
    /// A string literal without a closing quote.
    UnterminatedString(Span),
    /// A block comment without a closing `-}`.
    UnterminatedComment(Span),
    /// A numeric literal that does not parse.
    BadNumber(String, Span),
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar(c, s) => write!(f, "unexpected character {c:?} at {s}"),
            LexError::UnterminatedString(s) => write!(f, "unterminated string starting at {s}"),
            LexError::UnterminatedComment(s) => {
                write!(f, "unterminated block comment starting at {s}")
            }
            LexError::BadNumber(n, s) => write!(f, "malformed number {n:?} at {s}"),
        }
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

/// Tokenizes FElm source text.
///
/// # Errors
///
/// Returns a [`LexError`] describing the first lexical problem.
///
/// ```
/// use felm::token::{lex, Token};
/// let toks = lex("lift2 (\\x y -> x + y) Mouse.x Window.width").unwrap();
/// assert_eq!(toks[0].token, Token::Lift(2));
/// ```
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    loop {
        let tok = lx.next_token()?;
        let done = tok.token == Token::Eof;
        out.push(tok);
        if done {
            return Ok(out);
        }
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.pos)
    }

    /// Skips whitespace and comments. Returns `true` if a newline followed
    /// by a column-0 non-space character was crossed (a top-level
    /// definition boundary).
    fn skip_trivia(&mut self) -> Result<bool, LexError> {
        let mut boundary = false;
        loop {
            match self.peek() {
                Some(b'\n') => {
                    self.pos += 1;
                    // Column-0 content => definition boundary.
                    if matches!(self.peek(), Some(c) if c != b' ' && c != b'\n' && c != b'\t' && c != b'\r')
                    {
                        boundary = true;
                    }
                }
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'{') if self.peek2() == Some(b'-') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'{'), Some(b'-')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b'-'), Some(b'}')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(LexError::UnterminatedComment(self.span_from(start)))
                            }
                        }
                    }
                }
                _ => return Ok(boundary),
            }
        }
    }

    fn next_token(&mut self) -> Result<SpannedToken, LexError> {
        let boundary = self.skip_trivia()?;
        let start = self.pos;
        if boundary {
            return Ok(SpannedToken {
                token: Token::Newline,
                span: Span::new(start, start),
            });
        }
        let Some(c) = self.peek() else {
            return Ok(SpannedToken {
                token: Token::Eof,
                span: self.span_from(start),
            });
        };

        let token = match c {
            b'0'..=b'9' => return self.number(start),
            b'a'..=b'z' | b'_' => return Ok(self.ident(start)),
            b'A'..=b'Z' => return self.qualified(start),
            b'"' => return self.string(start),
            b'\\' => {
                self.pos += 1;
                Token::Backslash
            }
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b':' => {
                self.pos += 1;
                if self.peek() == Some(b':') {
                    self.pos += 1;
                    Token::Op("::")
                } else {
                    Token::Colon
                }
            }
            b'[' => {
                self.pos += 1;
                Token::LBracket
            }
            b']' => {
                self.pos += 1;
                Token::RBracket
            }
            b'{' => {
                // `{-` (block comments) is consumed by skip_trivia, so a
                // surviving `{` opens a record.
                self.pos += 1;
                Token::LBrace
            }
            b'}' => {
                self.pos += 1;
                Token::RBrace
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b'-' => {
                self.pos += 1;
                if self.peek() == Some(b'>') {
                    self.pos += 1;
                    Token::Arrow
                } else {
                    Token::Op("-")
                }
            }
            b'+' => {
                self.pos += 1;
                if self.peek() == Some(b'+') {
                    self.pos += 1;
                    Token::Op("++")
                } else {
                    Token::Op("+")
                }
            }
            b'*' => {
                self.pos += 1;
                Token::Op("*")
            }
            b'/' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Op("/=")
                } else {
                    Token::Op("/")
                }
            }
            b'%' => {
                self.pos += 1;
                Token::Op("%")
            }
            b'=' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Op("==")
                } else {
                    Token::Equals
                }
            }
            b'<' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Op("<=")
                } else {
                    Token::Op("<")
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Token::Op(">=")
                } else {
                    Token::Op(">")
                }
            }
            b'&' => {
                self.pos += 1;
                if self.peek() == Some(b'&') {
                    self.pos += 1;
                    Token::Op("&&")
                } else {
                    return Err(LexError::UnexpectedChar('&', self.span_from(start)));
                }
            }
            b'|' => {
                self.pos += 1;
                if self.peek() == Some(b'|') {
                    self.pos += 1;
                    Token::Op("||")
                } else {
                    Token::Pipe
                }
            }
            other => {
                return Err(LexError::UnexpectedChar(
                    other as char,
                    Span::new(start, start + 1),
                ))
            }
        };
        Ok(SpannedToken {
            token,
            span: self.span_from(start),
        })
    }

    fn number(&mut self, start: usize) -> Result<SpannedToken, LexError> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let span = self.span_from(start);
        let token = if is_float {
            Token::Float(
                text.parse()
                    .map_err(|_| LexError::BadNumber(text.into(), span))?,
            )
        } else {
            Token::Int(
                text.parse()
                    .map_err(|_| LexError::BadNumber(text.into(), span))?,
            )
        };
        Ok(SpannedToken { token, span })
    }

    fn ident(&mut self, start: usize) -> SpannedToken {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'\'')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let token = match text {
            "let" => Token::Let,
            "in" => Token::In,
            "if" => Token::If,
            "then" => Token::Then,
            "else" => Token::Else,
            "foldp" => Token::Foldp,
            "async" => Token::Async,
            "fst" => Token::Fst,
            "snd" => Token::Snd,
            "head" => Token::Head,
            "tail" => Token::Tail,
            "isEmpty" => Token::IsEmpty,
            "length" => Token::Length,
            "ith" => Token::Ith,
            "merge" => Token::Merge,
            "sampleOn" => Token::SampleOn,
            "dropRepeats" => Token::DropRepeats,
            "keepIf" => Token::KeepIf,
            "data" => Token::Data,
            "case" => Token::Case,
            "of" => Token::Of,
            "lift" => Token::Lift(1),
            _ => {
                if let Some(digits) = text.strip_prefix("lift") {
                    if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                        let n: usize = digits.parse().unwrap_or(0);
                        if n >= 1 {
                            return SpannedToken {
                                token: Token::Lift(n),
                                span: self.span_from(start),
                            };
                        }
                    }
                }
                Token::Ident(text.to_string())
            }
        };
        SpannedToken {
            token,
            span: self.span_from(start),
        }
    }

    fn qualified(&mut self, start: usize) -> Result<SpannedToken, LexError> {
        // Module segment(s) then a final identifier: `Mouse.position`,
        // `Window.width`, `Time.every30`. A bare capitalized name (e.g. a
        // type name `Int`) is also lexed as QualIdent; the parser decides.
        loop {
            while matches!(
                self.peek(),
                Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'\'')
            ) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'a'..=b'z' | b'A'..=b'Z'))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii qualified");
        Ok(SpannedToken {
            token: Token::QualIdent(text.to_string()),
            span: self.span_from(start),
        })
    }

    fn string(&mut self, start: usize) -> Result<SpannedToken, LexError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    _ => return Err(LexError::UnterminatedString(self.span_from(start))),
                },
                Some(c) => out.push(c as char),
                None => return Err(LexError::UnterminatedString(self.span_from(start))),
            }
        }
        Ok(SpannedToken {
            token: Token::Str(out),
            span: self.span_from(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_core_example() {
        assert_eq!(
            toks("lift2 (\\y z -> y / z) Mouse.x Window.width"),
            vec![
                Token::Lift(2),
                Token::LParen,
                Token::Backslash,
                Token::Ident("y".into()),
                Token::Ident("z".into()),
                Token::Arrow,
                Token::Ident("y".into()),
                Token::Op("/"),
                Token::Ident("z".into()),
                Token::RParen,
                Token::QualIdent("Mouse.x".into()),
                Token::QualIdent("Window.width".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_lift_arities() {
        assert_eq!(
            toks("let in if then else foldp async lift lift1 lift3 lift12 lifter"),
            vec![
                Token::Let,
                Token::In,
                Token::If,
                Token::Then,
                Token::Else,
                Token::Foldp,
                Token::Async,
                Token::Lift(1),
                Token::Lift(1),
                Token::Lift(3),
                Token::Lift(12),
                Token::Ident("lifter".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_with_longest_match() {
        assert_eq!(
            toks("a <= b >= c == d /= e ++ f -> g && h || i"),
            vec![
                Token::Ident("a".into()),
                Token::Op("<="),
                Token::Ident("b".into()),
                Token::Op(">="),
                Token::Ident("c".into()),
                Token::Op("=="),
                Token::Ident("d".into()),
                Token::Op("/="),
                Token::Ident("e".into()),
                Token::Op("++"),
                Token::Ident("f".into()),
                Token::Arrow,
                Token::Ident("g".into()),
                Token::Op("&&"),
                Token::Ident("h".into()),
                Token::Op("||"),
                Token::Ident("i".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_strings() {
        assert_eq!(
            toks("42 3.25 \"hi\\n\""),
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Str("hi\n".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        assert_eq!(
            toks("1 -- line comment\n  {- block {- nested -} done -} 2"),
            vec![Token::Int(1), Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn newline_token_marks_toplevel_boundaries_only() {
        // Continuation lines are indented; column-0 starts a new definition.
        let t = toks("main = 1 +\n  2\nother = 3");
        assert_eq!(
            t,
            vec![
                Token::Ident("main".into()),
                Token::Equals,
                Token::Int(1),
                Token::Op("+"),
                Token::Int(2),
                Token::Newline,
                Token::Ident("other".into()),
                Token::Equals,
                Token::Int(3),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn errors_are_reported_with_spans() {
        assert!(matches!(
            lex("a # b"),
            Err(LexError::UnexpectedChar('#', _))
        ));
        assert!(matches!(
            lex("\"open"),
            Err(LexError::UnterminatedString(_))
        ));
        assert!(matches!(
            lex("{- open"),
            Err(LexError::UnterminatedComment(_))
        ));
        assert!(matches!(
            lex("a & b"),
            Err(LexError::UnexpectedChar('&', _))
        ));
    }

    #[test]
    fn minus_vs_arrow_disambiguation() {
        assert_eq!(
            toks("a - b -> c"),
            vec![
                Token::Ident("a".into()),
                Token::Op("-"),
                Token::Ident("b".into()),
                Token::Arrow,
                Token::Ident("c".into()),
                Token::Eof,
            ]
        );
    }
}
