//! The declarative type checker: paper Fig. 4, rule for rule.
//!
//! This checker synthesizes the type of an *annotated* term (every lambda
//! parameter carries its type, as in the paper's explicitly-typed calculus
//! `λx:τ. e`). Unannotated programs go through [`crate::infer`] instead;
//! the two agree on annotated terms (property-tested).
//!
//! The judgment is `Γ ⊢ e : t` where `Γ` maps variables and input names to
//! types. The stratified type grammar ([`crate::ast::Type::classify`])
//! plus rules T-LIFT / T-FOLD / T-ASYNC make signals-of-signals
//! unrepresentable (§3.2).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinOp, Expr, ExprKind, ListOp, Pattern, SignalPrimOp, Type};
use crate::env::Adts;
use crate::env::InputEnv;
use crate::span::Span;

/// A type error with source location.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem is.
    pub span: Span,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(span: Span, message: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError {
        message: message.into(),
        span,
    })
}

/// Synthesizes the type of `e` under `inputs` (the paper's `Γinput`) and an
/// initially empty variable context.
///
/// # Errors
///
/// Returns the first violation of the Fig. 4 rules.
///
/// ```
/// use felm::{check::type_of, env::InputEnv, parser::parse_expr, ast::Type};
/// let e = parse_expr("lift (\\(x : Int) -> x + x) Window.width").unwrap();
/// let t = type_of(&InputEnv::standard(), &e).unwrap();
/// assert_eq!(t, Type::signal(Type::Int));
/// ```
pub fn type_of(inputs: &InputEnv, e: &Expr) -> Result<Type, TypeError> {
    type_of_with(inputs, &Adts::new(), e)
}

/// Like [`type_of`], with the program's `data` declarations in scope.
///
/// # Errors
///
/// Returns the first violation of the typing rules.
pub fn type_of_with(inputs: &InputEnv, adts: &Adts, e: &Expr) -> Result<Type, TypeError> {
    let mut ctx = Context {
        inputs,
        adts,
        vars: HashMap::new(),
    };
    ctx.synth(e)
}

struct Context<'a> {
    inputs: &'a InputEnv,
    adts: &'a Adts,
    vars: HashMap<String, Vec<Type>>,
}

impl Context<'_> {
    fn push(&mut self, name: &str, ty: Type) {
        self.vars.entry(name.to_string()).or_default().push(ty);
    }

    fn pop(&mut self, name: &str) {
        if let Some(stack) = self.vars.get_mut(name) {
            stack.pop();
        }
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.vars.get(name).and_then(|s| s.last())
    }

    fn synth(&mut self, e: &Expr) -> Result<Type, TypeError> {
        let span = e.span;
        match &e.kind {
            // T-UNIT / T-NUMBER (+ literal extensions)
            ExprKind::Unit => Ok(Type::Unit),
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Float(_) => Ok(Type::Float),
            ExprKind::Str(_) => Ok(Type::Str),
            // T-VAR
            ExprKind::Var(x) => match self.lookup(x) {
                Some(t) => Ok(t.clone()),
                None => err(span, format!("unbound variable `{x}`")),
            },
            // T-INPUT
            ExprKind::Input(i) => match self.inputs.get(i) {
                Some(decl) => Ok(decl.ty.clone()),
                None => err(span, format!("unknown input signal `{i}`")),
            },
            // T-LAM (annotated)
            ExprKind::Lam { param, ann, body } => {
                let Some(param_ty) = ann else {
                    return err(
                        span,
                        format!(
                            "parameter `{param}` needs a type annotation for checking \
                             (or use type inference)"
                        ),
                    );
                };
                if !param_ty.is_well_formed() {
                    return err(span, format!("ill-formed parameter type {param_ty}"));
                }
                self.push(param, param_ty.clone());
                let body_ty = self.synth(body);
                self.pop(param);
                let result = Type::fun(param_ty.clone(), body_ty?);
                if !result.is_well_formed() {
                    return err(
                        span,
                        format!("function type {result} is outside the stratified grammar"),
                    );
                }
                Ok(result)
            }
            // T-APP
            ExprKind::App(f, a) => {
                let f_ty = self.synth(f)?;
                let a_ty = self.synth(a)?;
                match f_ty {
                    Type::Fun(param, result) => {
                        if *param == a_ty {
                            Ok(*result)
                        } else {
                            err(
                                a.span,
                                format!("argument has type {a_ty}, function expects {param}"),
                            )
                        }
                    }
                    other => err(f.span, format!("cannot apply a value of type {other}")),
                }
            }
            // T-OP (+ extensions)
            ExprKind::BinOp(op, a, b) => {
                let a_ty = self.synth(a)?;
                let b_ty = self.synth(b)?;
                self.binop_type(*op, &a_ty, &b_ty, span)
            }
            // T-COND — test is an int, branches agree
            ExprKind::If(c, t, f) => {
                let c_ty = self.synth(c)?;
                if c_ty != Type::Int {
                    return err(
                        c.span,
                        format!("if-condition must be Int (0 = false), got {c_ty}"),
                    );
                }
                let t_ty = self.synth(t)?;
                let f_ty = self.synth(f)?;
                if t_ty != f_ty {
                    return err(span, format!("if-branches disagree: {t_ty} versus {f_ty}"));
                }
                Ok(t_ty)
            }
            // T-LET (monomorphic, as in Fig. 4)
            ExprKind::Let { name, value, body } => {
                let v_ty = self.synth(value)?;
                self.push(name, v_ty);
                let out = self.synth(body);
                self.pop(name);
                out
            }
            ExprKind::Pair(a, b) => {
                let a_ty = self.synth(a)?;
                let b_ty = self.synth(b)?;
                if !a_ty.is_simple() || !b_ty.is_simple() {
                    return err(span, "pair components must have simple types");
                }
                Ok(Type::pair(a_ty, b_ty))
            }
            ExprKind::Fst(p) => match self.synth(p)? {
                Type::Pair(a, _) => Ok(*a),
                other => err(p.span, format!("fst expects a pair, got {other}")),
            },
            ExprKind::List(items) => {
                let mut elem_ty: Option<Type> = None;
                for item in items {
                    let t = self.synth(item)?;
                    if !t.is_simple() {
                        return err(item.span, "list elements must have simple types");
                    }
                    match &elem_ty {
                        None => elem_ty = Some(t),
                        Some(prev) if *prev == t => {}
                        Some(prev) => {
                            return err(
                                item.span,
                                format!("list elements disagree: {prev} versus {t}"),
                            )
                        }
                    }
                }
                match elem_ty {
                    Some(t) => Ok(Type::list(t)),
                    // The empty literal needs inference or an annotation to
                    // pick its element type; default to Int like the
                    // inference engine does.
                    None => Ok(Type::list(Type::Int)),
                }
            }
            ExprKind::ListOp(op, l) => match self.synth(l)? {
                Type::List(elem) => Ok(match op {
                    ListOp::Head => *elem,
                    ListOp::Tail => Type::List(elem),
                    ListOp::IsEmpty | ListOp::Length => Type::Int,
                }),
                other => err(
                    l.span,
                    format!("{} expects a list, got {other}", op.keyword()),
                ),
            },
            ExprKind::Record(fields) => {
                let mut tys = std::collections::BTreeMap::new();
                for (name, value) in fields {
                    let t = self.synth(value)?;
                    if !t.is_simple() {
                        return err(value.span, "record fields must have simple types");
                    }
                    if tys.insert(name.clone(), t).is_some() {
                        return err(span, format!("duplicate record field `{name}`"));
                    }
                }
                Ok(Type::Record(tys))
            }
            ExprKind::Field(rec, field) => match self.synth(rec)? {
                Type::Record(tys) => match tys.get(field) {
                    Some(t) => Ok(t.clone()),
                    None => err(span, format!("record has no field `{field}`")),
                },
                other => err(rec.span, format!("field access on a non-record: {other}")),
            },
            ExprKind::Ith(index, l) => {
                let i_ty = self.synth(index)?;
                if i_ty != Type::Int {
                    return err(index.span, format!("ith index must be Int, got {i_ty}"));
                }
                match self.synth(l)? {
                    Type::List(elem) => Ok(*elem),
                    other => err(l.span, format!("ith expects a list, got {other}")),
                }
            }
            ExprKind::Snd(p) => match self.synth(p)? {
                Type::Pair(_, b) => Ok(*b),
                other => err(p.span, format!("snd expects a pair, got {other}")),
            },
            // T-LIFT
            ExprKind::Lift { func, args } => {
                let mut f_ty = self.synth(func)?;
                let mut arg_tys = Vec::with_capacity(args.len());
                for (k, _a) in args.iter().enumerate() {
                    match f_ty {
                        Type::Fun(param, rest) => {
                            if !param.is_simple() {
                                return err(
                                    func.span,
                                    format!(
                                        "lift function parameter {} has non-simple type {param}",
                                        k + 1
                                    ),
                                );
                            }
                            arg_tys.push(*param);
                            f_ty = *rest;
                        }
                        other => {
                            return err(
                                func.span,
                                format!(
                                    "lift{} function must take {} arguments, type is {other} \
                                     after {k}",
                                    args.len(),
                                    args.len()
                                ),
                            )
                        }
                    }
                }
                if !f_ty.is_simple() {
                    return err(
                        func.span,
                        format!("lift function result must be simple, got {f_ty}"),
                    );
                }
                for (a, expect) in args.iter().zip(&arg_tys) {
                    let got = self.synth(a)?;
                    let want = Type::signal(expect.clone());
                    if got != want {
                        return err(a.span, format!("lift argument is {got}, expected {want}"));
                    }
                }
                Ok(Type::signal(f_ty))
            }
            // T-FOLD
            ExprKind::Foldp { func, init, signal } => {
                let f_ty = self.synth(func)?;
                let Type::Fun(tau, rest) = f_ty else {
                    return err(func.span, "foldp function must be τ -> τ' -> τ'");
                };
                let Type::Fun(acc_in, acc_out) = *rest else {
                    return err(func.span, "foldp function must take two arguments");
                };
                if acc_in != acc_out {
                    return err(
                        func.span,
                        format!("foldp accumulator types disagree: {acc_in} versus {acc_out}"),
                    );
                }
                if !tau.is_simple() || !acc_in.is_simple() {
                    return err(func.span, "foldp operates on simple types only");
                }
                let init_ty = self.synth(init)?;
                if init_ty != *acc_in {
                    return err(
                        init.span,
                        format!("foldp base is {init_ty}, accumulator is {acc_in}"),
                    );
                }
                let sig_ty = self.synth(signal)?;
                let want = Type::signal((*tau).clone());
                if sig_ty != want {
                    return err(
                        signal.span,
                        format!("foldp signal is {sig_ty}, expected {want}"),
                    );
                }
                Ok(Type::signal(*acc_in))
            }
            ExprKind::Ctor(name) => {
                // A bare constructor types as its curried function.
                let info = self.adts.ctor(name).ok_or_else(|| TypeError {
                    message: format!("unknown constructor `{name}`"),
                    span,
                })?;
                let mut ty = Type::Named(info.adt.clone());
                for arg in info.args.iter().rev() {
                    ty = Type::fun(arg.clone(), ty);
                }
                Ok(ty)
            }
            ExprKind::CtorApp(name, args) => {
                let info = self.adts.ctor(name).cloned().ok_or_else(|| TypeError {
                    message: format!("unknown constructor `{name}`"),
                    span,
                })?;
                if args.len() != info.args.len() {
                    return err(
                        span,
                        format!(
                            "constructor `{name}` takes {} argument(s), got {}",
                            info.args.len(),
                            args.len()
                        ),
                    );
                }
                for (arg, want) in args.iter().zip(&info.args) {
                    let got = self.synth(arg)?;
                    if got != *want {
                        return err(
                            arg.span,
                            format!("`{name}` argument has type {got}, expected {want}"),
                        );
                    }
                }
                Ok(Type::Named(info.adt))
            }
            ExprKind::Case {
                scrutinee,
                branches,
            } => {
                let scrut_ty = self.synth(scrutinee)?;
                let Type::Named(adt) = &scrut_ty else {
                    return err(
                        scrutinee.span,
                        format!("case scrutinee must be a data type, got {scrut_ty}"),
                    );
                };
                let variants: Vec<String> = self
                    .adts
                    .variants(adt)
                    .map(<[String]>::to_vec)
                    .unwrap_or_default();
                let mut covered: Vec<&str> = Vec::new();
                let mut catch_all = false;
                let mut result: Option<Type> = None;
                for branch in branches {
                    let body_ty = match &branch.pattern {
                        Pattern::Ctor { name, binders } => {
                            let info = self.adts.ctor(name).cloned().ok_or_else(|| TypeError {
                                message: format!("unknown constructor `{name}`"),
                                span,
                            })?;
                            if info.adt != *adt {
                                return err(
                                    span,
                                    format!(
                                        "pattern `{name}` belongs to `{}`, scrutinee is `{adt}`",
                                        info.adt
                                    ),
                                );
                            }
                            if binders.len() != info.args.len() {
                                return err(
                                    span,
                                    format!(
                                        "pattern `{name}` needs {} binder(s), got {}",
                                        info.args.len(),
                                        binders.len()
                                    ),
                                );
                            }
                            covered.push(name);
                            for (b, t) in binders.iter().zip(&info.args) {
                                self.push(b, t.clone());
                            }
                            let ty = self.synth(&branch.body);
                            for b in binders {
                                self.pop(b);
                            }
                            ty?
                        }
                        Pattern::Var(x) => {
                            catch_all = true;
                            self.push(x, scrut_ty.clone());
                            let ty = self.synth(&branch.body);
                            self.pop(x);
                            ty?
                        }
                        Pattern::Wildcard => {
                            catch_all = true;
                            self.synth(&branch.body)?
                        }
                    };
                    match &result {
                        None => result = Some(body_ty),
                        Some(prev) if *prev == body_ty => {}
                        Some(prev) => {
                            return err(
                                branch.body.span,
                                format!("case branches disagree: {prev} versus {body_ty}"),
                            )
                        }
                    }
                }
                if !catch_all {
                    let missing: Vec<&str> = variants
                        .iter()
                        .map(String::as_str)
                        .filter(|v| !covered.contains(v))
                        .collect();
                    if !missing.is_empty() {
                        return err(
                            span,
                            format!("case is not exhaustive: missing {}", missing.join(", ")),
                        );
                    }
                }
                Ok(result.expect("parser guarantees at least one branch"))
            }
            ExprKind::SignalPrim { op, args } => self.signal_prim(*op, args, span),
            // T-ASYNC
            ExprKind::Async(inner) => {
                let t = self.synth(inner)?;
                match &t {
                    Type::Signal(_) => Ok(t),
                    other => err(span, format!("async expects a signal, got {other}")),
                }
            }
        }
    }

    fn signal_prim(
        &mut self,
        op: SignalPrimOp,
        args: &[Expr],
        span: Span,
    ) -> Result<Type, TypeError> {
        let sig_payload = |this: &mut Self, e: &Expr| -> Result<Type, TypeError> {
            match this.synth(e)? {
                Type::Signal(t) => Ok(*t),
                other => err(
                    e.span,
                    format!("{} expects a signal, got {other}", op.keyword()),
                ),
            }
        };
        match op {
            SignalPrimOp::Merge => {
                let a = sig_payload(self, &args[0])?;
                let b = sig_payload(self, &args[1])?;
                if a != b {
                    return err(span, format!("merge payloads disagree: {a} versus {b}"));
                }
                Ok(Type::signal(a))
            }
            SignalPrimOp::SampleOn => {
                let _ = sig_payload(self, &args[0])?;
                let b = sig_payload(self, &args[1])?;
                Ok(Type::signal(b))
            }
            SignalPrimOp::DropRepeats => {
                let a = sig_payload(self, &args[0])?;
                Ok(Type::signal(a))
            }
            SignalPrimOp::KeepIf => {
                let pred_ty = self.synth(&args[0])?;
                let Type::Fun(from, to) = pred_ty else {
                    return err(args[0].span, "keepIf predicate must be a function");
                };
                if *to != Type::Int {
                    return err(args[0].span, "keepIf predicate must return Int (0 = false)");
                }
                let base_ty = self.synth(&args[1])?;
                if base_ty != *from {
                    return err(
                        args[1].span,
                        format!("keepIf base is {base_ty}, predicate takes {from}"),
                    );
                }
                let payload = sig_payload(self, &args[2])?;
                if payload != *from {
                    return err(
                        args[2].span,
                        format!("keepIf signal carries {payload}, predicate takes {from}"),
                    );
                }
                Ok(Type::signal(payload))
            }
        }
    }

    fn binop_type(&self, op: BinOp, a: &Type, b: &Type, span: Span) -> Result<Type, TypeError> {
        use BinOp::*;
        let both = |t: &Type| a == t && b == t;
        match op {
            Cons => {
                if !a.is_simple() {
                    return err(span, format!(":: head must be simple, got {a}"));
                }
                if *b == Type::list(a.clone()) {
                    Ok(b.clone())
                } else {
                    err(span, format!(":: expects {a} :: [{a}], got tail {b}"))
                }
            }
            Append => {
                if both(&Type::Str) {
                    Ok(Type::Str)
                } else {
                    err(span, format!("++ expects strings, got {a} and {b}"))
                }
            }
            Add | Sub | Mul | Div | Mod => {
                if both(&Type::Int) {
                    Ok(Type::Int)
                } else if both(&Type::Float) && !matches!(op, Mod) {
                    Ok(Type::Float)
                } else {
                    err(
                        span,
                        format!("{op} expects two Ints (or Floats), got {a} and {b}"),
                    )
                }
            }
            And | Or => {
                if both(&Type::Int) {
                    Ok(Type::Int)
                } else {
                    err(
                        span,
                        format!("{op} expects Ints (0 = false), got {a} and {b}"),
                    )
                }
            }
            Eq | Ne => {
                if a == b && (both(&Type::Int) || both(&Type::Float) || both(&Type::Str)) {
                    Ok(Type::Int)
                } else {
                    err(
                        span,
                        format!("{op} compares equal primitive types, got {a} and {b}"),
                    )
                }
            }
            Lt | Le | Gt | Ge => {
                if a == b && (both(&Type::Int) || both(&Type::Float)) {
                    Ok(Type::Int)
                } else {
                    err(
                        span,
                        format!("{op} compares Ints or Floats, got {a} and {b}"),
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn ty(src: &str) -> Result<Type, TypeError> {
        type_of(&InputEnv::standard(), &parse_expr(src).unwrap())
    }

    #[test]
    fn literals_and_operators() {
        assert_eq!(ty("1 + 2").unwrap(), Type::Int);
        assert_eq!(ty("1.5 + 2.5").unwrap(), Type::Float);
        assert_eq!(ty("\"a\" ++ \"b\"").unwrap(), Type::Str);
        assert_eq!(ty("1 < 2").unwrap(), Type::Int);
        assert_eq!(ty("()").unwrap(), Type::Unit);
        assert!(ty("1 + 1.5").is_err());
        assert!(ty("1.0 % 2.0").is_err());
        assert!(ty("() == ()").is_err());
    }

    #[test]
    fn lambda_application_and_let() {
        assert_eq!(ty("(\\(x : Int) -> x + 1) 41").unwrap(), Type::Int);
        assert_eq!(
            ty("\\(f : Int -> Int) -> f 0").unwrap(),
            Type::fun(Type::fun(Type::Int, Type::Int), Type::Int)
        );
        assert_eq!(ty("let x = 1 in x + x").unwrap(), Type::Int);
        assert!(ty("(\\(x : Int) -> x) ()").is_err());
        assert!(
            ty("\\x -> x").is_err(),
            "unannotated lambda needs inference"
        );
    }

    #[test]
    fn conditionals_require_int_tests_and_equal_branches() {
        assert_eq!(ty("if 1 then 2 else 3").unwrap(), Type::Int);
        assert!(ty("if () then 2 else 3").is_err());
        assert!(ty("if 1 then 2 else ()").is_err());
        // A signal test is ruled out (T-COND requires int).
        assert!(ty("if Mouse.x then 2 else 3").is_err());
    }

    #[test]
    fn lift_types_follow_t_lift() {
        assert_eq!(
            ty("lift (\\(x : Int) -> x * 2) Window.width").unwrap(),
            Type::signal(Type::Int)
        );
        assert_eq!(
            ty("lift2 (\\(y : Int) -> \\(z : Int) -> y / z) Mouse.x Window.width").unwrap(),
            Type::signal(Type::Int)
        );
        // Wrong argument signal type.
        assert!(ty("lift (\\(x : Int) -> x) Words.input").is_err());
        // Function of too few arguments.
        assert!(ty("lift2 (\\(x : Int) -> x) Mouse.x Mouse.y").is_err());
        // Non-signal argument.
        assert!(ty("lift (\\(x : Int) -> x) 3").is_err());
    }

    #[test]
    fn foldp_types_follow_t_fold() {
        assert_eq!(
            ty("foldp (\\(k : Int) -> \\(c : Int) -> c + 1) 0 Keyboard.lastPressed").unwrap(),
            Type::signal(Type::Int)
        );
        // Base type must match the accumulator.
        assert!(ty("foldp (\\(k : Int) -> \\(c : Int) -> c) () Keyboard.lastPressed").is_err());
        // Accumulator in/out must agree.
        assert!(ty("foldp (\\(k : Int) -> \\(c : Int) -> \"s\") 0 Keyboard.lastPressed").is_err());
    }

    #[test]
    fn async_preserves_signal_types() {
        assert_eq!(
            ty("async (lift (\\(x : Int) -> x) Mouse.x)").unwrap(),
            Type::signal(Type::Int)
        );
        assert!(ty("async 3").is_err());
    }

    #[test]
    fn signals_of_signals_are_unrepresentable() {
        // lift a function that returns a signal — parameter fine, result not simple.
        assert!(
            ty("lift (\\(x : Int) -> Mouse.x) Mouse.y").is_err(),
            "lift result must be simple"
        );
        // A lambda taking a signal and returning a simple value: σ → τ invalid.
        assert!(ty("\\(s : Signal Int) -> 3").is_err());
        // But σ → σ' is fine.
        assert_eq!(
            ty("\\(s : Signal Int) -> async s").unwrap(),
            Type::fun(Type::signal(Type::Int), Type::signal(Type::Int))
        );
    }

    #[test]
    fn pairs_are_simple_only() {
        assert_eq!(ty("(1, \"x\")").unwrap(), Type::pair(Type::Int, Type::Str));
        assert_eq!(ty("fst (1, 2)").unwrap(), Type::Int);
        assert!(ty("(Mouse.x, 1)").is_err());
        assert!(ty("fst 3").is_err());
    }

    #[test]
    fn unknown_inputs_and_vars_error() {
        assert!(ty("Bogus.signal").is_err());
        assert!(ty("nope").is_err());
    }

    #[test]
    fn paper_fig7_program_types() {
        let t = ty("lift2 (\\(y : Int) -> \\(z : Int) -> y / z) Mouse.x Window.width").unwrap();
        assert_eq!(t, Type::signal(Type::Int));
    }
}
