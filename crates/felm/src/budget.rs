//! Resource budgets for metered evaluation.
//!
//! FElm's stage-one calculus is strongly normalizing, but the functions
//! embedded in signal-graph nodes run *per event* on arbitrary client
//! programs, and nothing in the type system bounds how much work or
//! memory one application performs (a `twice`-tower makes 2^k β-steps
//! from k characters of source; a string-doubling chain allocates 2^k
//! bytes). A [`Budget`] puts dynamic bounds on one evaluation:
//!
//! * `fuel` — maximum reduction steps / interpreter node visits,
//! * `max_alloc_cells` — maximum cells allocated cumulatively (scalars
//!   count 1, strings/lists/records their length),
//! * `max_depth` — maximum evaluation/application nesting depth.
//!
//! A [`Meter`] threads a budget through an evaluator and reports the
//! first exhausted dimension as a typed [`Trap`] instead of diverging or
//! aborting the process. Traps for fuel, memory, and depth are a pure
//! function of the term and the budget — bit-for-bit deterministic across
//! runs — while [`Trap::DeadlineExceeded`] depends on the wall clock and
//! is only raised when a deadline is attached.

use std::fmt;
use std::time::Instant;

/// How many fuel ticks elapse between wall-clock deadline checks.
/// Amortizes `Instant::now()` so metered evaluation stays cheap.
const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// Resource limits for one evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum reduction steps (small-step) or interpreter node visits
    /// (big-step).
    pub fuel: u64,
    /// Maximum cells allocated over the whole evaluation: scalar
    /// constructions charge 1, strings/lists/records additionally charge
    /// their length.
    pub max_alloc_cells: u64,
    /// Maximum evaluation nesting depth (big-step recursion depth, or the
    /// syntactic depth of the evolving small-step term).
    pub max_depth: u64,
}

impl Budget {
    /// A budget that never traps.
    pub const UNLIMITED: Budget = Budget {
        fuel: u64::MAX,
        max_alloc_cells: u64::MAX,
        max_depth: u64::MAX,
    };

    /// A fuel-only budget with unlimited allocation and depth.
    pub fn with_fuel(fuel: u64) -> Budget {
        Budget {
            fuel,
            ..Budget::UNLIMITED
        }
    }
}

impl Default for Budget {
    /// The per-event default used by hosting runtimes: generous enough for
    /// every honest program in the repository, small enough to trap a
    /// runaway in milliseconds.
    fn default() -> Budget {
        Budget {
            fuel: 2_000_000,
            max_alloc_cells: 16 * 1024 * 1024,
            max_depth: 4096,
        }
    }
}

/// A typed resource-exhaustion verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trap {
    /// The step/visit budget ran out.
    OutOfFuel,
    /// Cumulative allocation exceeded `max_alloc_cells`.
    OutOfMemory,
    /// Evaluation nesting exceeded `max_depth`.
    DepthExceeded,
    /// The attached wall-clock deadline passed mid-evaluation.
    DeadlineExceeded,
}

impl Trap {
    /// Stable lower-case label, used as a metrics `kind` value.
    pub fn label(self) -> &'static str {
        match self {
            Trap::OutOfFuel => "out_of_fuel",
            Trap::OutOfMemory => "out_of_memory",
            Trap::DepthExceeded => "depth_exceeded",
            Trap::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfFuel => write!(f, "evaluation ran out of fuel"),
            Trap::OutOfMemory => write!(f, "evaluation exceeded its allocation budget"),
            Trap::DepthExceeded => write!(f, "evaluation exceeded its depth budget"),
            Trap::DeadlineExceeded => write!(f, "evaluation blew its deadline"),
        }
    }
}

/// Mutable accounting state threading a [`Budget`] through an evaluator.
#[derive(Debug)]
pub struct Meter {
    budget: Budget,
    fuel_used: u64,
    alloc_cells: u64,
    depth: u64,
    deadline: Option<Instant>,
    ticks_to_clock: u64,
}

impl Meter {
    /// A meter enforcing `budget`, with no deadline.
    pub fn new(budget: Budget) -> Meter {
        Meter {
            budget,
            fuel_used: 0,
            alloc_cells: 0,
            depth: 0,
            deadline: None,
            ticks_to_clock: DEADLINE_CHECK_INTERVAL,
        }
    }

    /// A meter that never traps — the zero-configuration path used by the
    /// plain `eval`/`normalize` entry points.
    pub fn unlimited() -> Meter {
        Meter::new(Budget::UNLIMITED)
    }

    /// Attaches (or clears) a wall-clock deadline, checked every
    /// [`DEADLINE_CHECK_INTERVAL`] fuel ticks.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Meter {
        self.deadline = deadline;
        self
    }

    /// The budget this meter enforces.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Fuel consumed so far.
    pub fn fuel_used(&self) -> u64 {
        self.fuel_used
    }

    /// Cells allocated so far.
    pub fn alloc_cells(&self) -> u64 {
        self.alloc_cells
    }

    /// Charges one reduction step / node visit.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfFuel`] when the budget is exhausted, or
    /// [`Trap::DeadlineExceeded`] on the periodic clock check.
    #[inline]
    pub fn tick(&mut self) -> Result<(), Trap> {
        self.fuel_used += 1;
        if self.fuel_used > self.budget.fuel {
            return Err(Trap::OutOfFuel);
        }
        if let Some(deadline) = self.deadline {
            self.ticks_to_clock -= 1;
            if self.ticks_to_clock == 0 {
                self.ticks_to_clock = DEADLINE_CHECK_INTERVAL;
                if Instant::now() >= deadline {
                    return Err(Trap::DeadlineExceeded);
                }
            }
        }
        Ok(())
    }

    /// Charges `cells` of allocation.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfMemory`] when the cumulative total passes the budget.
    #[inline]
    pub fn alloc(&mut self, cells: u64) -> Result<(), Trap> {
        self.alloc_cells = self.alloc_cells.saturating_add(cells);
        if self.alloc_cells > self.budget.max_alloc_cells {
            return Err(Trap::OutOfMemory);
        }
        Ok(())
    }

    /// Enters one nesting level (paired with [`Meter::leave`]).
    ///
    /// # Errors
    ///
    /// [`Trap::DepthExceeded`] when nesting passes the budget.
    #[inline]
    pub fn enter(&mut self) -> Result<(), Trap> {
        self.depth += 1;
        if self.depth > self.budget.max_depth {
            return Err(Trap::DepthExceeded);
        }
        Ok(())
    }

    /// Leaves one nesting level.
    #[inline]
    pub fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Checks an externally computed depth (the small-step evaluator
    /// measures the evolving term's syntactic depth instead of tracking
    /// recursion).
    ///
    /// # Errors
    ///
    /// [`Trap::DepthExceeded`] when `depth` passes the budget.
    #[inline]
    pub fn check_depth(&self, depth: u64) -> Result<(), Trap> {
        if depth > self.budget.max_depth {
            return Err(Trap::DepthExceeded);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_traps_exactly_at_the_budget() {
        let mut m = Meter::new(Budget::with_fuel(3));
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert!(m.tick().is_ok());
        assert_eq!(m.tick(), Err(Trap::OutOfFuel));
        assert_eq!(m.fuel_used(), 4);
    }

    #[test]
    fn alloc_is_cumulative() {
        let mut m = Meter::new(Budget {
            max_alloc_cells: 10,
            ..Budget::UNLIMITED
        });
        assert!(m.alloc(6).is_ok());
        assert!(m.alloc(4).is_ok());
        assert_eq!(m.alloc(1), Err(Trap::OutOfMemory));
    }

    #[test]
    fn depth_tracks_enter_leave() {
        let mut m = Meter::new(Budget {
            max_depth: 2,
            ..Budget::UNLIMITED
        });
        assert!(m.enter().is_ok());
        assert!(m.enter().is_ok());
        assert_eq!(m.enter(), Err(Trap::DepthExceeded));
        m.leave();
        m.leave();
        m.leave();
        assert!(m.enter().is_ok());
        assert!(m.check_depth(2).is_ok());
        assert_eq!(m.check_depth(3), Err(Trap::DepthExceeded));
    }

    #[test]
    fn deadline_in_the_past_traps_on_the_clock_check() {
        let mut m = Meter::unlimited().with_deadline(Some(Instant::now()));
        let mut trapped = false;
        for _ in 0..2 * DEADLINE_CHECK_INTERVAL {
            if m.tick() == Err(Trap::DeadlineExceeded) {
                trapped = true;
                break;
            }
        }
        assert!(trapped, "past deadline never detected");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Trap::OutOfFuel.label(), "out_of_fuel");
        assert_eq!(Trap::OutOfMemory.label(), "out_of_memory");
        assert_eq!(Trap::DepthExceeded.label(), "depth_exceeded");
        assert_eq!(Trap::DeadlineExceeded.label(), "deadline_exceeded");
        assert_eq!(format!("{}", Trap::OutOfFuel), "evaluation ran out of fuel");
    }
}
