//! Stage-one (functional) evaluation: paper §3.3.1, Figs. 5–6.
//!
//! FElm evaluates in two stages. This module is the first: a small-step,
//! left-to-right call-by-value reduction that evaluates *all and only* the
//! functional constructs, leaving signals uninterpreted. The result is a
//! *final term* of the intermediate language (Fig. 5): either a simple
//! value `v` or a signal term `s` that the second stage
//! ([`crate::translate`]) turns into a running signal graph.
//!
//! The rules implemented are exactly Fig. 6:
//!
//! * **OP, COND-TRUE/FALSE** — primitive δ-reductions;
//! * **APPLICATION** — `(λx. e1) e2 → let x = e2 in e1` (CBV via `let`);
//! * **REDUCE** — `let x = v in e → e[v/x]`, *only* when `x` is bound to a
//!   simple value. Signal bindings are never substituted, so signal
//!   expressions are not duplicated (the call-by-need-like sharing that
//!   later becomes multicast nodes);
//! * **EXPAND** — `F[let x = s in u] → let x = s in F[u]`, floating
//!   signal-`let`s out of positions that need a simple value;
//! * **CONTEXT** — the search for the redex, following the `E` grammar.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ast::{BinOp, Expr, ExprKind, ListOp, Pattern};
use crate::budget::{Meter, Trap};

/// Errors of stage-one evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// Evaluation reached a term with no applicable rule (cannot happen
    /// for well-typed programs — Theorem 1).
    Stuck {
        /// Why no rule applies.
        reason: String,
    },
    /// The fuel bound was exhausted (defensive; well-typed FElm is
    /// strongly normalizing since the calculus has no recursion).
    OutOfFuel,
    /// A metered evaluation exhausted its [`crate::budget::Budget`] —
    /// raised only by the `_metered` entry points.
    Trap(Trap),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck { reason } => write!(f, "evaluation stuck: {reason}"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
            EvalError::Trap(t) => write!(f, "resource trap: {t}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<Trap> for EvalError {
    fn from(t: Trap) -> EvalError {
        EvalError::Trap(t)
    }
}

/// True for simple values `v ::= () | n | λx. e` (plus the full-language
/// float/string literals and pairs of values).
pub fn is_value(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Unit
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Lam { .. } => true,
        ExprKind::Pair(a, b) => is_value(a) && is_value(b),
        ExprKind::List(items) => items.iter().all(is_value),
        ExprKind::Record(fields) => fields.iter().all(|(_, v)| is_value(v)),
        // A bare constructor is a (function-like) value; saturated
        // applications are values once their arguments are.
        ExprKind::Ctor(_) => true,
        ExprKind::CtorApp(_, args) => args.iter().all(is_value),
        _ => false,
    }
}

/// True for signal terms of the intermediate language (Fig. 5):
/// `s ::= x | let x = s in u | i | liftn v s1…sn | foldp v1 v2 s | async s`.
///
/// A bare variable counts as a signal term: after REDUCE has substituted
/// every value binding, remaining variables can only refer to
/// signal-bound `let`s.
pub fn is_signal_term(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Var(_) | ExprKind::Input(_) => true,
        ExprKind::Let { value, body, .. } => is_signal_term(value) && is_final(body),
        ExprKind::Lift { func, args } => is_value(func) && args.iter().all(is_signal_term),
        ExprKind::Foldp { func, init, signal } => {
            is_value(func) && is_value(init) && is_signal_term(signal)
        }
        ExprKind::Async(inner) => is_signal_term(inner),
        ExprKind::SignalPrim { op, args } => {
            let values = op.value_args();
            args[..values].iter().all(is_value) && args[values..].iter().all(is_signal_term)
        }
        _ => false,
    }
}

/// True for final terms `u ::= v | s`.
pub fn is_final(e: &Expr) -> bool {
    is_value(e) || is_signal_term(e)
}

static FRESH: AtomicU64 = AtomicU64::new(0);

/// Generates a variable name guaranteed fresh program-wide.
pub fn fresh_name(base: &str) -> String {
    let n = FRESH.fetch_add(1, Ordering::Relaxed);
    format!("{base}${n}")
}

/// Free variables of `e`, appended to `out`.
pub fn free_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Var(x) => {
            if !out.contains(x) {
                out.push(x.clone());
            }
        }
        ExprKind::Unit
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Input(_) => {}
        ExprKind::Lam { param, body, .. } => {
            let mut inner = Vec::new();
            free_vars(body, &mut inner);
            for v in inner {
                if &v != param && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        ExprKind::App(a, b) | ExprKind::BinOp(_, a, b) | ExprKind::Pair(a, b) => {
            free_vars(a, out);
            free_vars(b, out);
        }
        ExprKind::If(c, t, e2) => {
            free_vars(c, out);
            free_vars(t, out);
            free_vars(e2, out);
        }
        ExprKind::Let { name, value, body } => {
            free_vars(value, out);
            let mut inner = Vec::new();
            free_vars(body, &mut inner);
            for v in inner {
                if &v != name && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        ExprKind::Fst(a) | ExprKind::Snd(a) | ExprKind::Async(a) | ExprKind::ListOp(_, a) => {
            free_vars(a, out)
        }
        ExprKind::List(items) => {
            for item in items {
                free_vars(item, out);
            }
        }
        ExprKind::Ith(a, b) => {
            free_vars(a, out);
            free_vars(b, out);
        }
        ExprKind::Record(fields) => {
            for (_, v) in fields {
                free_vars(v, out);
            }
        }
        ExprKind::Field(r, _) => free_vars(r, out),
        ExprKind::SignalPrim { args, .. } => {
            for a in args {
                free_vars(a, out);
            }
        }
        ExprKind::Ctor(_) => {}
        ExprKind::CtorApp(_, args) => {
            for a in args {
                free_vars(a, out);
            }
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            free_vars(scrutinee, out);
            for b in branches {
                let mut inner = Vec::new();
                free_vars(&b.body, &mut inner);
                let bound: Vec<&String> = match &b.pattern {
                    Pattern::Ctor { binders, .. } => binders.iter().collect(),
                    Pattern::Var(x) => vec![x],
                    Pattern::Wildcard => Vec::new(),
                };
                for v in inner {
                    if !bound.iter().any(|bv| **bv == v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        ExprKind::Lift { func, args } => {
            free_vars(func, out);
            for a in args {
                free_vars(a, out);
            }
        }
        ExprKind::Foldp { func, init, signal } => {
            free_vars(func, out);
            free_vars(init, out);
            free_vars(signal, out);
        }
    }
}

fn occurs_free(x: &str, e: &Expr) -> bool {
    let mut fv = Vec::new();
    free_vars(e, &mut fv);
    fv.iter().any(|v| v == x)
}

/// Capture-avoiding substitution `e[v/x]`.
pub fn subst(e: &Expr, x: &str, v: &Expr) -> Expr {
    let kind = match &e.kind {
        ExprKind::Var(y) => {
            if y == x {
                return v.clone();
            }
            ExprKind::Var(y.clone())
        }
        ExprKind::Unit => ExprKind::Unit,
        ExprKind::Int(n) => ExprKind::Int(*n),
        ExprKind::Float(f) => ExprKind::Float(*f),
        ExprKind::Str(s) => ExprKind::Str(s.clone()),
        ExprKind::Input(i) => ExprKind::Input(i.clone()),
        ExprKind::Lam { param, ann, body } => {
            if param == x {
                ExprKind::Lam {
                    param: param.clone(),
                    ann: ann.clone(),
                    body: body.clone(),
                }
            } else if occurs_free(param, v) {
                // α-rename the binder to avoid capturing v's free vars.
                let fresh = fresh_name(param);
                let renamed = subst(body, param, &Expr::synth(ExprKind::Var(fresh.clone())));
                ExprKind::Lam {
                    param: fresh,
                    ann: ann.clone(),
                    body: Box::new(subst(&renamed, x, v)),
                }
            } else {
                ExprKind::Lam {
                    param: param.clone(),
                    ann: ann.clone(),
                    body: Box::new(subst(body, x, v)),
                }
            }
        }
        ExprKind::App(a, b) => ExprKind::App(Box::new(subst(a, x, v)), Box::new(subst(b, x, v))),
        ExprKind::BinOp(op, a, b) => {
            ExprKind::BinOp(*op, Box::new(subst(a, x, v)), Box::new(subst(b, x, v)))
        }
        ExprKind::If(c, t, e2) => ExprKind::If(
            Box::new(subst(c, x, v)),
            Box::new(subst(t, x, v)),
            Box::new(subst(e2, x, v)),
        ),
        ExprKind::Let { name, value, body } => {
            let new_value = subst(value, x, v);
            if name == x {
                ExprKind::Let {
                    name: name.clone(),
                    value: Box::new(new_value),
                    body: body.clone(),
                }
            } else if occurs_free(name, v) {
                let fresh = fresh_name(name);
                let renamed = subst(body, name, &Expr::synth(ExprKind::Var(fresh.clone())));
                ExprKind::Let {
                    name: fresh,
                    value: Box::new(new_value),
                    body: Box::new(subst(&renamed, x, v)),
                }
            } else {
                ExprKind::Let {
                    name: name.clone(),
                    value: Box::new(new_value),
                    body: Box::new(subst(body, x, v)),
                }
            }
        }
        ExprKind::Pair(a, b) => ExprKind::Pair(Box::new(subst(a, x, v)), Box::new(subst(b, x, v))),
        ExprKind::Fst(a) => ExprKind::Fst(Box::new(subst(a, x, v))),
        ExprKind::Snd(a) => ExprKind::Snd(Box::new(subst(a, x, v))),
        ExprKind::List(items) => ExprKind::List(items.iter().map(|i| subst(i, x, v)).collect()),
        ExprKind::ListOp(op, a) => ExprKind::ListOp(*op, Box::new(subst(a, x, v))),
        ExprKind::Ith(a, b) => ExprKind::Ith(Box::new(subst(a, x, v)), Box::new(subst(b, x, v))),
        ExprKind::Record(fields) => ExprKind::Record(
            fields
                .iter()
                .map(|(name, val)| (name.clone(), subst(val, x, v)))
                .collect(),
        ),
        ExprKind::Field(r, name) => ExprKind::Field(Box::new(subst(r, x, v)), name.clone()),
        ExprKind::Lift { func, args } => ExprKind::Lift {
            func: Box::new(subst(func, x, v)),
            args: args.iter().map(|a| subst(a, x, v)).collect(),
        },
        ExprKind::Foldp { func, init, signal } => ExprKind::Foldp {
            func: Box::new(subst(func, x, v)),
            init: Box::new(subst(init, x, v)),
            signal: Box::new(subst(signal, x, v)),
        },
        ExprKind::Async(a) => ExprKind::Async(Box::new(subst(a, x, v))),
        ExprKind::SignalPrim { op, args } => ExprKind::SignalPrim {
            op: *op,
            args: args.iter().map(|a| subst(a, x, v)).collect(),
        },
        ExprKind::Ctor(name) => ExprKind::Ctor(name.clone()),
        ExprKind::CtorApp(name, args) => {
            ExprKind::CtorApp(name.clone(), args.iter().map(|a| subst(a, x, v)).collect())
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            let scrutinee = Box::new(subst(scrutinee, x, v));
            let branches = branches
                .iter()
                .map(|b| {
                    let bound: Vec<&String> = match &b.pattern {
                        Pattern::Ctor { binders, .. } => binders.iter().collect(),
                        Pattern::Var(name) => vec![name],
                        Pattern::Wildcard => Vec::new(),
                    };
                    if bound.iter().any(|bv| *bv == x) {
                        b.clone()
                    } else if bound.iter().any(|bv| occurs_free(bv, v)) {
                        // α-rename colliding binders.
                        let mut body = b.body.clone();
                        let mut pattern = b.pattern.clone();
                        match &mut pattern {
                            Pattern::Ctor { binders, .. } => {
                                for binder in binders.iter_mut() {
                                    if occurs_free(binder, v) {
                                        let fresh = fresh_name(binder);
                                        body = subst(
                                            &body,
                                            binder,
                                            &Expr::synth(ExprKind::Var(fresh.clone())),
                                        );
                                        *binder = fresh;
                                    }
                                }
                            }
                            Pattern::Var(name) => {
                                if occurs_free(name, v) {
                                    let fresh = fresh_name(name);
                                    body = subst(
                                        &body,
                                        name,
                                        &Expr::synth(ExprKind::Var(fresh.clone())),
                                    );
                                    *name = fresh;
                                }
                            }
                            Pattern::Wildcard => {}
                        }
                        crate::ast::CaseBranch {
                            pattern,
                            body: subst(&body, x, v),
                        }
                    } else {
                        crate::ast::CaseBranch {
                            pattern: b.pattern.clone(),
                            body: subst(&b.body, x, v),
                        }
                    }
                })
                .collect();
            ExprKind::Case {
                scrutinee,
                branches,
            }
        }
    };
    Expr::new(kind, e.span)
}

/// Applies a binary operator to two values (rule OP). All operators are
/// total: `/` and `%` by zero yield 0; comparisons yield `0`/`1`.
fn delta(op: BinOp, a: &Expr, b: &Expr) -> Result<Expr, EvalError> {
    use ExprKind::{Float, Int, Str};
    let stuck = |why: &str| EvalError::Stuck {
        reason: format!("operator {op} applied to {why}"),
    };
    let kind = match (op, &a.kind, &b.kind) {
        (BinOp::Append, Str(x), Str(y)) => Str(format!("{x}{y}")),
        (BinOp::Cons, _, ExprKind::List(items)) => {
            let mut out = Vec::with_capacity(items.len() + 1);
            out.push(a.clone());
            out.extend(items.iter().cloned());
            ExprKind::List(out)
        }
        (_, Int(x), Int(y)) => {
            let (x, y) = (*x, *y);
            match op {
                BinOp::Add => Int(x.wrapping_add(y)),
                BinOp::Sub => Int(x.wrapping_sub(y)),
                BinOp::Mul => Int(x.wrapping_mul(y)),
                BinOp::Div => Int(if y == 0 { 0 } else { x.wrapping_div(y) }),
                BinOp::Mod => Int(if y == 0 { 0 } else { x.wrapping_rem(y) }),
                BinOp::Eq => Int((x == y) as i64),
                BinOp::Ne => Int((x != y) as i64),
                BinOp::Lt => Int((x < y) as i64),
                BinOp::Le => Int((x <= y) as i64),
                BinOp::Gt => Int((x > y) as i64),
                BinOp::Ge => Int((x >= y) as i64),
                BinOp::And => Int(((x != 0) && (y != 0)) as i64),
                BinOp::Or => Int(((x != 0) || (y != 0)) as i64),
                BinOp::Append | BinOp::Cons => return Err(stuck("integers")),
            }
        }
        (_, Float(x), Float(y)) => {
            let (x, y) = (*x, *y);
            match op {
                BinOp::Add => Float(x + y),
                BinOp::Sub => Float(x - y),
                BinOp::Mul => Float(x * y),
                BinOp::Div => Float(if y == 0.0 { 0.0 } else { x / y }),
                BinOp::Eq => Int((x == y) as i64),
                BinOp::Ne => Int((x != y) as i64),
                BinOp::Lt => Int((x < y) as i64),
                BinOp::Le => Int((x <= y) as i64),
                BinOp::Gt => Int((x > y) as i64),
                BinOp::Ge => Int((x >= y) as i64),
                _ => return Err(stuck("floats")),
            }
        }
        (BinOp::Eq, Str(x), Str(y)) => Int((x == y) as i64),
        (BinOp::Ne, Str(x), Str(y)) => Int((x != y) as i64),
        _ => return Err(stuck(&format!("{:?} and {:?}", a.kind, b.kind))),
    };
    Ok(Expr::synth(kind))
}

/// Decomposes `let x = s in u` if `e` is one (the EXPAND trigger).
fn as_signal_let(e: &Expr) -> Option<(&str, &Expr, &Expr)> {
    if let ExprKind::Let { name, value, body } = &e.kind {
        if is_signal_term(value) && is_final(body) {
            return Some((name, value, body));
        }
    }
    None
}

/// Rebuilds `let x = s in wrap(u)`, α-renaming `x` when `wrap`'s context
/// would capture it (side condition `x ∉ fv(F[])` of EXPAND).
fn expand_let(
    name: &str,
    value: &Expr,
    body: &Expr,
    context_fv: &[String],
    wrap: impl FnOnce(Expr) -> Expr,
) -> Expr {
    let (name, body) = if context_fv.iter().any(|v| v == name) {
        let fresh = fresh_name(name);
        let renamed = subst(body, name, &Expr::synth(ExprKind::Var(fresh.clone())));
        (fresh, renamed)
    } else {
        (name.to_string(), body.clone())
    };
    Expr::synth(ExprKind::Let {
        name,
        value: Box::new(value.clone()),
        body: Box::new(wrap(body)),
    })
}

fn fv_of(exprs: &[&Expr]) -> Vec<String> {
    let mut out = Vec::new();
    for e in exprs {
        free_vars(e, &mut out);
    }
    out
}

/// Performs one small step of Fig. 6. Returns `Ok(None)` if `e` is final.
///
/// # Errors
///
/// Returns [`EvalError::Stuck`] on ill-typed terms.
pub fn step(e: &Expr) -> Result<Option<Expr>, EvalError> {
    if is_final(e) {
        return Ok(None);
    }
    let span = e.span;
    let stepped = match &e.kind {
        ExprKind::App(e1, e2) => {
            if let Some(next) = step(e1)? {
                Expr::new(ExprKind::App(Box::new(next), e2.clone()), span)
            } else if let ExprKind::Lam { param, body, .. } = &e1.kind {
                // APPLICATION: (λx. e1) e2 → let x = e2 in e1
                Expr::new(
                    ExprKind::Let {
                        name: param.clone(),
                        value: e2.clone(),
                        body: body.clone(),
                    },
                    span,
                )
            } else if let Some((x, s, u)) = as_signal_let(e1) {
                // EXPAND with F = [] e2
                let fv = fv_of(&[e2]);
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(ExprKind::App(Box::new(u), e2.clone()), span)
                })
            } else {
                return Err(EvalError::Stuck {
                    reason: "application of a non-function".into(),
                });
            }
        }
        ExprKind::BinOp(op, e1, e2) => {
            if let Some(next) = step(e1)? {
                Expr::new(ExprKind::BinOp(*op, Box::new(next), e2.clone()), span)
            } else if let Some((x, s, u)) = as_signal_let(e1) {
                // EXPAND with F = [] ⊕ e2
                let fv = fv_of(&[e2]);
                let op = *op;
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(ExprKind::BinOp(op, Box::new(u), e2.clone()), span)
                })
            } else if !is_value(e1) {
                return Err(EvalError::Stuck {
                    reason: format!("operator {op} applied to a signal"),
                });
            } else if let Some(next) = step(e2)? {
                Expr::new(ExprKind::BinOp(*op, e1.clone(), Box::new(next)), span)
            } else if let Some((x, s, u)) = as_signal_let(e2) {
                // EXPAND with F = v ⊕ []
                let fv = fv_of(&[e1]);
                let op = *op;
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(ExprKind::BinOp(op, e1.clone(), Box::new(u)), span)
                })
            } else if is_value(e2) {
                delta(*op, e1, e2)? // OP
            } else {
                return Err(EvalError::Stuck {
                    reason: format!("operator {op} applied to a signal"),
                });
            }
        }
        ExprKind::If(c, t, f) => {
            if let Some(next) = step(c)? {
                Expr::new(ExprKind::If(Box::new(next), t.clone(), f.clone()), span)
            } else if let Some((x, s, u)) = as_signal_let(c) {
                // EXPAND with F = if [] e2 e3
                let fv = fv_of(&[t, f]);
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(ExprKind::If(Box::new(u), t.clone(), f.clone()), span)
                })
            } else {
                match &c.kind {
                    ExprKind::Int(n) => {
                        if *n != 0 {
                            (**t).clone() // COND-TRUE
                        } else {
                            (**f).clone() // COND-FALSE
                        }
                    }
                    _ => {
                        return Err(EvalError::Stuck {
                            reason: "if-condition is not an integer".into(),
                        })
                    }
                }
            }
        }
        ExprKind::Let { name, value, body } => {
            if let Some(next) = step(value)? {
                Expr::new(
                    ExprKind::Let {
                        name: name.clone(),
                        value: Box::new(next),
                        body: body.clone(),
                    },
                    span,
                )
            } else if is_value(value) {
                subst(body, name, value) // REDUCE
            } else {
                // let x = s in E : evaluate the body without substituting.
                match step(body)? {
                    Some(next) => Expr::new(
                        ExprKind::Let {
                            name: name.clone(),
                            value: value.clone(),
                            body: Box::new(next),
                        },
                        span,
                    ),
                    None => {
                        return Err(EvalError::Stuck {
                            reason: "let over a final body failed to be final".into(),
                        })
                    }
                }
            }
        }
        ExprKind::Pair(a, b) => {
            if let Some(next) = step(a)? {
                Expr::new(ExprKind::Pair(Box::new(next), b.clone()), span)
            } else if let Some((x, s, u)) = as_signal_let(a) {
                let fv = fv_of(&[b]);
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(ExprKind::Pair(Box::new(u), b.clone()), span)
                })
            } else if !is_value(a) {
                return Err(EvalError::Stuck {
                    reason: "pair component is a signal".into(),
                });
            } else if let Some(next) = step(b)? {
                Expr::new(ExprKind::Pair(a.clone(), Box::new(next)), span)
            } else if let Some((x, s, u)) = as_signal_let(b) {
                let fv = fv_of(&[a]);
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(ExprKind::Pair(a.clone(), Box::new(u)), span)
                })
            } else {
                return Err(EvalError::Stuck {
                    reason: "pair component is a signal".into(),
                });
            }
        }
        ExprKind::Fst(inner) => step_proj(inner, span, true)?,
        ExprKind::Snd(inner) => step_proj(inner, span, false)?,
        ExprKind::List(items) => {
            // E = [v1, …, E, …, en] with EXPAND at each element position.
            let mut pos = None;
            for (k, item) in items.iter().enumerate() {
                if !is_value(item) {
                    pos = Some(k);
                    break;
                }
            }
            let Some(k) = pos else {
                return Err(EvalError::Stuck {
                    reason: "list elements final but term not final".into(),
                });
            };
            if let Some(next) = step(&items[k])? {
                let mut out = items.clone();
                out[k] = next;
                Expr::new(ExprKind::List(out), span)
            } else if let Some((x, s, u)) = as_signal_let(&items[k]) {
                let others: Vec<&Expr> = items
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != k)
                    .map(|(_, it)| it)
                    .collect();
                let fv = fv_of(&others);
                let items = items.clone();
                expand_let(x, s, u, &fv, move |u2| {
                    let mut out = items;
                    out[k] = u2;
                    Expr::new(ExprKind::List(out), span)
                })
            } else {
                return Err(EvalError::Stuck {
                    reason: "list element is not a value".into(),
                });
            }
        }
        ExprKind::Record(fields) => {
            // Evaluate fields in declaration order, EXPAND at each position.
            let mut pos = None;
            for (k, (_, value)) in fields.iter().enumerate() {
                if !is_value(value) {
                    pos = Some(k);
                    break;
                }
            }
            let Some(k) = pos else {
                return Err(EvalError::Stuck {
                    reason: "record fields final but term not final".into(),
                });
            };
            if let Some(next) = step(&fields[k].1)? {
                let mut out = fields.clone();
                out[k].1 = next;
                Expr::new(ExprKind::Record(out), span)
            } else if let Some((x, s, u)) = as_signal_let(&fields[k].1) {
                let others: Vec<&Expr> = fields
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != k)
                    .map(|(_, (_, v))| v)
                    .collect();
                let fv = fv_of(&others);
                let fields = fields.clone();
                expand_let(x, s, u, &fv, move |u2| {
                    let mut out = fields;
                    out[k].1 = u2;
                    Expr::new(ExprKind::Record(out), span)
                })
            } else {
                return Err(EvalError::Stuck {
                    reason: "record field is not a value".into(),
                });
            }
        }
        ExprKind::Field(rec, name) => {
            if let Some(next) = step(rec)? {
                Expr::new(ExprKind::Field(Box::new(next), name.clone()), span)
            } else if let Some((x, s, u)) = as_signal_let(rec) {
                let name = name.clone();
                expand_let(x, s, u, &[], |u2| {
                    Expr::new(ExprKind::Field(Box::new(u2), name), span)
                })
            } else {
                match &rec.kind {
                    ExprKind::Record(fields) => match fields.iter().find(|(f, _)| f == name) {
                        Some((_, v)) => v.clone(),
                        None => {
                            return Err(EvalError::Stuck {
                                reason: format!("record has no field `{name}`"),
                            })
                        }
                    },
                    _ => {
                        return Err(EvalError::Stuck {
                            reason: "field access on a non-record".into(),
                        })
                    }
                }
            }
        }
        ExprKind::ListOp(op, inner) => {
            if let Some(next) = step(inner)? {
                Expr::new(ExprKind::ListOp(*op, Box::new(next)), span)
            } else if let Some((x, s, u)) = as_signal_let(inner) {
                let op = *op;
                expand_let(x, s, u, &[], |u2| {
                    Expr::new(ExprKind::ListOp(op, Box::new(u2)), span)
                })
            } else {
                match &inner.kind {
                    ExprKind::List(items) => match op {
                        ListOp::Head => match items.first() {
                            Some(h) => h.clone(),
                            None => {
                                return Err(EvalError::Stuck {
                                    reason: "head of the empty list".into(),
                                })
                            }
                        },
                        ListOp::Tail => {
                            if items.is_empty() {
                                return Err(EvalError::Stuck {
                                    reason: "tail of the empty list".into(),
                                });
                            }
                            Expr::new(ExprKind::List(items[1..].to_vec()), span)
                        }
                        ListOp::IsEmpty => Expr::synth(ExprKind::Int(items.is_empty() as i64)),
                        ListOp::Length => Expr::synth(ExprKind::Int(items.len() as i64)),
                    },
                    _ => {
                        return Err(EvalError::Stuck {
                            reason: format!("{} of a non-list", op.keyword()),
                        })
                    }
                }
            }
        }
        ExprKind::Ith(index, list) => {
            if let Some(next) = step(index)? {
                Expr::new(ExprKind::Ith(Box::new(next), list.clone()), span)
            } else if let Some((x, s, u)) = as_signal_let(index) {
                let fv = fv_of(&[list]);
                let list = list.clone();
                expand_let(x, s, u, &fv, |u2| {
                    Expr::new(ExprKind::Ith(Box::new(u2), list), span)
                })
            } else if !is_value(index) {
                return Err(EvalError::Stuck {
                    reason: "ith index is not a value".into(),
                });
            } else if let Some(next) = step(list)? {
                Expr::new(ExprKind::Ith(index.clone(), Box::new(next)), span)
            } else if let Some((x, s, u)) = as_signal_let(list) {
                let fv = fv_of(&[index]);
                let index = index.clone();
                expand_let(x, s, u, &fv, |u2| {
                    Expr::new(ExprKind::Ith(index, Box::new(u2)), span)
                })
            } else {
                match (&index.kind, &list.kind) {
                    (ExprKind::Int(n), ExprKind::List(items)) => {
                        let k = *n;
                        if k < 0 || k as usize >= items.len() {
                            return Err(EvalError::Stuck {
                                reason: format!(
                                    "ith index {k} out of bounds for a {}-element list",
                                    items.len()
                                ),
                            });
                        }
                        items[k as usize].clone()
                    }
                    _ => {
                        return Err(EvalError::Stuck {
                            reason: "ith applied to non-int or non-list".into(),
                        })
                    }
                }
            }
        }
        ExprKind::Lift { func, args } => {
            if let Some(next) = step(func)? {
                Expr::new(
                    ExprKind::Lift {
                        func: Box::new(next),
                        args: args.clone(),
                    },
                    span,
                )
            } else if let Some((x, s, u)) = as_signal_let(func) {
                // EXPAND with F = liftn [] e1…en
                let arg_refs: Vec<&Expr> = args.iter().collect();
                let fv = fv_of(&arg_refs);
                let args = args.clone();
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(
                        ExprKind::Lift {
                            func: Box::new(u),
                            args,
                        },
                        span,
                    )
                })
            } else if !is_value(func) {
                return Err(EvalError::Stuck {
                    reason: "lift function position is a signal".into(),
                });
            } else {
                // Evaluate arguments left to right; each must end as a
                // signal term (E = liftn v s1…E…en). Signal-`let`s stay put.
                let mut new_args = args.clone();
                let mut progressed = false;
                for a in new_args.iter_mut() {
                    if is_signal_term(a) {
                        continue;
                    }
                    match step(a)? {
                        Some(next) => {
                            *a = next;
                            progressed = true;
                            break;
                        }
                        None => {
                            return Err(EvalError::Stuck {
                                reason: "lift argument is not a signal".into(),
                            })
                        }
                    }
                }
                if !progressed {
                    return Err(EvalError::Stuck {
                        reason: "lift arguments final but term not final".into(),
                    });
                }
                Expr::new(
                    ExprKind::Lift {
                        func: func.clone(),
                        args: new_args,
                    },
                    span,
                )
            }
        }
        ExprKind::Foldp { func, init, signal } => {
            if let Some(next) = step(func)? {
                Expr::new(
                    ExprKind::Foldp {
                        func: Box::new(next),
                        init: init.clone(),
                        signal: signal.clone(),
                    },
                    span,
                )
            } else if let Some((x, s, u)) = as_signal_let(func) {
                let fv = fv_of(&[init, signal]);
                let (init, signal) = (init.clone(), signal.clone());
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(
                        ExprKind::Foldp {
                            func: Box::new(u),
                            init,
                            signal,
                        },
                        span,
                    )
                })
            } else if !is_value(func) {
                return Err(EvalError::Stuck {
                    reason: "foldp function position is a signal".into(),
                });
            } else if let Some(next) = step(init)? {
                Expr::new(
                    ExprKind::Foldp {
                        func: func.clone(),
                        init: Box::new(next),
                        signal: signal.clone(),
                    },
                    span,
                )
            } else if let Some((x, s, u)) = as_signal_let(init) {
                let fv = fv_of(&[func, signal]);
                let (func, signal) = (func.clone(), signal.clone());
                expand_let(x, s, u, &fv, |u| {
                    Expr::new(
                        ExprKind::Foldp {
                            func,
                            init: Box::new(u),
                            signal,
                        },
                        span,
                    )
                })
            } else if !is_value(init) {
                return Err(EvalError::Stuck {
                    reason: "foldp initial accumulator is a signal".into(),
                });
            } else if is_signal_term(signal) {
                return Err(EvalError::Stuck {
                    reason: "foldp final but term not final".into(),
                });
            } else {
                match step(signal)? {
                    Some(next) => Expr::new(
                        ExprKind::Foldp {
                            func: func.clone(),
                            init: init.clone(),
                            signal: Box::new(next),
                        },
                        span,
                    ),
                    None => {
                        return Err(EvalError::Stuck {
                            reason: "foldp third argument is not a signal".into(),
                        })
                    }
                }
            }
        }
        ExprKind::Async(inner) => {
            if is_signal_term(inner) {
                return Err(EvalError::Stuck {
                    reason: "async final but term not final".into(),
                });
            }
            match step(inner)? {
                Some(next) => Expr::new(ExprKind::Async(Box::new(next)), span),
                None => {
                    return Err(EvalError::Stuck {
                        reason: "async argument is not a signal".into(),
                    })
                }
            }
        }
        ExprKind::SignalPrim { op, args } => {
            let op = *op;
            let values = op.value_args();
            // Value operands first (F contexts: EXPAND applies).
            let mut pos = None;
            for (k, a) in args.iter().enumerate() {
                let done = if k < values {
                    is_value(a)
                } else {
                    is_signal_term(a)
                };
                if !done {
                    pos = Some(k);
                    break;
                }
            }
            let Some(k) = pos else {
                return Err(EvalError::Stuck {
                    reason: format!("{} operands final but term not final", op.keyword()),
                });
            };
            if let Some(next) = step(&args[k])? {
                let mut out = args.clone();
                out[k] = next;
                Expr::new(ExprKind::SignalPrim { op, args: out }, span)
            } else if k < values {
                if let Some((x, s, u)) = as_signal_let(&args[k]) {
                    let others: Vec<&Expr> = args
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != k)
                        .map(|(_, a)| a)
                        .collect();
                    let fv = fv_of(&others);
                    let args = args.clone();
                    expand_let(x, s, u, &fv, move |u2| {
                        let mut out = args;
                        out[k] = u2;
                        Expr::new(ExprKind::SignalPrim { op, args: out }, span)
                    })
                } else {
                    return Err(EvalError::Stuck {
                        reason: format!("{} value operand is not a value", op.keyword()),
                    });
                }
            } else {
                return Err(EvalError::Stuck {
                    reason: format!("{} signal operand is not a signal", op.keyword()),
                });
            }
        }
        ExprKind::CtorApp(name, args) => {
            let name = name.clone();
            let mut pos = None;
            for (k, a) in args.iter().enumerate() {
                if !is_value(a) {
                    pos = Some(k);
                    break;
                }
            }
            let Some(k) = pos else {
                return Err(EvalError::Stuck {
                    reason: "constructor arguments final but term not final".into(),
                });
            };
            if let Some(next) = step(&args[k])? {
                let mut out = args.clone();
                out[k] = next;
                Expr::new(ExprKind::CtorApp(name, out), span)
            } else if let Some((x, s, u)) = as_signal_let(&args[k]) {
                let others: Vec<&Expr> = args
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != k)
                    .map(|(_, a)| a)
                    .collect();
                let fv = fv_of(&others);
                let args = args.clone();
                expand_let(x, s, u, &fv, move |u2| {
                    let mut out = args;
                    out[k] = u2;
                    Expr::new(ExprKind::CtorApp(name, out), span)
                })
            } else {
                return Err(EvalError::Stuck {
                    reason: "constructor argument is not a value".into(),
                });
            }
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            if let Some(next) = step(scrutinee)? {
                Expr::new(
                    ExprKind::Case {
                        scrutinee: Box::new(next),
                        branches: branches.clone(),
                    },
                    span,
                )
            } else if let Some((x, s, u)) = as_signal_let(scrutinee) {
                let branch_bodies: Vec<&Expr> = branches.iter().map(|b| &b.body).collect();
                let fv = fv_of(&branch_bodies);
                let branches = branches.clone();
                expand_let(x, s, u, &fv, move |u2| {
                    Expr::new(
                        ExprKind::Case {
                            scrutinee: Box::new(u2),
                            branches,
                        },
                        span,
                    )
                })
            } else if !is_value(scrutinee) {
                return Err(EvalError::Stuck {
                    reason: "case scrutinee is a signal".into(),
                });
            } else {
                // Match branches in order.
                let mut chosen = None;
                'branches: for b in branches {
                    match (&b.pattern, &scrutinee.kind) {
                        (Pattern::Ctor { name, binders }, ExprKind::CtorApp(tag, args))
                            if name == tag =>
                        {
                            if binders.len() != args.len() {
                                return Err(EvalError::Stuck {
                                    reason: format!("pattern `{name}` binder count mismatch"),
                                });
                            }
                            let mut body = b.body.clone();
                            for (binder, arg) in binders.iter().zip(args) {
                                if binder != "_" {
                                    body = subst(&body, binder, arg);
                                }
                            }
                            chosen = Some(body);
                            break 'branches;
                        }
                        (Pattern::Ctor { .. }, _) => continue,
                        (Pattern::Var(x), _) => {
                            chosen = Some(subst(&b.body, x, scrutinee));
                            break 'branches;
                        }
                        (Pattern::Wildcard, _) => {
                            chosen = Some(b.body.clone());
                            break 'branches;
                        }
                    }
                }
                match chosen {
                    Some(body) => body,
                    None => {
                        return Err(EvalError::Stuck {
                            reason: "no case branch matched".into(),
                        })
                    }
                }
            }
        }
        ExprKind::Var(x) => {
            return Err(EvalError::Stuck {
                reason: format!("unbound variable {x}"),
            })
        }
        // Values and inputs are final; unreachable because of the guard.
        _ => unreachable!("final terms are filtered at entry"),
    };
    Ok(Some(stepped))
}

fn step_proj(inner: &Expr, span: crate::span::Span, first: bool) -> Result<Expr, EvalError> {
    let rebuild = |e: Expr| {
        if first {
            Expr::new(ExprKind::Fst(Box::new(e)), span)
        } else {
            Expr::new(ExprKind::Snd(Box::new(e)), span)
        }
    };
    if let Some(next) = step(inner)? {
        return Ok(rebuild(next));
    }
    if let Some((x, s, u)) = as_signal_let(inner) {
        return Ok(expand_let(x, s, u, &[], rebuild));
    }
    match &inner.kind {
        ExprKind::Pair(a, b) => Ok(if first { (**a).clone() } else { (**b).clone() }),
        _ => Err(EvalError::Stuck {
            reason: "projection from a non-pair".into(),
        }),
    }
}

/// Default fuel for [`normalize`]: generous for any realistic program.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Normalizes `e` to a final term by iterating [`step`].
///
/// # Errors
///
/// Propagates [`EvalError::Stuck`] and returns [`EvalError::OutOfFuel`]
/// after `fuel` steps.
pub fn normalize(e: &Expr, fuel: u64) -> Result<Expr, EvalError> {
    let mut cur = e.clone();
    for _ in 0..fuel {
        match step(&cur)? {
            Some(next) => cur = next,
            None => return Ok(cur),
        }
    }
    Err(EvalError::OutOfFuel)
}

/// Size and depth of a term, for small-step resource accounting: `cells`
/// counts AST nodes plus the length of string literals and collections
/// (so a doubling string shows up as growing allocation, not one node),
/// `depth` is the maximum syntactic nesting.
pub fn expr_cost(e: &Expr) -> (u64, u64) {
    fn sub(children: &[&Expr]) -> (u64, u64) {
        let mut cells = 0u64;
        let mut depth = 0u64;
        for c in children {
            let (cc, cd) = expr_cost(c);
            cells = cells.saturating_add(cc);
            depth = depth.max(cd);
        }
        (cells, depth)
    }
    let (cells, depth) = match &e.kind {
        ExprKind::Unit
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Var(_)
        | ExprKind::Input(_)
        | ExprKind::Ctor(_) => (0, 0),
        ExprKind::Str(s) => (s.len() as u64, 0),
        ExprKind::Lam { body, .. } => expr_cost(body),
        ExprKind::App(a, b) | ExprKind::BinOp(_, a, b) | ExprKind::Pair(a, b) => {
            sub(&[a.as_ref(), b.as_ref()])
        }
        ExprKind::Ith(a, b) => sub(&[a.as_ref(), b.as_ref()]),
        ExprKind::If(c, t, f) => sub(&[c.as_ref(), t.as_ref(), f.as_ref()]),
        ExprKind::Let { value, body, .. } => sub(&[value.as_ref(), body.as_ref()]),
        ExprKind::Fst(x) | ExprKind::Snd(x) | ExprKind::ListOp(_, x) | ExprKind::Async(x) => {
            expr_cost(x)
        }
        ExprKind::Field(x, _) => expr_cost(x),
        ExprKind::List(items) | ExprKind::CtorApp(_, items) => {
            let (c, d) = sub(&items.iter().collect::<Vec<_>>());
            (c.saturating_add(items.len() as u64), d)
        }
        ExprKind::Record(fields) => {
            let (c, d) = sub(&fields.iter().map(|(_, v)| v).collect::<Vec<_>>());
            (c.saturating_add(fields.len() as u64), d)
        }
        ExprKind::Lift { func, args } => {
            let mut children: Vec<&Expr> = vec![func];
            children.extend(args.iter());
            sub(&children)
        }
        ExprKind::Foldp { func, init, signal } => {
            sub(&[func.as_ref(), init.as_ref(), signal.as_ref()])
        }
        ExprKind::Case {
            scrutinee,
            branches,
        } => {
            let mut children: Vec<&Expr> = vec![scrutinee];
            children.extend(branches.iter().map(|b| &b.body));
            sub(&children)
        }
        ExprKind::SignalPrim { args, .. } => sub(&args.iter().collect::<Vec<_>>()),
    };
    (cells.saturating_add(1), depth.saturating_add(1))
}

/// [`normalize`] under a [`Meter`]: every reduction step charges one fuel
/// tick, term growth is charged as allocation, and the evolving term's
/// syntactic depth is checked against the budget — so an adversarial
/// program traps with a typed [`Trap`] instead of diverging or exhausting
/// memory.
///
/// With an unlimited meter this is step-for-step identical to
/// [`normalize`] with unbounded fuel (property-tested in
/// `tests/fuel_determinism.rs`).
///
/// # Errors
///
/// Propagates [`EvalError::Stuck`] and returns [`EvalError::Trap`] when
/// the meter's budget is exhausted.
pub fn normalize_metered(e: &Expr, meter: &mut Meter) -> Result<Expr, EvalError> {
    let mut cur = e.clone();
    let (mut prev_cells, depth) = expr_cost(&cur);
    meter.check_depth(depth)?;
    loop {
        meter.tick()?;
        match step(&cur)? {
            Some(next) => {
                let (cells, depth) = expr_cost(&next);
                meter.check_depth(depth)?;
                meter.alloc(cells.saturating_sub(prev_cells))?;
                prev_cells = cells;
                cur = next;
            }
            None => return Ok(cur),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn norm(src: &str) -> Expr {
        normalize(&parse_expr(src).unwrap(), DEFAULT_FUEL).unwrap()
    }

    fn norm_int(src: &str) -> i64 {
        match norm(src).kind {
            ExprKind::Int(n) => n,
            other => panic!("expected int, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_conditionals() {
        assert_eq!(norm_int("1 + 2 * 3"), 7);
        assert_eq!(norm_int("10 / 3"), 3);
        assert_eq!(norm_int("10 / 0"), 0); // total division
        assert_eq!(norm_int("10 % 0"), 0);
        assert_eq!(norm_int("if 2 > 1 then 10 else 20"), 10);
        assert_eq!(norm_int("if 0 then 10 else 20"), 20);
        assert_eq!(norm_int("(1 < 2) && (3 /= 3) || 1"), 1);
    }

    #[test]
    fn strings_and_floats() {
        assert!(matches!(
            norm("\"foo\" ++ \"bar\"").kind,
            ExprKind::Str(ref s) if s == "foobar"
        ));
        assert!(matches!(
            norm("1.5 + 2.25").kind,
            ExprKind::Float(x) if x == 3.75
        ));
        assert_eq!(norm_int("\"a\" == \"a\""), 1);
    }

    #[test]
    fn application_goes_through_let() {
        assert_eq!(norm_int("(\\x -> x + 1) 41"), 42);
        assert_eq!(norm_int("(\\f x -> f (f x)) (\\y -> y * 2) 3"), 12);
        assert_eq!(norm_int("let add a b = a + b in add 20 22"), 42);
    }

    #[test]
    fn pairs_and_projections() {
        assert_eq!(norm_int("fst (40 + 2, 0)"), 42);
        assert_eq!(norm_int("snd (0, 21 * 2)"), 42);
    }

    #[test]
    fn signal_terms_are_final() {
        let e = norm("lift (\\x -> x + 1) Mouse.x");
        assert!(is_signal_term(&e));
        let e = norm("foldp (\\k c -> c + 1) 0 Keyboard.lastPressed");
        assert!(is_signal_term(&e));
        let e = norm("async (lift (\\x -> x) Mouse.y)");
        assert!(is_signal_term(&e));
    }

    #[test]
    fn functional_parts_inside_signal_terms_evaluate() {
        // The function position must be reduced to a value.
        let e = norm("lift ((\\f -> f) (\\x -> x * 2)) Mouse.x");
        let ExprKind::Lift { func, .. } = &e.kind else {
            panic!()
        };
        assert!(matches!(func.kind, ExprKind::Lam { .. }));
    }

    #[test]
    fn reduce_substitutes_values_not_signals() {
        // Signal-bound let stays; value-bound let substitutes.
        let e = norm("let k = 2 in lift (\\x -> x * k) Mouse.x");
        let ExprKind::Lift { func, .. } = &e.kind else {
            panic!("expected lift, got {e:?}")
        };
        // k was substituted into the lambda body.
        let ExprKind::Lam { body, .. } = &func.kind else {
            panic!()
        };
        let mut fv = Vec::new();
        free_vars(body, &mut fv);
        assert!(!fv.iter().any(|v| v == "k"));

        let e = norm("let s = lift (\\x -> x) Mouse.x in lift2 (\\a b -> a + b) s s");
        let ExprKind::Let { name, body, .. } = &e.kind else {
            panic!("signal let must remain: {e:?}")
        };
        assert_eq!(name, "s");
        // Both uses still refer to the shared s — no duplication.
        let ExprKind::Lift { args, .. } = &body.kind else {
            panic!()
        };
        assert!(args
            .iter()
            .all(|a| matches!(&a.kind, ExprKind::Var(v) if v == "s")));
    }

    #[test]
    fn expand_floats_signal_lets_out_of_strict_positions() {
        // (let s = i in \x -> x) 5 — EXPAND then APPLICATION then REDUCE.
        let e = norm("(let s = Mouse.x in \\x -> x) 5");
        // Result: let s = Mouse.x in 5 (a signal term wrapping a value).
        let ExprKind::Let { name, value, body } = &e.kind else {
            panic!("expected let: {e:?}")
        };
        assert_eq!(name, "s");
        assert!(matches!(value.kind, ExprKind::Input(_)));
        assert!(matches!(body.kind, ExprKind::Int(5)));
    }

    #[test]
    fn expand_renames_to_avoid_capture() {
        // The context mentions a free `s`; EXPAND must α-rename the bound s.
        // Build: let s = Mouse.x in ((let s = Mouse.y in \x -> x) s)
        let e = norm("let s = Mouse.x in (let s2 = Mouse.y in \\x -> x) s");
        // Normal form: let s = Mouse.x in let s2 = Mouse.y in let x = s in x
        let ExprKind::Let { body, .. } = &e.kind else {
            panic!()
        };
        let ExprKind::Let { name, body, .. } = &body.kind else {
            panic!("expected inner let: {body:?}")
        };
        assert_eq!(name, "s2");
        let ExprKind::Let { name, value, body } = &body.kind else {
            panic!("expected application residue let: {body:?}")
        };
        assert_eq!(name, "x");
        assert!(matches!(&value.kind, ExprKind::Var(v) if v == "s"));
        assert!(matches!(&body.kind, ExprKind::Var(v) if v == "x"));
    }

    #[test]
    fn capture_avoiding_substitution() {
        // (\x -> \y -> x) y  must not capture the free y.
        let e = parse_expr("(\\x -> \\y -> x + y) z").unwrap();
        let reduced = normalize(
            &Expr::synth(ExprKind::Let {
                name: "z".into(),
                value: Box::new(Expr::synth(ExprKind::Int(1))),
                body: Box::new(e),
            }),
            DEFAULT_FUEL,
        )
        .unwrap();
        // λy. 1 + y — a value.
        assert!(matches!(reduced.kind, ExprKind::Lam { .. }));
    }

    #[test]
    fn stuck_terms_report_reasons() {
        let stuck = |src: &str| normalize(&parse_expr(src).unwrap(), DEFAULT_FUEL).unwrap_err();
        assert!(matches!(stuck("1 2"), EvalError::Stuck { .. }));
        assert!(matches!(stuck("1 + ()"), EvalError::Stuck { .. }));
        assert!(matches!(
            stuck("if () then 1 else 2"),
            EvalError::Stuck { .. }
        ));
        assert!(matches!(stuck("fst 3"), EvalError::Stuck { .. }));
        assert!(matches!(stuck("x + 1"), EvalError::Stuck { .. }));
        assert!(matches!(stuck("Mouse.x + 1"), EvalError::Stuck { .. }));
        assert!(matches!(stuck("async 3"), EvalError::Stuck { .. }));
    }

    #[test]
    fn paper_example_3_shape_normalizes() {
        // A simplification of §2 Example 3's wiring.
        let src = "\
let getImage tags = lift (\\t -> t ++ \".jpg\") tags in
let scene = \\a -> \\b -> (a, b) in
lift2 scene Mouse.x (async (getImage Words.input))";
        let e = norm(&src.replace('\n', " "));
        assert!(is_signal_term(&e), "not a signal term: {e:?}");
    }
}
