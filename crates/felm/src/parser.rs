//! Recursive-descent parser for FElm.
//!
//! The concrete syntax follows the paper's examples: top-level definitions
//! (`name args = expr`, one per line, `main` distinguished), lambdas
//! (`\x y -> e`, optionally annotated `\(x : Int) -> e`), `let … in`,
//! `if … then … else`, the signal primitives `liftN`, `foldp`, `async`, and
//! qualified input names like `Mouse.x`.
//!
//! `liftN`, `foldp`, and `async` are primitive syntactic forms that take
//! all their operands at once (as in Fig. 3), not curried functions.

use std::fmt;

use crate::ast::{BinOp, CaseBranch, DataDef, Expr, ExprKind, ListOp, Pattern, SignalPrimOp, Type};
use crate::span::Span;
use crate::token::{lex, LexError, SpannedToken, Token};

/// A parse failure with location.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the problem is.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        let span = match e {
            LexError::UnexpectedChar(_, s)
            | LexError::UnterminatedString(s)
            | LexError::UnterminatedComment(s)
            | LexError::BadNumber(_, s) => s,
        };
        ParseError {
            message: e.to_string(),
            span,
        }
    }
}

/// A top-level definition `name = expr`.
#[derive(Clone, Debug, PartialEq)]
pub struct Def {
    /// The defined name.
    pub name: String,
    /// The right-hand side (parameters already desugared to lambdas).
    pub body: Expr,
}

/// A parsed program: `data` declarations plus an ordered list of value
/// definitions, one of which should be `main`.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Algebraic data type declarations, in source order.
    pub datas: Vec<DataDef>,
    /// Definitions in source order.
    pub defs: Vec<Def>,
}

impl Program {
    /// Desugars the program into a single expression: earlier definitions
    /// become nested `let`s scoping over later ones, with `main`'s body as
    /// the final body.
    ///
    /// # Errors
    ///
    /// Fails if the program has no `main` definition.
    pub fn to_expr(&self) -> Result<Expr, ParseError> {
        let main_ix = self
            .defs
            .iter()
            .position(|d| d.name == "main")
            .ok_or_else(|| ParseError {
                message: "program has no `main` definition".into(),
                span: Span::dummy(),
            })?;
        let main_body = self.defs[main_ix].body.clone();
        let mut expr = main_body;
        for def in self.defs[..main_ix].iter().rev() {
            let span = def.body.span;
            expr = Expr::new(
                ExprKind::Let {
                    name: def.name.clone(),
                    value: Box::new(def.body.clone()),
                    body: Box::new(expr),
                },
                span,
            );
        }
        Ok(expr)
    }
}

/// Parses a complete program (one definition per top-level line).
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
///
/// ```
/// use felm::parser::parse_program;
/// let prog = parse_program("double x = x + x\nmain = lift double Mouse.x").unwrap();
/// assert_eq!(prog.defs.len(), 2);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut defs = Vec::new();
    let mut datas = Vec::new();
    p.skip_newlines();
    while !p.at(&Token::Eof) {
        if p.at(&Token::Data) {
            datas.push(p.data_def()?);
        } else {
            defs.push(p.definition()?);
        }
        if !p.at(&Token::Eof) {
            p.expect(&Token::Newline)?;
            p.skip_newlines();
        }
    }
    Ok(Program { datas, defs })
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns the first lexical or syntactic error.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.skip_newlines();
    let e = p.expr()?;
    p.skip_newlines();
    p.expect(&Token::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> SpannedToken {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn skip_newlines(&mut self) {
        while self.at(&Token::Newline) {
            self.bump();
        }
    }

    fn expect(&mut self, t: &Token) -> Result<SpannedToken, ParseError> {
        if self.at(t) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.peek_span(),
        }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.error(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---- definitions -----------------------------------------------------

    /// A capitalized single-segment name (constructor or type name).
    fn upper_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            Token::QualIdent(name) if !name.contains('.') => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(self.error(format!("expected a capitalized name, found `{other}`"))),
        }
    }

    /// `data Name = Ctor T1 T2 | Ctor2 | …`
    fn data_def(&mut self) -> Result<DataDef, ParseError> {
        self.expect(&Token::Data)?;
        let (name, _) = self.upper_ident()?;
        self.expect(&Token::Equals)?;
        let mut ctors = Vec::new();
        loop {
            let (ctor, _) = self.upper_ident()?;
            let mut args = Vec::new();
            while self.starts_type_atom() {
                args.push(self.ty_atom()?);
            }
            ctors.push((ctor, args));
            if self.at(&Token::Pipe) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(DataDef { name, ctors })
    }

    fn starts_type_atom(&self) -> bool {
        matches!(
            self.peek(),
            Token::QualIdent(_) | Token::LParen | Token::LBracket | Token::LBrace
        )
    }

    fn definition(&mut self) -> Result<Def, ParseError> {
        let (name, _span) = self.ident()?;
        let mut params = Vec::new();
        while let Token::Ident(_) = self.peek() {
            params.push(self.ident()?.0);
        }
        self.expect(&Token::Equals)?;
        let mut body = self.expr()?;
        for p in params.into_iter().rev() {
            let span = body.span;
            body = Expr::new(
                ExprKind::Lam {
                    param: p,
                    ann: None,
                    body: Box::new(body),
                },
                span,
            );
        }
        Ok(Def { name, body })
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Backslash => self.lambda(),
            Token::Let => self.let_expr(),
            Token::If => self.if_expr(),
            Token::Case => self.case_expr(),
            _ => self.binary(0),
        }
    }

    /// `case e of | pat -> body | pat -> body …` (a leading `|` before the
    /// first branch is required, keeping the grammar layout-free).
    fn case_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&Token::Case)?.span;
        let scrutinee = self.expr()?;
        self.skip_newlines();
        self.expect(&Token::Of)?;
        let mut branches = Vec::new();
        // Newlines before a `|` continue the case; otherwise they separate
        // top-level definitions and must be left for the program parser.
        loop {
            let mark = self.pos;
            self.skip_newlines();
            if !self.at(&Token::Pipe) {
                self.pos = mark;
                break;
            }
            self.bump();
            let pattern = self.pattern()?;
            self.expect(&Token::Arrow)?;
            let body = self.expr()?;
            branches.push(CaseBranch { pattern, body });
        }
        if branches.is_empty() {
            return Err(self.error("case needs at least one `| pattern -> body` branch".into()));
        }
        let span = start.to(branches.last().map(|b| b.body.span).unwrap_or(start));
        Ok(Expr::new(
            ExprKind::Case {
                scrutinee: Box::new(scrutinee),
                branches,
            },
            span,
        ))
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        match self.peek().clone() {
            Token::QualIdent(name) if !name.contains('.') => {
                self.bump();
                let mut binders = Vec::new();
                while let Token::Ident(_) = self.peek() {
                    binders.push(self.ident()?.0);
                }
                Ok(Pattern::Ctor { name, binders })
            }
            Token::Ident(name) => {
                self.bump();
                if name == "_" {
                    Ok(Pattern::Wildcard)
                } else {
                    Ok(Pattern::Var(name))
                }
            }
            other => Err(self.error(format!("expected a pattern, found `{other}`"))),
        }
    }

    fn lambda(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&Token::Backslash)?.span;
        let mut params: Vec<(String, Option<Type>)> = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Ident(_) => {
                    let (name, _) = self.ident()?;
                    params.push((name, None));
                }
                Token::LParen => {
                    // `\(x : T) -> e`
                    self.bump();
                    let (name, _) = self.ident()?;
                    self.expect(&Token::Colon)?;
                    let ty = self.ty()?;
                    self.expect(&Token::RParen)?;
                    params.push((name, Some(ty)));
                }
                Token::Arrow => break,
                other => {
                    return Err(self.error(format!(
                        "expected parameter or `->` in lambda, found `{other}`"
                    )))
                }
            }
        }
        if params.is_empty() {
            return Err(self.error("lambda needs at least one parameter".into()));
        }
        self.expect(&Token::Arrow)?;
        let mut body = self.expr()?;
        let span = start.to(body.span);
        for (p, ann) in params.into_iter().rev() {
            body = Expr::new(
                ExprKind::Lam {
                    param: p,
                    ann,
                    body: Box::new(body),
                },
                span,
            );
        }
        Ok(body)
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&Token::Let)?.span;
        let (name, _) = self.ident()?;
        let mut params = Vec::new();
        while let Token::Ident(_) = self.peek() {
            params.push(self.ident()?.0);
        }
        self.expect(&Token::Equals)?;
        let mut value = self.expr()?;
        for p in params.into_iter().rev() {
            let span = value.span;
            value = Expr::new(
                ExprKind::Lam {
                    param: p,
                    ann: None,
                    body: Box::new(value),
                },
                span,
            );
        }
        self.skip_newlines();
        self.expect(&Token::In)?;
        let body = self.expr()?;
        let span = start.to(body.span);
        Ok(Expr::new(
            ExprKind::Let {
                name,
                value: Box::new(value),
                body: Box::new(body),
            },
            span,
        ))
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.expect(&Token::If)?.span;
        let cond = self.expr()?;
        self.expect(&Token::Then)?;
        let then = self.expr()?;
        self.expect(&Token::Else)?;
        let els = self.expr()?;
        let span = start.to(els.span);
        Ok(Expr::new(
            ExprKind::If(Box::new(cond), Box::new(then), Box::new(els)),
            span,
        ))
    }

    /// Operator precedence climbing. Levels, loosest first:
    /// `||` < `&&` < comparisons < `++ ::` (right-assoc) < `+ -` < `* / %`.
    fn binary(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        const LEVELS: [&[&str]; 6] = [
            &["||"],
            &["&&"],
            &["==", "/=", "<", "<=", ">", ">="],
            &["++", "::"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        const RIGHT_ASSOC_LEVEL: u8 = 3;
        if min_level as usize >= LEVELS.len() {
            return self.application();
        }
        let mut lhs = self.binary(min_level + 1)?;
        loop {
            let sym = match self.peek() {
                Token::Op(s) if LEVELS[min_level as usize].contains(s) => *s,
                _ => break,
            };
            self.bump();
            // `::` (and `++`, harmlessly) associate to the right:
            // 1 :: 2 :: [] is 1 :: (2 :: []).
            let rhs = if min_level == RIGHT_ASSOC_LEVEL {
                self.binary(min_level)?
            } else {
                self.binary(min_level + 1)?
            };
            let span = lhs.span.to(rhs.span);
            let op = BinOp::from_symbol(sym).expect("lexer produces known operators");
            lhs = Expr::new(ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
            if min_level == RIGHT_ASSOC_LEVEL {
                break;
            }
        }
        Ok(lhs)
    }

    /// Juxtaposition application, plus the primitive forms that consume a
    /// fixed number of operands (`liftN`, `foldp`, `async`, `fst`, `snd`).
    fn application(&mut self) -> Result<Expr, ParseError> {
        let head = self.operand()?;
        let mut expr = head;
        while self.starts_atom() {
            let arg = self.atom()?;
            let span = expr.span.to(arg.span);
            expr = Expr::new(ExprKind::App(Box::new(expr), Box::new(arg)), span);
        }
        Ok(expr)
    }

    /// One operand: either a primitive form with its operands, or an atom.
    fn operand(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Lift(n) => {
                let start = self.bump().span;
                let func = self.atom()?;
                let mut args = Vec::with_capacity(n);
                for k in 0..n {
                    if !self.starts_atom() {
                        return Err(self.error(format!(
                            "lift{n} needs {n} signal argument(s), found only {k}"
                        )));
                    }
                    args.push(self.atom()?);
                }
                let span = start.to(args.last().map(|a| a.span).unwrap_or(func.span));
                Ok(Expr::new(
                    ExprKind::Lift {
                        func: Box::new(func),
                        args,
                    },
                    span,
                ))
            }
            Token::Foldp => {
                let start = self.bump().span;
                let func = self.atom()?;
                let init = self.atom()?;
                let signal = self.atom()?;
                let span = start.to(signal.span);
                Ok(Expr::new(
                    ExprKind::Foldp {
                        func: Box::new(func),
                        init: Box::new(init),
                        signal: Box::new(signal),
                    },
                    span,
                ))
            }
            Token::Async => {
                let start = self.bump().span;
                let inner = self.atom()?;
                let span = start.to(inner.span);
                Ok(Expr::new(ExprKind::Async(Box::new(inner)), span))
            }
            Token::Fst => {
                let start = self.bump().span;
                let inner = self.atom()?;
                let span = start.to(inner.span);
                Ok(Expr::new(ExprKind::Fst(Box::new(inner)), span))
            }
            Token::Snd => {
                let start = self.bump().span;
                let inner = self.atom()?;
                let span = start.to(inner.span);
                Ok(Expr::new(ExprKind::Snd(Box::new(inner)), span))
            }
            Token::Head | Token::Tail | Token::IsEmpty | Token::Length => {
                let t = self.bump();
                let op = match t.token {
                    Token::Head => ListOp::Head,
                    Token::Tail => ListOp::Tail,
                    Token::IsEmpty => ListOp::IsEmpty,
                    Token::Length => ListOp::Length,
                    _ => unreachable!(),
                };
                let inner = self.atom()?;
                let span = t.span.to(inner.span);
                Ok(Expr::new(ExprKind::ListOp(op, Box::new(inner)), span))
            }
            Token::Ith => {
                let start = self.bump().span;
                let index = self.atom()?;
                let list = self.atom()?;
                let span = start.to(list.span);
                Ok(Expr::new(
                    ExprKind::Ith(Box::new(index), Box::new(list)),
                    span,
                ))
            }
            Token::Merge | Token::SampleOn | Token::DropRepeats | Token::KeepIf => {
                let t = self.bump();
                let op = match t.token {
                    Token::Merge => SignalPrimOp::Merge,
                    Token::SampleOn => SignalPrimOp::SampleOn,
                    Token::DropRepeats => SignalPrimOp::DropRepeats,
                    Token::KeepIf => SignalPrimOp::KeepIf,
                    _ => unreachable!(),
                };
                let mut args = Vec::with_capacity(op.arity());
                for k in 0..op.arity() {
                    if !self.starts_atom() {
                        return Err(self.error(format!(
                            "{} needs {} operand(s), found only {k}",
                            op.keyword(),
                            op.arity()
                        )));
                    }
                    args.push(self.atom()?);
                }
                let span = t.span.to(args.last().map(|a| a.span).unwrap_or(t.span));
                Ok(Expr::new(ExprKind::SignalPrim { op, args }, span))
            }
            _ => self.atom(),
        }
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::Ident(_)
                | Token::QualIdent(_)
                | Token::LParen
                | Token::LBracket
                | Token::LBrace
                | Token::Lift(_)
                | Token::Foldp
                | Token::Async
                | Token::Fst
                | Token::Snd
                | Token::Head
                | Token::Tail
                | Token::IsEmpty
                | Token::Length
                | Token::Ith
                | Token::Merge
                | Token::SampleOn
                | Token::DropRepeats
                | Token::KeepIf
        )
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let base = self.atom_base()?;
        self.postfix(base)
    }

    /// `.field` postfix chains: `r.pos.x`.
    fn postfix(&mut self, mut e: Expr) -> Result<Expr, ParseError> {
        while self.at(&Token::Dot) {
            self.bump();
            let (field, span) = self.ident()?;
            let full = e.span.to(span);
            e = Expr::new(ExprKind::Field(Box::new(e), field), full);
        }
        Ok(e)
    }

    fn atom_base(&mut self) -> Result<Expr, ParseError> {
        let t = self.bump();
        let span = t.span;
        match t.token {
            Token::Int(n) => Ok(Expr::new(ExprKind::Int(n), span)),
            Token::Float(x) => Ok(Expr::new(ExprKind::Float(x), span)),
            Token::Str(s) => Ok(Expr::new(ExprKind::Str(s), span)),
            Token::Ident(name) => Ok(Expr::new(ExprKind::Var(name), span)),
            Token::QualIdent(name) => {
                if name.contains('.') {
                    Ok(Expr::new(ExprKind::Input(name), span))
                } else {
                    // A bare capitalized name is a constructor reference,
                    // resolved against the program's `data` declarations.
                    Ok(Expr::new(ExprKind::Ctor(name), span))
                }
            }
            Token::LParen => {
                if self.at(&Token::RParen) {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::Unit, span.to(end)));
                }
                let first = self.expr()?;
                if self.at(&Token::Comma) {
                    self.bump();
                    let second = self.expr()?;
                    let end = self.expect(&Token::RParen)?.span;
                    Ok(Expr::new(
                        ExprKind::Pair(Box::new(first), Box::new(second)),
                        span.to(end),
                    ))
                } else {
                    self.expect(&Token::RParen)?;
                    Ok(first)
                }
            }
            Token::LBrace => {
                let mut fields = Vec::new();
                if self.at(&Token::RBrace) {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::Record(fields), span.to(end)));
                }
                loop {
                    let (name, _) = self.ident()?;
                    self.expect(&Token::Equals)?;
                    let value = self.expr()?;
                    fields.push((name, value));
                    if self.at(&Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let end = self.expect(&Token::RBrace)?.span;
                Ok(Expr::new(ExprKind::Record(fields), span.to(end)))
            }
            Token::LBracket => {
                let mut items = Vec::new();
                if self.at(&Token::RBracket) {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::List(items), span.to(end)));
                }
                loop {
                    items.push(self.expr()?);
                    if self.at(&Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let end = self.expect(&Token::RBracket)?.span;
                Ok(Expr::new(ExprKind::List(items), span.to(end)))
            }
            Token::Lift(_)
            | Token::Foldp
            | Token::Async
            | Token::Fst
            | Token::Snd
            | Token::Head
            | Token::Tail
            | Token::IsEmpty
            | Token::Length
            | Token::Ith
            | Token::Merge
            | Token::SampleOn
            | Token::DropRepeats
            | Token::KeepIf => {
                // Primitive forms are operands, handled one level up; they
                // reach here only in argument position without parentheses.
                Err(ParseError {
                    message: format!(
                        "`{}` with its operands must be parenthesized in argument position",
                        t.token
                    ),
                    span,
                })
            }
            other => Err(ParseError {
                message: format!("expected an expression, found `{other}`"),
                span,
            }),
        }
    }

    // ---- types -------------------------------------------------------------

    fn ty(&mut self) -> Result<Type, ParseError> {
        let lhs = self.ty_atom()?;
        if self.at(&Token::Arrow) {
            self.bump();
            let rhs = self.ty()?;
            Ok(Type::fun(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn ty_atom(&mut self) -> Result<Type, ParseError> {
        let t = self.bump();
        match t.token {
            Token::QualIdent(name) => match name.as_str() {
                "Int" => Ok(Type::Int),
                "Float" => Ok(Type::Float),
                "String" => Ok(Type::Str),
                "Signal" => {
                    let inner = self.ty_atom()?;
                    Ok(Type::signal(inner))
                }
                other if !other.contains('.') => Ok(Type::Named(other.to_string())),
                other => Err(ParseError {
                    message: format!("unknown type name `{other}`"),
                    span: t.span,
                }),
            },
            Token::LParen => {
                if self.at(&Token::RParen) {
                    self.bump();
                    return Ok(Type::Unit);
                }
                let first = self.ty()?;
                if self.at(&Token::Comma) {
                    self.bump();
                    let second = self.ty()?;
                    self.expect(&Token::RParen)?;
                    Ok(Type::pair(first, second))
                } else {
                    self.expect(&Token::RParen)?;
                    Ok(first)
                }
            }
            Token::LBracket => {
                let inner = self.ty()?;
                self.expect(&Token::RBracket)?;
                Ok(Type::list(inner))
            }
            Token::LBrace => {
                let mut fields = Vec::new();
                if !self.at(&Token::RBrace) {
                    loop {
                        let (name, _) = self.ident()?;
                        self.expect(&Token::Colon)?;
                        let ty = self.ty()?;
                        fields.push((name, ty));
                        if self.at(&Token::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace)?;
                Ok(Type::record(fields))
            }
            other => Err(ParseError {
                message: format!("expected a type, found `{other}`"),
                span: t.span,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ExprKind as K;

    fn pe(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn parses_fig7_expression() {
        let e = pe("lift2 (\\y z -> y / z) Mouse.x Window.width");
        let K::Lift { func, args } = &e.kind else {
            panic!("expected lift: {e:?}")
        };
        assert!(matches!(func.kind, K::Lam { .. }));
        assert_eq!(args.len(), 2);
        assert!(matches!(&args[0].kind, K::Input(n) if n == "Mouse.x"));
        assert!(matches!(&args[1].kind, K::Input(n) if n == "Window.width"));
    }

    #[test]
    fn application_is_left_associative_and_binds_tighter_than_ops() {
        let e = pe("f x + g y");
        let K::BinOp(BinOp::Add, l, r) = &e.kind else {
            panic!("expected +: {e:?}")
        };
        assert!(matches!(l.kind, K::App(..)));
        assert!(matches!(r.kind, K::App(..)));

        let e = pe("f x y");
        let K::App(fx, _y) = &e.kind else { panic!() };
        assert!(matches!(fx.kind, K::App(..)));
    }

    #[test]
    fn operator_precedence_levels() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = pe("1 + 2 * 3");
        let K::BinOp(BinOp::Add, _, r) = &e.kind else {
            panic!()
        };
        assert!(matches!(r.kind, K::BinOp(BinOp::Mul, ..)));
        // a == b && c parses as (a == b) && c
        let e = pe("a == b && c");
        let K::BinOp(BinOp::And, l, _) = &e.kind else {
            panic!()
        };
        assert!(matches!(l.kind, K::BinOp(BinOp::Eq, ..)));
    }

    #[test]
    fn lambda_sugar_and_annotations() {
        let e = pe("\\x y -> x + y");
        let K::Lam { param, body, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(param, "x");
        assert!(matches!(body.kind, K::Lam { .. }));

        let e = pe("\\(x : Int) -> x");
        let K::Lam { ann, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(ann, &Some(Type::Int));
    }

    #[test]
    fn let_with_params_and_if() {
        let e = pe("let add a b = a + b in if add 1 2 then 1 else 0");
        let K::Let { name, value, body } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "add");
        assert!(matches!(value.kind, K::Lam { .. }));
        assert!(matches!(body.kind, K::If(..)));
    }

    #[test]
    fn foldp_and_async_forms() {
        let e = pe("foldp (\\k c -> c + 1) 0 Keyboard.lastPressed");
        assert!(matches!(e.kind, K::Foldp { .. }));
        let e = pe("async (lift f Mouse.y)");
        let K::Async(inner) = &e.kind else { panic!() };
        assert!(matches!(inner.kind, K::Lift { .. }));
    }

    #[test]
    fn pairs_units_and_projections() {
        assert!(matches!(pe("()").kind, K::Unit));
        assert!(matches!(pe("(1, 2)").kind, K::Pair(..)));
        assert!(matches!(pe("fst (1, 2)").kind, K::Fst(..)));
        assert!(matches!(pe("snd (1, 2)").kind, K::Snd(..)));
    }

    #[test]
    fn lift_requires_exact_arity() {
        let err = parse_expr("lift2 f Mouse.x").unwrap_err();
        assert!(err.message.contains("lift2 needs 2"));
    }

    #[test]
    fn unparenthesized_primitive_in_argument_position_errors() {
        let err = parse_expr("f async s").unwrap_err();
        assert!(err.message.contains("parenthesized"));
    }

    #[test]
    fn program_parsing_and_desugaring() {
        let src = "\
double x = x + x
count s = foldp (\\x c -> c + 1) 0 s
main = lift double Mouse.x";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.defs.len(), 3);
        assert_eq!(prog.defs[0].name, "double");
        let expr = prog.to_expr().unwrap();
        // main body wrapped in lets for double and count.
        let K::Let { name, body, .. } = &expr.kind else {
            panic!()
        };
        assert_eq!(name, "double");
        let K::Let { name, .. } = &body.kind else {
            panic!()
        };
        assert_eq!(name, "count");
    }

    #[test]
    fn program_without_main_is_rejected_at_desugar() {
        let prog = parse_program("x = 1").unwrap();
        assert!(prog.to_expr().is_err());
    }

    #[test]
    fn multiline_definitions_with_continuations() {
        let src = "\
scene input pos =
  (input, pos)
main =
  lift2 (\\a b -> (a, b)) Mouse.x Mouse.y";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.defs.len(), 2);
    }

    #[test]
    fn type_annotations_parse_signal_types() {
        let e = pe("\\(f : Int -> Int) -> f");
        let K::Lam { ann, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(ann, &Some(Type::fun(Type::Int, Type::Int)));

        let e = pe("\\(s : Signal (Int, Int)) -> s");
        let K::Lam { ann, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(ann, &Some(Type::signal(Type::pair(Type::Int, Type::Int))));
    }
}
