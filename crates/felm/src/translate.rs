//! Stage two: translating signal terms to signal graphs.
//!
//! The paper defines signal evaluation by translating signal terms to
//! Concurrent ML (Fig. 10): each node becomes a thread, each edge a
//! channel, `let` a multicast station, `async` a fresh event source. Our
//! Rust analogue of "CML" is the `elm-runtime` crate, so the translation
//! here maps a validated [`SignalTerm`] onto a
//! [`elm_runtime::SignalGraph`]; the runtime's schedulers then provide the
//! threads/channels/dispatcher of Figs. 9–11.
//!
//! Functions embedded in `lift`/`foldp` nodes are FElm values; at event
//! time the node applies them with the stage-one evaluator (β-reduction by
//! [`crate::eval::normalize`]) — the moral equivalent of the paper's
//! `⟦f⟧V` application inside each node's CML loop.

use std::collections::HashMap;
use std::fmt;

use elm_runtime::{GraphBuilder, NodeId, SignalGraph, Value};

use crate::ast::{Expr, ExprKind};
use crate::env::InputEnv;
use crate::eval::{normalize, DEFAULT_FUEL};
use crate::intermediate::{FinalTerm, SignalTerm};

/// Errors raised while building the graph.
#[derive(Clone, Debug, PartialEq)]
pub enum TranslateError {
    /// The term references an input absent from the [`InputEnv`].
    UnknownInput(String),
    /// A signal variable is unbound (cannot happen for validated terms
    /// produced from closed programs).
    UnboundVar(String),
    /// The finished graph failed validation.
    Graph(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownInput(i) => write!(f, "unknown input signal `{i}`"),
            TranslateError::UnboundVar(x) => write!(f, "unbound signal variable `{x}`"),
            TranslateError::Graph(msg) => write!(f, "graph construction failed: {msg}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Converts a runtime value to a literal FElm expression, for feeding
/// runtime values into embedded FElm functions.
///
/// Returns `None` for values outside FElm's data universe (lists, records,
/// opaque host values).
pub fn value_to_expr(v: &Value) -> Option<Expr> {
    Some(Expr::synth(match v {
        Value::Unit => ExprKind::Unit,
        Value::Int(n) => ExprKind::Int(*n),
        Value::Float(x) => ExprKind::Float(*x),
        Value::Bool(b) => ExprKind::Int(*b as i64),
        Value::Str(s) => ExprKind::Str(s.to_string()),
        Value::Pair(p) => ExprKind::Pair(
            Box::new(value_to_expr(&p.0)?),
            Box::new(value_to_expr(&p.1)?),
        ),
        Value::List(items) => ExprKind::List(
            items
                .iter()
                .map(value_to_expr)
                .collect::<Option<Vec<_>>>()?,
        ),
        Value::Record(fields) => ExprKind::Record(
            fields
                .iter()
                .map(|(k, v)| Some((k.clone(), value_to_expr(v)?)))
                .collect::<Option<Vec<_>>>()?,
        ),
        Value::Tagged(tag, args) => ExprKind::CtorApp(
            tag.to_string(),
            args.iter().map(value_to_expr).collect::<Option<Vec<_>>>()?,
        ),
        _ => return None,
    }))
}

/// Converts an FElm value expression back to a runtime value.
///
/// Returns `None` for non-data values (functions).
pub fn expr_to_value(e: &Expr) -> Option<Value> {
    Some(match &e.kind {
        ExprKind::Unit => Value::Unit,
        ExprKind::Int(n) => Value::Int(*n),
        ExprKind::Float(x) => Value::Float(*x),
        ExprKind::Str(s) => Value::str(s),
        ExprKind::Pair(a, b) => Value::pair(expr_to_value(a)?, expr_to_value(b)?),
        ExprKind::List(items) => Value::list(
            items
                .iter()
                .map(expr_to_value)
                .collect::<Option<Vec<_>>>()?,
        ),
        ExprKind::Record(fields) => Value::record(
            fields
                .iter()
                .map(|(k, v)| Some((k.clone(), expr_to_value(v)?)))
                .collect::<Option<Vec<_>>>()?,
        ),
        ExprKind::CtorApp(tag, args) => Value::tagged(
            tag,
            args.iter().map(expr_to_value).collect::<Option<Vec<_>>>()?,
        ),
        _ => return None,
    })
}

/// Applies an FElm function value to runtime values.
///
/// Uses the environment-based big-step interpreter
/// ([`crate::eval_big`]) — this runs on every event at every node, so it
/// must be fast; agreement with the Fig. 6 small-step machine is
/// property-tested, and [`apply_function_small_step`] keeps the
/// specification path available (the `interpreter` bench compares them).
///
/// When the hosting scheduler has activated a per-event resource
/// governor ([`elm_runtime::governor`]), the application runs metered
/// against the event's remaining fuel/allocation pools and deadline; a
/// budget trap is recorded on the governor (the scheduler rolls the
/// event back) and a `Unit` sentinel is returned instead of panicking.
/// Ungoverned applications evaluate unmetered, exactly as before.
///
/// # Panics
///
/// Panics if application gets stuck or produces a non-data value — both
/// impossible for nodes built from well-typed programs; a panic here
/// indicates translation of an unchecked term.
pub fn apply_function(func: &Expr, args: &[Value]) -> Value {
    use crate::budget::{Budget, Meter, Trap};
    use crate::eval::EvalError;
    use elm_runtime::governor;

    let Some(view) = governor::active() else {
        // Ungoverned fast path: no accounting at all.
        let mut cur = crate::eval_big::eval(&crate::eval_big::Env::empty(), func)
            .unwrap_or_else(|err| panic!("embedded FElm function got stuck: {err}"));
        for a in args {
            let arg = crate::eval_big::from_runtime_value(a)
                .unwrap_or_else(|| panic!("runtime value {a:?} is outside FElm's data universe"));
            cur = crate::eval_big::apply(cur, arg)
                .unwrap_or_else(|err| panic!("embedded FElm function got stuck: {err}"));
        }
        return crate::eval_big::to_runtime_value(&cur)
            .unwrap_or_else(|| panic!("embedded FElm function returned a non-data value"));
    };

    // Governed path: evaluate against the event's *remaining* pools so a
    // budget bounds the total work of the event, not of each node.
    let mut meter = Meter::new(Budget {
        fuel: view.fuel_left,
        max_alloc_cells: view.alloc_left,
        max_depth: view.max_depth,
    })
    .with_deadline(view.deadline);
    let result = (|| {
        let mut cur =
            crate::eval_big::eval_metered(&crate::eval_big::Env::empty(), func, &mut meter)?;
        for a in args {
            let arg = crate::eval_big::from_runtime_value(a)
                .unwrap_or_else(|| panic!("runtime value {a:?} is outside FElm's data universe"));
            cur = crate::eval_big::apply_metered(cur, arg, &mut meter)?;
        }
        Ok(cur)
    })();
    governor::consume(meter.fuel_used(), meter.alloc_cells());
    match result {
        Ok(cur) => crate::eval_big::to_runtime_value(&cur)
            .unwrap_or_else(|| panic!("embedded FElm function returned a non-data value")),
        Err(EvalError::Trap(t)) => {
            governor::record_trap(match t {
                Trap::OutOfFuel => governor::TrapKind::OutOfFuel,
                Trap::OutOfMemory => governor::TrapKind::OutOfMemory,
                Trap::DepthExceeded => governor::TrapKind::DepthExceeded,
                Trap::DeadlineExceeded => governor::TrapKind::DeadlineExceeded,
            });
            // Sentinel; the scheduler sees the recorded trap and rolls
            // the whole event back, so this value is never observed.
            Value::Unit
        }
        Err(err) => panic!("embedded FElm function got stuck: {err}"),
    }
}

/// [`apply_function`] by literal Fig. 6 β-reduction — the specification
/// path, kept for differential testing and the interpreter benchmark.
///
/// # Panics
///
/// Same conditions as [`apply_function`].
pub fn apply_function_small_step(func: &Expr, args: &[Value]) -> Value {
    let mut e = func.clone();
    for a in args {
        let lit = value_to_expr(a)
            .unwrap_or_else(|| panic!("runtime value {a:?} is outside FElm's data universe"));
        e = Expr::synth(ExprKind::App(Box::new(e), Box::new(lit)));
    }
    let normal = normalize(&e, DEFAULT_FUEL)
        .unwrap_or_else(|err| panic!("embedded FElm function got stuck: {err}"));
    expr_to_value(&normal)
        .unwrap_or_else(|| panic!("embedded FElm function returned a non-data value"))
}

/// Translates a validated signal term to a runnable signal graph.
///
/// Input occurrences are deduplicated by name, so a program mentioning
/// `Mouse.x` twice shares one source node — matching the signal-graph
/// drawings of Figs. 7–8 and the multicast semantics of the CML
/// translation.
///
/// # Errors
///
/// Fails on inputs missing from `env` or (for hand-built terms) unbound
/// signal variables.
pub fn translate(term: &SignalTerm, env: &InputEnv) -> Result<SignalGraph, TranslateError> {
    let mut tr = Translator {
        env,
        builder: GraphBuilder::new(),
        scope: HashMap::new(),
        inputs: HashMap::new(),
    };
    let out = tr.walk(term)?;
    tr.builder
        .finish(out)
        .map_err(|e| TranslateError::Graph(e.to_string()))
}

struct Translator<'a> {
    env: &'a InputEnv,
    builder: GraphBuilder,
    scope: HashMap<String, Vec<NodeId>>,
    inputs: HashMap<String, NodeId>,
}

impl Translator<'_> {
    fn walk(&mut self, term: &SignalTerm) -> Result<NodeId, TranslateError> {
        match term {
            SignalTerm::Var(x) => self
                .scope
                .get(x)
                .and_then(|s| s.last())
                .copied()
                .ok_or_else(|| TranslateError::UnboundVar(x.clone())),
            SignalTerm::Input(i) => {
                if let Some(id) = self.inputs.get(i) {
                    return Ok(*id);
                }
                let decl = self
                    .env
                    .get(i)
                    .ok_or_else(|| TranslateError::UnknownInput(i.clone()))?;
                let id = self.builder.input(i.clone(), decl.default.clone());
                self.inputs.insert(i.clone(), id);
                Ok(id)
            }
            SignalTerm::Let { name, value, body } => {
                let shared = self.walk(value)?;
                self.scope.entry(name.clone()).or_default().push(shared);
                let out = match &**body {
                    FinalTerm::Signal(s) => self.walk(s),
                    FinalTerm::Value(v) => {
                        // `let x = s in v`: a constant display over a live
                        // signal — output v regardless of events.
                        let constant = expr_to_value(v).unwrap_or(Value::Unit);
                        Ok(self
                            .builder
                            .lift1("const", move |_| constant.clone(), shared))
                    }
                };
                if let Some(stack) = self.scope.get_mut(name) {
                    stack.pop();
                }
                out
            }
            SignalTerm::Lift { func, args } => {
                let parents = args
                    .iter()
                    .map(|a| self.walk(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let f = func.clone();
                let label = format!("lift{}", parents.len());
                Ok(self
                    .builder
                    .lift_n(label, move |vs| apply_function(&f, vs), parents))
            }
            SignalTerm::Foldp { func, init, signal } => {
                let parent = self.walk(signal)?;
                let f = func.clone();
                let init_value = expr_to_value(init)
                    .unwrap_or_else(|| panic!("foldp base value is outside FElm's data universe"));
                Ok(self.builder.foldp(
                    "foldp",
                    move |new, acc| apply_function(&f, &[new.clone(), acc.clone()]),
                    init_value,
                    parent,
                ))
            }
            SignalTerm::Async(inner) => {
                let parent = self.walk(inner)?;
                Ok(self.builder.async_source(parent))
            }
            SignalTerm::Prim {
                op,
                values,
                signals,
            } => {
                use crate::ast::SignalPrimOp;
                let parents = signals
                    .iter()
                    .map(|s| self.walk(s))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(match op {
                    SignalPrimOp::Merge => self.builder.merge(parents[0], parents[1]),
                    SignalPrimOp::SampleOn => self.builder.sample_on(parents[0], parents[1]),
                    SignalPrimOp::DropRepeats => self.builder.drop_repeats(parents[0]),
                    SignalPrimOp::KeepIf => {
                        let pred = values[0].clone();
                        let base = expr_to_value(&values[1]).unwrap_or_else(|| {
                            panic!("keepIf base value is outside FElm's data universe")
                        });
                        self.builder.keep_if(
                            move |v| apply_function(&pred, std::slice::from_ref(v)).is_truthy(),
                            base,
                            parents[0],
                        )
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_runtime::{changed_values, Occurrence, SyncRuntime};

    use crate::eval::DEFAULT_FUEL;
    use crate::parser::parse_expr;

    fn graph_of(src: &str) -> SignalGraph {
        let env = InputEnv::standard();
        let e = parse_expr(src).unwrap();
        let n = normalize(&e, DEFAULT_FUEL).unwrap();
        let FinalTerm::Signal(s) = FinalTerm::from_expr(&n).unwrap() else {
            panic!("not a signal program")
        };
        translate(&s, &env).unwrap()
    }

    #[test]
    fn fig7_graph_runs() {
        let g = graph_of("lift2 (\\y z -> (100 * y) / z) Mouse.x Window.width");
        let mx = g.input_named("Mouse.x").unwrap();
        let ww = g.input_named("Window.width").unwrap();
        let outs = SyncRuntime::run_trace(
            &g,
            [
                Occurrence::input(mx, 512i64),
                Occurrence::input(ww, 2048i64),
            ],
        )
        .unwrap();
        assert_eq!(changed_values(&outs), vec![Value::Int(50), Value::Int(25)]);
    }

    #[test]
    fn foldp_counter_runs() {
        let g = graph_of("foldp (\\k c -> c + 1) 0 Keyboard.lastPressed");
        let keys = g.input_named("Keyboard.lastPressed").unwrap();
        let outs =
            SyncRuntime::run_trace(&g, (0..4).map(|k| Occurrence::input(keys, 65 + k as i64)))
                .unwrap();
        assert_eq!(changed_values(&outs).last(), Some(&Value::Int(4)));
    }

    #[test]
    fn shared_inputs_are_deduplicated() {
        let g = graph_of("lift2 (\\a b -> a + b) Mouse.x Mouse.x");
        assert_eq!(g.sources().len(), 1);
        let mx = g.input_named("Mouse.x").unwrap();
        let outs = SyncRuntime::run_trace(&g, [Occurrence::input(mx, 21i64)]).unwrap();
        assert_eq!(changed_values(&outs), vec![Value::Int(42)]);
    }

    #[test]
    fn let_multicast_shares_nodes() {
        let g = graph_of("let s = lift (\\x -> x * 2) Mouse.x in lift2 (\\a b -> a + b) s s");
        // Mouse.x, the shared lift, and the combining lift: 3 nodes.
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn async_programs_split_and_run() {
        let g = graph_of(
            "lift2 (\\a b -> (a, b)) Mouse.x (async (lift (\\w -> w ++ \"!\") Words.input))",
        );
        assert_eq!(g.async_sources().len(), 1);
        let mx = g.input_named("Mouse.x").unwrap();
        let words = g.input_named("Words.input").unwrap();
        let outs = SyncRuntime::run_trace(
            &g,
            [Occurrence::input(words, "hey"), Occurrence::input(mx, 3i64)],
        )
        .unwrap();
        let finals = changed_values(&outs);
        let last = finals.last().unwrap().as_pair().unwrap();
        assert_eq!(last.0, &Value::Int(3));
        assert_eq!(last.1, &Value::str("hey!"));
    }

    #[test]
    fn pairs_and_strings_cross_the_boundary() {
        let g = graph_of("lift (\\p -> fst p + snd p) Mouse.position");
        let mp = g.input_named("Mouse.position").unwrap();
        let outs = SyncRuntime::run_trace(
            &g,
            [Occurrence::input(
                mp,
                Value::pair(Value::Int(3), Value::Int(4)),
            )],
        )
        .unwrap();
        assert_eq!(changed_values(&outs), vec![Value::Int(7)]);
    }

    #[test]
    fn unknown_inputs_error() {
        let env = InputEnv::standard();
        let term = SignalTerm::Input("Nope.nothing".into());
        assert_eq!(
            translate(&term, &env).err(),
            Some(TranslateError::UnknownInput("Nope.nothing".into()))
        );
        let term = SignalTerm::Var("ghost".into());
        assert_eq!(
            translate(&term, &env).err(),
            Some(TranslateError::UnboundVar("ghost".into()))
        );
    }

    #[test]
    fn value_expr_round_trip() {
        for v in [
            Value::Unit,
            Value::Int(-3),
            Value::Float(2.5),
            Value::str("hi"),
            Value::pair(Value::Int(1), Value::str("x")),
        ] {
            let e = value_to_expr(&v).unwrap();
            assert_eq!(expr_to_value(&e), Some(v));
        }
        let lst = Value::list([Value::Int(1), Value::str("a")]);
        let e = value_to_expr(&lst).unwrap();
        assert_eq!(expr_to_value(&e), Some(lst));
        assert!(value_to_expr(&Value::ext(0u8)).is_none());
        assert_eq!(
            value_to_expr(&Value::Bool(true)).unwrap().kind,
            ExprKind::Int(1)
        );
    }
}
