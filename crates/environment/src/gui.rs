//! The headless GUI harness: program + inputs + screen.
//!
//! Couples a reactive program whose output is a graphical
//! [`Element`] with recorded input traces and the renderers — the
//! substitute for a browser window (DESIGN.md S6). `main`'s successive
//! values are the *frames*; the latest frame is the *screen*, available as
//! ASCII (terminal), HTML (what the compiler would ship), or a display
//! list (assertions).

use elm_graphics::render::{ascii, html};
use elm_graphics::{layout, DisplayList, Element};
use elm_runtime::{RunError, Trace};
use elm_signals::{Engine, InputHandle, Opaque, Program, Running, Signal, SignalNetwork};

/// A running GUI program with frame capture.
pub struct Gui {
    running: Running<Opaque<Element>>,
    frames: Vec<Element>,
}

impl Gui {
    /// Starts `program` on the chosen engine. The initial frame is the
    /// program's default output — what the screen shows before any event.
    pub fn start(program: &Program<Opaque<Element>>, engine: Engine) -> Gui {
        let running = program.start(engine);
        let first = running.current().0.clone();
        Gui {
            running,
            frames: vec![first],
        }
    }

    /// Feeds a recorded trace and processes it to quiescence, returning
    /// how many new frames were produced.
    ///
    /// # Errors
    ///
    /// Fails if the trace references inputs the program does not declare.
    pub fn play(&mut self, trace: &Trace) -> Result<usize, RunError> {
        self.running.send_trace(trace)?;
        let new = self.running.drain_changes()?;
        let count = new.len();
        self.frames.extend(new.into_iter().map(|o| o.0));
        Ok(count)
    }

    /// Sends one typed event and processes it.
    ///
    /// # Errors
    ///
    /// Fails if the handle does not belong to this program.
    pub fn send<T: elm_signals::SignalValue>(
        &mut self,
        input: &InputHandle<T>,
        value: T,
    ) -> Result<usize, RunError> {
        self.running.send(input, value)?;
        let new = self.running.drain_changes()?;
        let count = new.len();
        self.frames.extend(new.into_iter().map(|o| o.0));
        Ok(count)
    }

    /// All frames so far (index 0 is the initial screen).
    pub fn frames(&self) -> &[Element] {
        &self.frames
    }

    /// The current screen contents.
    pub fn screen(&self) -> &Element {
        self.frames.last().expect("at least the initial frame")
    }

    /// The current screen laid out into primitives.
    pub fn screen_layout(&self) -> DisplayList {
        layout(self.screen())
    }

    /// The current screen as an ASCII raster.
    pub fn screen_ascii(&self) -> String {
        ascii::to_ascii(&self.screen_layout())
    }

    /// The current screen as an HTML page.
    pub fn screen_html(&self, title: &str) -> String {
        html::to_html_page(title, self.screen())
    }

    /// Execution counters of the underlying runtime.
    pub fn stats(&self) -> elm_runtime::StatsSnapshot {
        self.running.stats()
    }

    /// Stops the program.
    pub fn stop(self) {
        self.running.stop();
    }
}

/// Builds a text-input widget — the paper's
/// `Input.text : String -> (Signal Element, Signal String)` (§2 Ex. 3,
/// §4.2): a signal of field elements and a signal of the current text.
/// Events arrive on the `Input.text` input signal (fed by
/// [`crate::Simulator::type_text`]).
pub fn text_input(
    net: &mut SignalNetwork,
    placeholder: &str,
) -> (Signal<Opaque<Element>>, Signal<String>, InputHandle<String>) {
    let (text, handle) = net.input::<String>(crate::simulator::inputs::INPUT_TEXT, String::new());
    let placeholder = placeholder.to_string();
    let field = text.map(move |t| Opaque(render_text_field(&placeholder, &t)));
    (field, text, handle)
}

/// Renders a text field: the typed contents, or the greyed-out
/// placeholder when empty, in a fixed-size bordered box.
pub fn render_text_field(placeholder: &str, contents: &str) -> Element {
    use elm_graphics::{palette, Position, Text};
    let inner = if contents.is_empty() {
        Element::text(Text::plain(placeholder).color(palette::GRAY))
    } else {
        Element::text(Text::plain(contents))
    };
    Element::container(200, 30, Position::MID_LEFT, inner).with_background(palette::WHITE)
}

/// Builds a button — §4.2's `Input.button`-style component: a constant
/// element plus a unit signal firing on each press. Events arrive on an
/// input named `Input.button:<label>`.
pub fn button(
    net: &mut SignalNetwork,
    label: &str,
) -> (Signal<Opaque<Element>>, Signal<()>, InputHandle<()>) {
    use elm_graphics::{palette, Position, Text};
    let (presses, handle) = net.input::<()>(format!("Input.button:{label}"), ());
    let face = Element::container(
        12 + 9 * label.chars().count() as u32,
        28,
        Position::MIDDLE,
        Element::text(Text::plain(label)),
    )
    .with_background(palette::GRAY);
    let element = presses.map(move |()| Opaque(face.clone()));
    (element, presses, handle)
}

/// Builds a checkbox — §4.2's `Input.checkbox`: an element reflecting the
/// checked state plus a boolean signal. Events arrive on
/// `Input.checkbox:<label>`.
pub fn checkbox(
    net: &mut SignalNetwork,
    label: &str,
) -> (Signal<Opaque<Element>>, Signal<bool>, InputHandle<bool>) {
    let (checked, handle) = net.input::<bool>(format!("Input.checkbox:{label}"), false);
    let label = label.to_string();
    let element = checked.map(move |on| {
        let mark = if on { "[x]" } else { "[ ]" };
        Opaque(Element::plain_text(format!("{mark} {label}")))
    });
    (element, checked, handle)
}

/// Builds a slider — a bounded float input with a bar rendering. Events
/// arrive on `Input.slider:<label>` carrying values clamped to `[lo, hi]`.
pub fn slider(
    net: &mut SignalNetwork,
    label: &str,
    lo: f64,
    hi: f64,
    initial: f64,
) -> (Signal<Opaque<Element>>, Signal<f64>, InputHandle<f64>) {
    use elm_graphics::{palette, Direction};
    assert!(lo < hi, "slider range must be nonempty");
    let (raw, handle) = net.input::<f64>(format!("Input.slider:{label}"), initial);
    let value = raw.map(move |v| v.clamp(lo, hi));
    let label = label.to_string();
    let element = value.map(move |v| {
        let frac = (v - lo) / (hi - lo);
        let filled = (frac * 20.0).round() as u32;
        Opaque(elm_graphics::flow(
            Direction::Right,
            vec![
                Element::plain_text(format!("{label} {v:.2} ")),
                Element::spacer(4 * filled.max(1), 12).with_background(palette::BLUE),
                Element::spacer(4 * (20 - filled.min(20)), 12).with_background(palette::GRAY),
            ],
        ))
    });
    (element, value, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use elm_signals::lift2;

    fn mouse_tracker() -> (Program<Opaque<Element>>, ()) {
        let mut net = SignalNetwork::new();
        let (mouse, _h) = net.input::<(i64, i64)>("Mouse.position", (0, 0));
        let main = mouse.map(|p| Opaque(Element::as_text(format!("{p:?}"))));
        (net.program(&main).unwrap(), ())
    }

    #[test]
    fn frames_accumulate_as_events_arrive() {
        let (prog, ()) = mouse_tracker();
        let mut gui = Gui::start(&prog, Engine::Synchronous);
        assert_eq!(gui.frames().len(), 1); // initial screen

        let mut sim = Simulator::new();
        sim.mouse_move(3, 4).advance(16).mouse_move(5, 6);
        // The program only declares Mouse.position; restrict the trace.
        let trace = Trace {
            events: sim
                .into_trace()
                .events
                .into_iter()
                .filter(|e| e.input == "Mouse.position")
                .collect(),
        };
        let new = gui.play(&trace).unwrap();
        assert_eq!(new, 2);
        assert!(gui.screen_ascii().contains("(5, 6)"));
        gui.stop();
    }

    #[test]
    fn text_input_pairs_field_and_contents() {
        let mut net = SignalNetwork::new();
        let (field, tags, h) = text_input(&mut net, "Enter a tag");
        let main = lift2(
            |f: Opaque<Element>, t: String| {
                Opaque(elm_graphics::flow(
                    elm_graphics::Direction::Down,
                    vec![f.0, Element::plain_text(format!("tags: {t}"))],
                ))
            },
            &field,
            &tags,
        );
        let prog = net.program(&main).unwrap();
        let mut gui = Gui::start(&prog, Engine::Synchronous);
        // Placeholder shows initially.
        assert!(gui.screen_ascii().contains("Enter a tag"));
        gui.send(&h, "cat".to_string()).unwrap();
        let screen = gui.screen_ascii();
        assert!(screen.contains("cat"), "{screen}");
        assert!(!screen.contains("Enter a tag"));
        gui.stop();
    }

    #[test]
    fn button_counts_presses() {
        let mut net = SignalNetwork::new();
        let (face, presses, h) = button(&mut net, "Add");
        let count = presses.count();
        let main = lift2(
            |f: Opaque<Element>, c: i64| {
                Opaque(elm_graphics::flow(
                    elm_graphics::Direction::Down,
                    vec![f.0, Element::plain_text(format!("pressed {c} times"))],
                ))
            },
            &face,
            &count,
        );
        let prog = net.program(&main).unwrap();
        let mut gui = Gui::start(&prog, Engine::Synchronous);
        gui.send(&h, ()).unwrap();
        gui.send(&h, ()).unwrap();
        let screen = gui.screen_ascii();
        assert!(screen.contains("pressed 2 times"), "{screen}");
        assert!(screen.contains("Add"), "{screen}");
        gui.stop();
    }

    #[test]
    fn checkbox_reflects_state() {
        let mut net = SignalNetwork::new();
        let (face, checked, h) = checkbox(&mut net, "dark mode");
        let main = lift2(|f: Opaque<Element>, _on: bool| f, &face, &checked);
        let prog = net.program(&main).unwrap();
        let mut gui = Gui::start(&prog, Engine::Synchronous);
        assert!(gui.screen_ascii().contains("[ ] dark mode"));
        gui.send(&h, true).unwrap();
        assert!(gui.screen_ascii().contains("[x] dark mode"));
        gui.stop();
    }

    #[test]
    fn slider_clamps_and_renders() {
        let mut net = SignalNetwork::new();
        let (face, value, h) = slider(&mut net, "volume", 0.0, 1.0, 0.5);
        let main = lift2(
            |f: Opaque<Element>, v: f64| {
                Opaque(elm_graphics::flow(
                    elm_graphics::Direction::Down,
                    vec![f.0, Element::plain_text(format!("v={v}"))],
                ))
            },
            &face,
            &value,
        );
        let prog = net.program(&main).unwrap();
        let mut gui = Gui::start(&prog, Engine::Synchronous);
        gui.send(&h, 2.5).unwrap(); // clamped to 1.0
        assert!(gui.screen_ascii().contains("v=1"), "{}", gui.screen_ascii());
        gui.send(&h, -3.0).unwrap(); // clamped to 0.0
        assert!(gui.screen_ascii().contains("v=0"), "{}", gui.screen_ascii());
        gui.stop();
    }

    #[test]
    fn html_screen_matches_renderer() {
        let (prog, ()) = mouse_tracker();
        let gui = Gui::start(&prog, Engine::Synchronous);
        let page = gui.screen_html("tracker");
        assert!(page.contains("(0, 0)"));
        gui.stop();
    }
}
