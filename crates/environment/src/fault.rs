//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded set of failure probabilities threaded
//! through the simulator (poison-pill events, queue-full bursts) and the
//! server (injected session crashes, shard-worker stalls, journal append
//! failures). Every consumer derives its own RNG stream with
//! [`FaultPlan::rng`], keyed by a stream constant and its own id, so the
//! whole fault schedule is a pure function of the plan's seed and the
//! traffic — reruns with the same seed inject the same faults at the
//! same event positions.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// RNG stream selector: faults injected into generated workloads
/// (poison pills, bursts).
pub const STREAM_WORKLOAD: u64 = 1;
/// RNG stream selector: injected session crashes.
pub const STREAM_CRASH: u64 = 2;
/// RNG stream selector: journal append failures.
pub const STREAM_JOURNAL: u64 = 3;
/// RNG stream selector: shard-worker stalls.
pub const STREAM_STALL: u64 = 4;
/// RNG stream selector: injected runaway/allocator-bomb programs.
pub const STREAM_RUNAWAY: u64 = 5;
/// RNG stream selector: event-flood bursts (overload traffic).
pub const STREAM_FLOOD: u64 = 6;
/// RNG stream selector: whole-process kills (cluster chaos). The `id`
/// is the victim peer's index; the draw schedules *when* in the run the
/// kill lands.
pub const STREAM_KILL: u64 = 7;
/// RNG stream selector: peer-wire network faults (delay, drop,
/// duplicate, reorder, partition scheduling). The `id` is the directed
/// link's identity (`from * peers + to`), so each link draws an
/// independent — but seed-reproducible — fault schedule.
pub const STREAM_NET: u64 = 8;

/// Seeded probabilities for every injectable fault class.
///
/// All-zero probabilities (see [`FaultPlan::disabled`]) make every
/// consumer a no-op, so the plan can be threaded through configs
/// unconditionally.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; all fault RNG streams derive from it.
    pub seed: u64,
    /// Per-workload-step probability of emitting a poison-pill event that
    /// makes a susceptible node panic (a negative `Mouse.x`).
    pub node_panic: f64,
    /// Per-applied-event probability that the session's runtime crashes
    /// (loses all in-memory state) right after applying the event.
    pub crash: f64,
    /// Per-command-burst probability that a shard worker stalls.
    pub stall: f64,
    /// How long a stalled shard worker sleeps, in milliseconds.
    pub stall_ms: u64,
    /// Per-workload-step probability of a same-signal event burst sized
    /// to overflow small ingress queues.
    pub queue_full_burst: f64,
    /// Events per injected burst.
    pub burst_len: usize,
    /// Per-append probability that a journal append fails.
    pub journal_fail: f64,
    /// Per-workload-step probability of an event flood: a burst of
    /// `flood_len` back-to-back events simulating an overloading client.
    pub flood: f64,
    /// Events per injected flood.
    pub flood_len: usize,
    /// Per-event probability that a workload step triggers a runaway
    /// (fuel-exhausting) or allocator-bomb code path in the target
    /// program.
    pub runaway: f64,
}

impl FaultPlan {
    /// No faults; every consumer behaves exactly as without a plan.
    pub fn disabled() -> FaultPlan {
        FaultPlan {
            seed: 0,
            node_panic: 0.0,
            crash: 0.0,
            stall: 0.0,
            stall_ms: 0,
            queue_full_burst: 0.0,
            burst_len: 0,
            journal_fail: 0.0,
            flood: 0.0,
            flood_len: 0,
            runaway: 0.0,
        }
    }

    /// The default chaos mix used by `loadgen --chaos`: frequent node
    /// panics, occasional crashes, stalls, bursts, and journal failures.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            node_panic: 0.005,
            crash: 0.0005,
            stall: 0.01,
            stall_ms: 2,
            queue_full_burst: 0.002,
            burst_len: 48,
            journal_fail: 0.001,
            flood: 0.0,
            flood_len: 0,
            runaway: 0.0,
        }
    }

    /// The overload mix used by `loadgen --overload`: sustained event
    /// floods plus runaway/allocator-bomb triggers, and none of the
    /// crash-recovery chaos (overload runs measure governance, not
    /// recovery).
    pub fn flood(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            flood: 0.05,
            flood_len: 96,
            runaway: 0.02,
            ..FaultPlan::disabled()
        }
    }

    /// True if any fault class has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.node_panic > 0.0
            || self.crash > 0.0
            || self.stall > 0.0
            || self.queue_full_burst > 0.0
            || self.journal_fail > 0.0
            || self.flood > 0.0
            || self.runaway > 0.0
    }

    /// Composes two plans: probabilities, burst sizes, and stall lengths
    /// combine element-wise by maximum, and the seed is taken from `self`
    /// (`other.seed` only breaks the tie when `self` has no active fault
    /// class — so merging a live chaos plan with a flood preset keeps the
    /// chaos schedule reproducible). Merging is what lets `loadgen` apply
    /// chaos *and* flood streams in one run without hand-assembling a
    /// combined plan.
    pub fn merge(&self, other: &FaultPlan) -> FaultPlan {
        FaultPlan {
            seed: if self.is_active() || other.seed == 0 {
                self.seed
            } else {
                other.seed
            },
            node_panic: self.node_panic.max(other.node_panic),
            crash: self.crash.max(other.crash),
            stall: self.stall.max(other.stall),
            stall_ms: self.stall_ms.max(other.stall_ms),
            queue_full_burst: self.queue_full_burst.max(other.queue_full_burst),
            burst_len: self.burst_len.max(other.burst_len),
            journal_fail: self.journal_fail.max(other.journal_fail),
            flood: self.flood.max(other.flood),
            flood_len: self.flood_len.max(other.flood_len),
            runaway: self.runaway.max(other.runaway),
        }
    }

    /// A deterministic RNG for one consumer: `stream` is one of the
    /// `STREAM_*` constants, `id` the consumer's own identity (session
    /// id, shard index, workload seed). Distinct `(seed, stream, id)`
    /// triples give independent streams.
    pub fn rng(&self, stream: u64, id: u64) -> StdRng {
        // splitmix64-style finalizer over the combined key, so adjacent
        // ids do not produce correlated streams.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1)))
            .wrapping_add(0xbf58_476d_1ce4_e5b9u64.wrapping_mul(id.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        StdRng::seed_from_u64(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn disabled_plan_is_inactive() {
        assert!(!FaultPlan::disabled().is_active());
        assert!(FaultPlan::chaos(7).is_active());
    }

    #[test]
    fn rng_streams_are_deterministic_and_independent() {
        let plan = FaultPlan::chaos(42);
        let draw = |stream, id| -> Vec<u64> {
            let mut rng = plan.rng(stream, id);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        assert_eq!(draw(STREAM_CRASH, 3), draw(STREAM_CRASH, 3));
        assert_ne!(draw(STREAM_CRASH, 3), draw(STREAM_CRASH, 4));
        assert_ne!(draw(STREAM_CRASH, 3), draw(STREAM_JOURNAL, 3));
        // Different master seeds shift every stream.
        let other = FaultPlan::chaos(43);
        let mut rng = other.rng(STREAM_CRASH, 3);
        let alt: Vec<u64> = (0..8).map(|_| rng.gen::<u64>()).collect();
        assert_ne!(draw(STREAM_CRASH, 3), alt);
    }

    #[test]
    fn merge_composes_elementwise_and_keeps_the_live_seed() {
        let chaos = FaultPlan::chaos(42);
        let flood = FaultPlan::flood(99);
        let merged = chaos.merge(&flood);

        // Element-wise max: every chaos class survives, flood classes join.
        assert_eq!(merged.node_panic, chaos.node_panic);
        assert_eq!(merged.flood, flood.flood);
        assert_eq!(merged.flood_len, flood.flood_len);
        assert_eq!(merged.runaway, flood.runaway);
        assert!(merged.is_active());

        // Seed determinism pins to the left (active) plan: the merged
        // plan's crash stream is bit-identical to the chaos plan's.
        assert_eq!(merged.seed, 42);
        let draw = |plan: &FaultPlan| -> Vec<u64> {
            let mut rng = plan.rng(STREAM_CRASH, 3);
            (0..8).map(|_| rng.gen::<u64>()).collect()
        };
        assert_eq!(draw(&merged), draw(&chaos));
        // And the flood stream is deterministic across identical merges.
        let again = chaos.merge(&flood);
        let mut a = merged.rng(STREAM_FLOOD, 1);
        let mut b = again.rng(STREAM_FLOOD, 1);
        let fa: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let fb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(fa, fb);

        // Merging onto an inactive plan adopts the active seed.
        assert_eq!(FaultPlan::disabled().merge(&flood).seed, 99);
    }
}
