//! The simulated GUI environment: everything the browser provided in the
//! paper, rebuilt headlessly (DESIGN.md substitution S6).
//!
//! * [`VirtualClock`] — deterministic time for `Time.every` / `Time.fps`;
//! * [`Simulator`] — synthetic mouse/keyboard/window/touch/text-field
//!   drivers recording timestamped, replayable [`elm_runtime::Trace`]s;
//! * [`MockHttp`] — the web service of paper Example 3, with a
//!   configurable blocking latency (the Flickr substitute);
//! * [`Gui`] — a headless "browser window" coupling a reactive program to
//!   frames rendered as ASCII, HTML, or display lists;
//! * [`text_input`] — the paper's `Input.text` widget;
//! * [`FaultPlan`] — seeded fault-injection probabilities for chaos
//!   testing the server's crash recovery.

#![warn(missing_docs)]

pub mod clock;
pub mod fault;
pub mod gui;
pub mod http;
pub mod simulator;

pub use clock::{Millis, VirtualClock};
pub use fault::FaultPlan;
pub use gui::{button, checkbox, render_text_field, slider, text_input, Gui};
pub use http::{sync_get, MockHttp};
pub use simulator::{inputs, Simulator};
