//! A deterministic virtual clock.
//!
//! The browser supplies Elm's `Time.every` and `Time.fps` signals from
//! wall-clock timers; headless reproduction needs determinism, so time is
//! simulated: the clock only advances when told to, and timer signals fire
//! exactly on schedule. (DESIGN.md substitution S6.)

/// Milliseconds of virtual time.
pub type Millis = u64;

/// A manually advanced clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: Millis,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Advances by `ms` and returns the new time.
    pub fn advance(&mut self, ms: Millis) -> Millis {
        self.now += ms;
        self.now
    }

    /// The timestamps a periodic timer with period `period` fires at in
    /// the half-open window `(from, to]` — used to synthesize
    /// `Time.every` events.
    pub fn ticks_between(period: Millis, from: Millis, to: Millis) -> Vec<Millis> {
        assert!(period > 0, "timer period must be positive");
        let first = (from / period + 1) * period;
        (0..)
            .map(|k| first + k * period)
            .take_while(|t| *t <= to)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(16), 16);
        assert_eq!(c.advance(4), 20);
    }

    #[test]
    fn tick_schedule_is_exact() {
        assert_eq!(
            VirtualClock::ticks_between(100, 0, 350),
            vec![100, 200, 300]
        );
        assert_eq!(VirtualClock::ticks_between(100, 100, 300), vec![200, 300]);
        assert_eq!(VirtualClock::ticks_between(100, 0, 99), Vec::<u64>::new());
        // Window boundaries are (from, to].
        assert_eq!(VirtualClock::ticks_between(50, 50, 100), vec![100]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        VirtualClock::ticks_between(0, 0, 100);
    }
}
