//! A mock HTTP service with a configurable latency model.
//!
//! **Substitution** (DESIGN.md S6): paper Example 3 fetches images from a
//! web service such as Flickr, whose only relevant property is that a
//! request "may take significant time". [`MockHttp`] reproduces exactly
//! that: a deterministic request→response function with a configurable
//! blocking latency, so the `async` experiments exercise the identical
//! code path without a network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use elm_signals::Signal;

/// A deterministic image-search service.
///
/// ```
/// use elm_environment::MockHttp;
/// use std::time::Duration;
///
/// let http = MockHttp::image_service(Duration::ZERO);
/// let response = http.fetch(&MockHttp::request_tag("flowers"));
/// assert_eq!(
///     MockHttp::image_url_of(&response).unwrap(),
///     "http://images.example/flowers.jpg"
/// );
/// ```
#[derive(Debug)]
pub struct MockHttp {
    latency: Duration,
    served: AtomicU64,
}

impl MockHttp {
    /// A service answering image-search requests after `latency`.
    pub fn image_service(latency: Duration) -> Arc<MockHttp> {
        Arc::new(MockHttp {
            latency,
            served: AtomicU64::new(0),
        })
    }

    /// Builds the request for a tag — the paper's `requestTag` ("simply
    /// performs string concatenation").
    pub fn request_tag(tag: &str) -> String {
        format!("GET /search?tags={tag}")
    }

    /// Performs a blocking request: sleeps the configured latency, then
    /// returns a JSON response containing the image URL.
    pub fn fetch(&self, request: &str) -> String {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        let tag = request.rsplit("tags=").next().unwrap_or("unknown").trim();
        format!("{{\"url\": \"http://images.example/{tag}.jpg\"}}")
    }

    /// Extracts the image URL from a response (the JSON "parsing" of
    /// paper Example 3).
    pub fn image_url_of(response: &str) -> Option<String> {
        let start = response.find("\"url\": \"")? + 8;
        let rest = &response[start..];
        let end = rest.find('"')?;
        Some(rest[..end].to_string())
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// The configured latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

/// The paper's `syncGet`: issues each request carried by `requests` and
/// yields the corresponding responses, in order. The node *blocks* for the
/// service latency — which is precisely why Example 3 wraps the result in
/// `async`.
///
/// Note that one request is issued at construction time: default values
/// are induced through `lift` from the input signal's default (§3.1), so
/// the response signal needs a default response too.
pub fn sync_get(http: Arc<MockHttp>, requests: &Signal<String>) -> Signal<String> {
    requests.map(move |req| http.fetch(&req))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_signals::{Engine, SignalNetwork};

    #[test]
    fn request_response_round_trip() {
        let http = MockHttp::image_service(Duration::ZERO);
        let resp = http.fetch(&MockHttp::request_tag("cats"));
        assert_eq!(
            MockHttp::image_url_of(&resp).as_deref(),
            Some("http://images.example/cats.jpg")
        );
        assert_eq!(http.requests_served(), 1);
        assert_eq!(MockHttp::image_url_of("garbage"), None);
    }

    #[test]
    fn latency_actually_blocks() {
        let http = MockHttp::image_service(Duration::from_millis(30));
        let t0 = std::time::Instant::now();
        http.fetch("GET /search?tags=x");
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn sync_get_wires_into_a_signal_network() {
        let http = MockHttp::image_service(Duration::ZERO);
        let mut net = SignalNetwork::new();
        let (tags, h) = net.input::<String>("Input.text", String::new());
        let requests = tags.map(|t| MockHttp::request_tag(&t));
        let responses = sync_get(http.clone(), &requests);
        let urls = responses.map(|r| MockHttp::image_url_of(&r).unwrap_or_default());
        let prog = net.program(&urls).unwrap();
        let mut run = prog.start(Engine::Synchronous);
        run.send(&h, "dogs".to_string()).unwrap();
        assert_eq!(
            run.drain_changes().unwrap(),
            vec!["http://images.example/dogs.jpg".to_string()]
        );
        // One request for the induced default value (§3.1) + one event.
        assert_eq!(http.requests_served(), 2);
    }
}
