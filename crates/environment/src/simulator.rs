//! The synthetic input-device simulator.
//!
//! Generates the event streams a browser would deliver — mouse, keyboard,
//! window, touch, text fields, timers — as a timestamped
//! [`Trace`] that can drive any program (and be saved/replayed via serde).
//! This substitutes for the live DOM event loop (DESIGN.md S6): the FRP
//! semantics under test are independent of where events physically
//! originate.

use elm_runtime::{PlainValue, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::{Millis, VirtualClock};
use crate::fault::{self, FaultPlan};

/// Standard input-signal names, matching `felm::env::InputEnv::standard`
/// and the signals of paper Fig. 13.
pub mod inputs {
    /// `Mouse.position : Signal (Int, Int)`.
    pub const MOUSE_POSITION: &str = "Mouse.position";
    /// `Mouse.x : Signal Int`.
    pub const MOUSE_X: &str = "Mouse.x";
    /// `Mouse.y : Signal Int`.
    pub const MOUSE_Y: &str = "Mouse.y";
    /// `Mouse.clicks : Signal ()`.
    pub const MOUSE_CLICKS: &str = "Mouse.clicks";
    /// `Mouse.isDown : Signal Bool` (int-encoded in FElm).
    pub const MOUSE_IS_DOWN: &str = "Mouse.isDown";
    /// `Window.dimensions : Signal (Int, Int)`.
    pub const WINDOW_DIMENSIONS: &str = "Window.dimensions";
    /// `Window.width : Signal Int`.
    pub const WINDOW_WIDTH: &str = "Window.width";
    /// `Window.height : Signal Int`.
    pub const WINDOW_HEIGHT: &str = "Window.height";
    /// `Keyboard.lastPressed : Signal KeyCode`.
    pub const KEY_LAST_PRESSED: &str = "Keyboard.lastPressed";
    /// `Keyboard.arrows : Signal {x : Int, y : Int}` (a record, Fig. 13).
    pub const KEY_ARROWS: &str = "Keyboard.arrows";
    /// `Keyboard.shift : Signal Bool` (int-encoded).
    pub const KEY_SHIFT: &str = "Keyboard.shift";
    /// `Time.millis : Signal Int` — `Time.every`-style timer.
    pub const TIME_MILLIS: &str = "Time.millis";
    /// `Time.fps : Signal Float` — frame deltas.
    pub const TIME_FPS: &str = "Time.fps";
    /// `Touch.taps : Signal (Int, Int)`.
    pub const TOUCH_TAPS: &str = "Touch.taps";
    /// `Touch.touches : Signal [Touch]` — ongoing touches (Fig. 13:
    /// "useful for defining gestures").
    pub const TOUCHES: &str = "Touch.touches";
    /// `Input.text : Signal String` — the text-field contents.
    pub const INPUT_TEXT: &str = "Input.text";
    /// `Words.input : Signal String` — §3.3.2's example word stream.
    pub const WORDS: &str = "Words.input";
}

/// Builds input traces by simulating a user session on a virtual clock.
///
/// ```
/// use elm_environment::Simulator;
///
/// let mut sim = Simulator::new();
/// sim.mouse_move(10, 20);
/// sim.advance(16);
/// sim.mouse_click();
/// let trace = sim.into_trace();
/// assert_eq!(trace.events.len(), 4); // position + x + y, then click
/// ```
#[derive(Debug)]
pub struct Simulator {
    clock: VirtualClock,
    trace: Trace,
    rng: StdRng,
    mouse: (i64, i64),
    window: (i64, i64),
    text: String,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Simulator {
    /// A simulator with the default seed.
    pub fn new() -> Self {
        Simulator::default()
    }

    /// A simulator whose random helpers are seeded deterministically.
    pub fn with_seed(seed: u64) -> Self {
        Simulator {
            clock: VirtualClock::new(),
            trace: Trace::new(),
            rng: StdRng::seed_from_u64(seed),
            mouse: (0, 0),
            window: (1024, 768),
            text: String::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Millis {
        self.clock.now()
    }

    /// Advances the clock by `ms` (no events).
    pub fn advance(&mut self, ms: Millis) -> &mut Self {
        self.clock.advance(ms);
        self
    }

    fn emit(&mut self, input: &str, value: PlainValue) {
        self.trace.push(self.clock.now(), input, value);
    }

    /// Moves the mouse to `(x, y)`: emits `Mouse.position`, `Mouse.x`,
    /// and `Mouse.y` (three input signals, as in the real environment).
    pub fn mouse_move(&mut self, x: i64, y: i64) -> &mut Self {
        self.mouse = (x, y);
        self.emit(
            inputs::MOUSE_POSITION,
            PlainValue::Pair(Box::new(PlainValue::Int(x)), Box::new(PlainValue::Int(y))),
        );
        self.emit(inputs::MOUSE_X, PlainValue::Int(x));
        self.emit(inputs::MOUSE_Y, PlainValue::Int(y));
        self
    }

    /// Clicks the mouse: emits `Mouse.clicks`.
    pub fn mouse_click(&mut self) -> &mut Self {
        self.emit(inputs::MOUSE_CLICKS, PlainValue::Unit);
        self
    }

    /// Presses/releases the button: emits `Mouse.isDown`.
    pub fn mouse_down(&mut self, down: bool) -> &mut Self {
        self.emit(inputs::MOUSE_IS_DOWN, PlainValue::Int(down as i64));
        self
    }

    /// Presses a key: emits `Keyboard.lastPressed`.
    pub fn key_press(&mut self, key_code: i64) -> &mut Self {
        self.emit(inputs::KEY_LAST_PRESSED, PlainValue::Int(key_code));
        self
    }

    /// Arrow-key state (each axis in -1..=1): emits `Keyboard.arrows` as
    /// the record `{x, y}` of paper Fig. 13.
    pub fn arrows(&mut self, x: i64, y: i64) -> &mut Self {
        self.emit(
            inputs::KEY_ARROWS,
            PlainValue::Record(std::collections::BTreeMap::from([
                ("x".to_string(), PlainValue::Int(x)),
                ("y".to_string(), PlainValue::Int(y)),
            ])),
        );
        self
    }

    /// Shift-key state: emits `Keyboard.shift`.
    pub fn shift(&mut self, down: bool) -> &mut Self {
        self.emit(inputs::KEY_SHIFT, PlainValue::Int(down as i64));
        self
    }

    /// Resizes the window: emits `Window.dimensions`, `Window.width`,
    /// `Window.height`.
    pub fn resize(&mut self, w: i64, h: i64) -> &mut Self {
        self.window = (w, h);
        self.emit(
            inputs::WINDOW_DIMENSIONS,
            PlainValue::Pair(Box::new(PlainValue::Int(w)), Box::new(PlainValue::Int(h))),
        );
        self.emit(inputs::WINDOW_WIDTH, PlainValue::Int(w));
        self.emit(inputs::WINDOW_HEIGHT, PlainValue::Int(h));
        self
    }

    /// Taps the touchscreen: emits `Touch.taps`.
    pub fn tap(&mut self, x: i64, y: i64) -> &mut Self {
        self.emit(
            inputs::TOUCH_TAPS,
            PlainValue::Pair(Box::new(PlainValue::Int(x)), Box::new(PlainValue::Int(y))),
        );
        self
    }

    /// Updates the set of ongoing touches: emits `Touch.touches` with the
    /// full list (gestures diff successive lists).
    pub fn touches(&mut self, points: &[(i64, i64)]) -> &mut Self {
        self.emit(
            inputs::TOUCHES,
            PlainValue::List(
                points
                    .iter()
                    .map(|(x, y)| {
                        PlainValue::Pair(
                            Box::new(PlainValue::Int(*x)),
                            Box::new(PlainValue::Int(*y)),
                        )
                    })
                    .collect(),
            ),
        );
        self
    }

    /// Types text into the focused field: one `Input.text` event per
    /// keystroke with the accumulated contents, plus per-key
    /// `Keyboard.lastPressed` — "each time the text in the input field
    /// changes … both signals produce a new value" (paper §2 Ex. 3).
    pub fn type_text(&mut self, s: &str) -> &mut Self {
        for c in s.chars() {
            self.text.push(c);
            self.emit(inputs::KEY_LAST_PRESSED, PlainValue::Int(c as i64));
            let snapshot = self.text.clone();
            self.emit(inputs::INPUT_TEXT, PlainValue::Str(snapshot));
            self.clock.advance(30); // ~33 wpm typist
        }
        self
    }

    /// Submits a whole word on the `Words.input` signal (§3.3.2 example).
    pub fn word(&mut self, w: &str) -> &mut Self {
        self.emit(inputs::WORDS, PlainValue::Str(w.to_string()));
        self
    }

    /// Emits `Time.millis` ticks every `period` ms for the next `span` ms,
    /// advancing the clock to the end of the span.
    pub fn run_timer(&mut self, period: Millis, span: Millis) -> &mut Self {
        let from = self.clock.now();
        let to = from + span;
        for t in VirtualClock::ticks_between(period, from, to) {
            self.trace
                .push(t, inputs::TIME_MILLIS, PlainValue::Int(t as i64));
        }
        self.clock.advance(span);
        self
    }

    /// Emits `Time.fps` frame deltas at the given frame rate for `span`
    /// ms, advancing the clock.
    pub fn run_fps(&mut self, fps: u32, span: Millis) -> &mut Self {
        assert!(fps > 0, "frame rate must be positive");
        let period = (1000.0 / fps as f64).round().max(1.0) as Millis;
        let from = self.clock.now();
        let to = from + span;
        for t in VirtualClock::ticks_between(period, from, to) {
            self.trace
                .push(t, inputs::TIME_FPS, PlainValue::Float(period as f64));
        }
        self.clock.advance(span);
        self
    }

    /// A seeded random mouse walk: `steps` moves of at most `max_step`
    /// pixels each, `interval` ms apart. Useful for workload generation.
    pub fn mouse_walk(&mut self, steps: usize, max_step: i64, interval: Millis) -> &mut Self {
        for _ in 0..steps {
            let (dx, dy) = (
                self.rng.gen_range(-max_step..=max_step),
                self.rng.gen_range(-max_step..=max_step),
            );
            let (x, y) = (
                (self.mouse.0 + dx).clamp(0, self.window.0),
                (self.mouse.1 + dy).clamp(0, self.window.1),
            );
            self.mouse_move(x, y);
            self.clock.advance(interval);
        }
        self
    }

    /// A mixed interactive workload of roughly `events` input events:
    /// mouse walks, clicks, typing, words, and timer ticks, in a
    /// deterministic per-seed shuffle. The building block for multi-session
    /// load generation.
    pub fn workload(seed: u64, events: usize) -> Trace {
        let mut sim = Simulator::with_seed(seed);
        while sim.trace.events.len() < events {
            match sim.rng.gen_range(0u32..10) {
                0..=4 => {
                    sim.mouse_walk(4, 25, 7);
                }
                5..=6 => {
                    sim.mouse_click();
                    sim.advance(11);
                }
                7 => {
                    let n = sim.rng.gen_range(1usize..5);
                    let word: String = (0..n)
                        .map(|_| (b'a' + sim.rng.gen_range(0u8..26)) as char)
                        .collect();
                    sim.word(&word);
                    sim.advance(40);
                }
                8 => {
                    let key = sim.rng.gen_range(32i64..127);
                    sim.key_press(key);
                    sim.advance(25);
                }
                _ => {
                    sim.run_timer(50, 150);
                }
            }
        }
        let mut trace = sim.into_trace();
        trace.events.truncate(events);
        trace
    }

    /// Fans a workload out across `sessions` concurrent sessions: one
    /// distinct deterministic trace per session, each of roughly
    /// `events_per_session` events. Session `i` gets seed `base_seed + i`,
    /// so any single session can be replayed standalone for comparison.
    pub fn fan_out(base_seed: u64, sessions: usize, events_per_session: usize) -> Vec<Trace> {
        (0..sessions)
            .map(|i| Simulator::workload(base_seed + i as u64, events_per_session))
            .collect()
    }

    /// Like [`Simulator::workload`] but laced with injected faults from a
    /// [`FaultPlan`]: with probability `plan.node_panic` per step the
    /// workload emits a poison-pill event (a negative `Mouse.x`, which
    /// makes susceptible nodes panic), and with probability
    /// `plan.queue_full_burst` it emits a rapid same-signal burst of
    /// `plan.burst_len` events to overflow small ingress queues. The
    /// fault schedule is drawn from the plan's `STREAM_WORKLOAD` stream
    /// keyed by `seed`, so the laced trace is fully determined by
    /// `(seed, events, plan)`.
    pub fn workload_with_faults(seed: u64, events: usize, plan: &FaultPlan) -> Trace {
        if !plan.is_active() {
            return Simulator::workload(seed, events);
        }
        let mut faults = plan.rng(fault::STREAM_WORKLOAD, seed);
        let mut sim = Simulator::with_seed(seed);
        while sim.trace.events.len() < events {
            match sim.rng.gen_range(0u32..10) {
                0..=4 => {
                    sim.mouse_walk(4, 25, 7);
                }
                5..=6 => {
                    sim.mouse_click();
                    sim.advance(11);
                }
                7 => {
                    let n = sim.rng.gen_range(1usize..5);
                    let word: String = (0..n)
                        .map(|_| (b'a' + sim.rng.gen_range(0u8..26)) as char)
                        .collect();
                    sim.word(&word);
                    sim.advance(40);
                }
                8 => {
                    let key = sim.rng.gen_range(32i64..127);
                    sim.key_press(key);
                    sim.advance(25);
                }
                _ => {
                    sim.run_timer(50, 150);
                }
            }
            if plan.node_panic > 0.0 && faults.gen_bool(plan.node_panic) {
                // Poison pill: programs with a node that rejects negative
                // x-coordinates panic on this event.
                sim.emit(inputs::MOUSE_X, PlainValue::Int(-1));
                sim.advance(3);
            }
            if plan.queue_full_burst > 0.0 && faults.gen_bool(plan.queue_full_burst) {
                for i in 0..plan.burst_len as i64 {
                    let x = (sim.mouse.0 + i) % sim.window.0.max(1);
                    sim.emit(inputs::MOUSE_X, PlainValue::Int(x));
                }
                sim.advance(1);
            }
        }
        let mut trace = sim.into_trace();
        trace.events.truncate(events);
        trace
    }

    /// Fault-laced version of [`Simulator::fan_out`]: session `i` gets
    /// seed `base_seed + i` and its own fault stream derived from that
    /// seed, so each session's laced trace is still replayable standalone.
    pub fn fan_out_with_faults(
        base_seed: u64,
        sessions: usize,
        events_per_session: usize,
        plan: &FaultPlan,
    ) -> Vec<Trace> {
        (0..sessions)
            .map(|i| {
                Simulator::workload_with_faults(base_seed + i as u64, events_per_session, plan)
            })
            .collect()
    }

    /// Finishes the session, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// A copy of the trace so far (the simulator can keep recording).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mouse_move_emits_three_signals() {
        let mut sim = Simulator::new();
        sim.mouse_move(3, 4);
        let t = sim.into_trace();
        let names: Vec<&str> = t.events.iter().map(|e| e.input.as_str()).collect();
        assert_eq!(
            names,
            vec![inputs::MOUSE_POSITION, inputs::MOUSE_X, inputs::MOUSE_Y]
        );
    }

    #[test]
    fn typing_accumulates_text() {
        let mut sim = Simulator::new();
        sim.type_text("ab");
        let t = sim.into_trace();
        let texts: Vec<String> = t
            .events
            .iter()
            .filter(|e| e.input == inputs::INPUT_TEXT)
            .map(|e| match &e.value {
                PlainValue::Str(s) => s.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(texts, vec!["a".to_string(), "ab".to_string()]);
        // Keystrokes advance the clock.
        assert!(t.events.last().unwrap().at_ms >= 30);
    }

    #[test]
    fn timers_fire_on_schedule() {
        let mut sim = Simulator::new();
        sim.run_timer(100, 500);
        let t = sim.trace();
        assert_eq!(t.events.len(), 5);
        assert_eq!(t.events[0].at_ms, 100);
        assert_eq!(t.events[4].at_ms, 500);
        assert_eq!(sim.now(), 500);
    }

    #[test]
    fn fps_emits_deltas() {
        let mut sim = Simulator::new();
        sim.run_fps(50, 100); // 20ms period → 5 frames
        let t = sim.into_trace();
        assert_eq!(t.events.len(), 5);
        assert!(t.events.iter().all(|e| e.value == PlainValue::Float(20.0)));
    }

    #[test]
    fn workload_fan_out_is_distinct_and_deterministic() {
        let traces = Simulator::fan_out(100, 4, 200);
        assert_eq!(traces.len(), 4);
        for t in &traces {
            assert_eq!(t.events.len(), 200);
        }
        assert_ne!(traces[0], traces[1]);
        // Session i is replayable standalone with seed base + i.
        assert_eq!(traces[2], Simulator::workload(102, 200));
    }

    #[test]
    fn fault_laced_workloads_are_deterministic_and_poisoned() {
        let plan = FaultPlan {
            node_panic: 0.2,
            queue_full_burst: 0.1,
            burst_len: 8,
            ..FaultPlan::chaos(9)
        };
        let a = Simulator::workload_with_faults(5, 400, &plan);
        let b = Simulator::workload_with_faults(5, 400, &plan);
        assert_eq!(a, b);
        assert!(a
            .events
            .iter()
            .any(|e| e.input == inputs::MOUSE_X && e.value == PlainValue::Int(-1)));
        // A disabled plan reduces to the plain workload.
        assert_eq!(
            Simulator::workload_with_faults(5, 400, &FaultPlan::disabled()),
            Simulator::workload(5, 400)
        );
        // Fan-out sessions stay standalone-replayable.
        let fleet = Simulator::fan_out_with_faults(100, 3, 200, &plan);
        assert_eq!(fleet[2], Simulator::workload_with_faults(102, 200, &plan));
    }

    #[test]
    fn mouse_walk_is_deterministic_per_seed() {
        let walk = |seed| {
            let mut sim = Simulator::with_seed(seed);
            sim.mouse_walk(10, 5, 16);
            sim.into_trace()
        };
        assert_eq!(walk(42), walk(42));
        assert_ne!(walk(42), walk(43));
    }

    #[test]
    fn walk_respects_window_bounds() {
        let mut sim = Simulator::with_seed(7);
        sim.resize(100, 100);
        sim.mouse_walk(200, 50, 1);
        for e in &sim.trace().events {
            if e.input == inputs::MOUSE_X {
                let PlainValue::Int(x) = e.value else {
                    unreachable!()
                };
                assert!((0..=100).contains(&x));
            }
        }
    }
}
