//! The program generator: seeded random signal DAGs rendered as FElm.
//!
//! Programs are built bottom-up as a topologically ordered node list
//! (sources first, `main` last) so sharing — one node feeding several
//! consumers — falls out naturally from operand reuse, which is how the
//! fan-out knob works. All payloads are `Int`: every standard source used
//! here is `Signal Int` and every scalar function is `Int → Int`, so any
//! composition of the five combinators is well-typed by construction and
//! `merge`'s same-payload constraint is always satisfied.

use elm_runtime::{PlainValue, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::property::Property;

/// The `Signal Int` sources generated programs draw from.
pub const SOURCES: &[&str] = &[
    "Mouse.x",
    "Mouse.y",
    "Mouse.isDown",
    "Window.width",
    "Window.height",
    "Keyboard.lastPressed",
    "Keyboard.shift",
    "Time.millis",
];

/// The event value that flips a hostile fold into its fuel-tower branch.
/// Benign trace values stay in `[-1000, 1000]`, so the trigger never fires
/// by accident.
pub const HOSTILE_TRIGGER: i64 = 7_777_777;

/// Unary `Int → Int` scalar bodies. Coefficients are kept tiny and
/// multiplication between two signal values is never generated, so value
/// magnitudes stay polynomial in the trace length — far from `i64`
/// wrapping, which would silently break the monotonicity oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scalar1 {
    /// `\a -> a + k` (or `a - |k|` for negative `k`).
    AddK(i64),
    /// `\a -> a * k`, `k ∈ 1..=3`.
    MulK(i64),
    /// `\a -> if a < 0 then 0 - a else a`.
    Abs,
    /// `\a -> a % k`, `k ≥ 2`.
    ModK(i64),
}

impl Scalar1 {
    fn render(self) -> String {
        match self {
            Scalar1::AddK(k) if k < 0 => format!("(\\a -> a - {})", -k),
            Scalar1::AddK(k) => format!("(\\a -> a + {k})"),
            Scalar1::MulK(k) => format!("(\\a -> a * {k})"),
            Scalar1::Abs => "(\\a -> if a < 0 then 0 - a else a)".to_string(),
            Scalar1::ModK(k) => format!("(\\a -> a % {k})"),
        }
    }
}

/// Binary `Int → Int → Int` scalar bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scalar2 {
    /// `\a b -> a + b`.
    Add,
    /// `\a b -> a - b`.
    Sub,
    /// `\a b -> if a < b then b else a`.
    Max,
    /// `\a b -> a + b * k`, `k ∈ 1..=3`.
    AddMulK(i64),
}

impl Scalar2 {
    fn render(self) -> String {
        match self {
            Scalar2::Add => "(\\a b -> a + b)".to_string(),
            Scalar2::Sub => "(\\a b -> a - b)".to_string(),
            Scalar2::Max => "(\\a b -> if a < b then b else a)".to_string(),
            Scalar2::AddMulK(k) => format!("(\\a b -> a + b * {k})"),
        }
    }
}

/// `foldp` accumulator bodies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fold {
    /// `\e n -> n + 1` — the exact-count accumulator.
    CountUp,
    /// `\e n -> n + ((if e < 0 then 0 - e else e) % m)` — adds a value in
    /// `[0, m)` per step, so the accumulator is monotone nondecreasing.
    SumAbsMod(i64),
    /// `\e n -> e + k` — tracks the latest event (not monotone).
    LatestPlus(i64),
    /// `\e n -> if e == HOSTILE_TRIGGER then <2^k tower> else n + 1` —
    /// counts benign events, but a trigger event enters a Church-style
    /// iteration tower only a fuel budget can stop. The trap rolls the
    /// event back, so the count never advances on triggers.
    Hostile {
        /// Tower height: the hostile branch takes about `2^height` steps.
        height: u32,
    },
}

impl Fold {
    fn render(self) -> String {
        match self {
            Fold::CountUp => "(\\e n -> n + 1)".to_string(),
            Fold::SumAbsMod(m) => {
                format!("(\\e n -> n + ((if e < 0 then 0 - e else e) % {m}))")
            }
            Fold::LatestPlus(k) if k < 0 => format!("(\\e n -> e - {})", -k),
            Fold::LatestPlus(k) => format!("(\\e n -> e + {k})"),
            Fold::Hostile { height } => format!(
                "(\\e n -> if e == {HOSTILE_TRIGGER} then {} else n + 1)",
                tower(height)
            ),
        }
    }

    /// Whether the accumulator never decreases.
    pub fn is_monotone(self) -> bool {
        matches!(
            self,
            Fold::CountUp | Fold::SumAbsMod(_) | Fold::Hostile { .. }
        )
    }
}

/// A `2^k`-step iteration tower (same shape as the server's `runaway`
/// builtin): `t` doubles its argument's step count `k` times.
fn tower(k: u32) -> String {
    let mut body = String::from("(\\n -> n + 1)");
    for _ in 0..k {
        body = format!("(t {body})");
    }
    format!("((let t = \\f y -> f (f y) in {body}) 0)")
}

/// One node of a generated signal DAG. Operand indices always point at
/// earlier nodes, so the `Vec<Node>` is its own topological order.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A standard input signal (index into [`SOURCES`]).
    Source(usize),
    /// `lift f a`.
    Lift1(Scalar1, usize),
    /// `lift2 f a b`.
    Lift2(Scalar2, usize, usize),
    /// `foldp f init a`.
    Foldp(Fold, i64, usize),
    /// `async a`.
    Async(usize),
    /// `merge a b`.
    Merge(usize, usize),
}

impl Node {
    /// Operand indices (empty for sources).
    pub fn operands(&self) -> Vec<usize> {
        match *self {
            Node::Source(_) => vec![],
            Node::Lift1(_, a) | Node::Foldp(_, _, a) | Node::Async(a) => vec![a],
            Node::Lift2(_, a, b) | Node::Merge(a, b) => vec![a, b],
        }
    }
}

/// A generated program: a topologically ordered DAG whose last node is
/// `main`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramIr {
    /// The nodes, sources first, `main` last.
    pub nodes: Vec<Node>,
}

impl ProgramIr {
    /// The output node's index.
    pub fn main(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Renders the DAG as FElm surface syntax: one definition per node
    /// (`n0 = …`), `main` aliasing the last.
    pub fn render(&self) -> String {
        self.render_with(|f| f.render())
    }

    /// [`ProgramIr::render`] with a custom fold renderer — the hook the
    /// mutation-tested oracle uses to miscompile one accumulator.
    fn render_with(&self, fold: impl Fn(Fold) -> String) -> String {
        let mut out = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let rhs = match *node {
                Node::Source(s) => SOURCES[s].to_string(),
                Node::Lift1(f, a) => format!("lift {} n{a}", f.render()),
                Node::Lift2(f, a, b) => format!("lift2 {} n{a} n{b}", f.render()),
                Node::Foldp(f, init, a) => format!("foldp {} {init} n{a}", fold(f)),
                Node::Async(a) => format!("async n{a}"),
                Node::Merge(a, b) => format!("merge n{a} n{b}"),
            };
            out.push_str(&format!("n{i} = {rhs}\n"));
        }
        out.push_str(&format!("main = n{}\n", self.main()));
        out
    }

    /// Renders the program with every `CountUp` fold deliberately
    /// miscompiled to `n + 2` — a seeded semantic bug the exact-count
    /// oracle must catch. Returns `None` if the program has no `CountUp`
    /// fold to mutate.
    pub fn render_mutated(&self) -> Option<String> {
        if !self
            .nodes
            .iter()
            .any(|n| matches!(n, Node::Foldp(Fold::CountUp, _, _)))
        {
            return None;
        }
        let src = self.render_with(|f| {
            if f == Fold::CountUp {
                "(\\e n -> n + 2)".to_string()
            } else {
                f.render()
            }
        });
        Some(src)
    }

    /// The distinct input signal names the program listens on, in
    /// [`SOURCES`] order.
    pub fn inputs(&self) -> Vec<&'static str> {
        let mut used = [false; 16];
        for n in &self.nodes {
            if let Node::Source(s) = n {
                used[*s] = true;
            }
        }
        SOURCES
            .iter()
            .enumerate()
            .filter(|(i, _)| used[*i])
            .map(|(_, s)| *s)
            .collect()
    }

    /// Longest operand chain from `main` down to a source.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            depth[i] = node
                .operands()
                .iter()
                .map(|&o| depth[o] + 1)
                .max()
                .unwrap_or(0);
        }
        depth[self.main()]
    }

    /// Whether any node is a hostile fold.
    pub fn is_hostile(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n, Node::Foldp(Fold::Hostile { .. }, _, _)))
    }

    /// Shape class for per-shape fleet breakdowns: depth bucket plus
    /// which combinator families appear. Small, stable cardinality so it
    /// works as a metric label.
    pub fn shape_class(&self) -> String {
        let has = |p: fn(&Node) -> bool| self.nodes.iter().any(p);
        let mut class = String::from(match self.depth() {
            0..=2 => "shallow",
            3..=5 => "mid",
            _ => "deep",
        });
        if has(|n| matches!(n, Node::Foldp(..))) {
            class.push_str("-fold");
        }
        if has(|n| matches!(n, Node::Async(_))) {
            class.push_str("-async");
        }
        if has(|n| matches!(n, Node::Merge(..))) {
            class.push_str("-merge");
        }
        if self.is_hostile() {
            class.push_str("-hostile");
        }
        class
    }

    /// The strongest property this shape supports (see [`Property`]).
    ///
    /// * `main` is `foldp CountUp 0` over a lift-free, async-free tree of
    ///   merges and sources → every event on a listened input is a change
    ///   at the fold, so the final value is the exact event count.
    /// * `main` is a monotone fold → the output stream never decreases.
    /// * anything else → governed-replay equivalence only.
    pub fn property(&self) -> Property {
        match self.nodes[self.main()] {
            Node::Foldp(Fold::CountUp, 0, arg) if self.is_pure_merge_tree(arg) => {
                Property::ExactCount
            }
            Node::Foldp(f, _, _) if f.is_monotone() => Property::Monotone,
            _ => Property::Replay,
        }
    }

    /// True when the subgraph under `root` is only `merge` and sources —
    /// the shape whose change stream is exactly the event stream.
    fn is_pure_merge_tree(&self, root: usize) -> bool {
        match self.nodes[root] {
            Node::Source(_) => true,
            Node::Merge(a, b) => self.is_pure_merge_tree(a) && self.is_pure_merge_tree(b),
            _ => false,
        }
    }
}

/// Generator tuning: how big, how wide, how async, how hostile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenConfig {
    /// Interior (non-source) nodes per program, sampled from
    /// `1..=max_interior`.
    pub max_interior: usize,
    /// Probability an operand reuses an existing node instead of the most
    /// recent one — the DAG fan-out knob.
    pub reuse: f64,
    /// Probability an interior node is an `async` boundary.
    pub async_density: f64,
    /// Probability a program's fold is hostile (fuel-tower branch).
    pub hostile: f64,
    /// Probability a program is forced into the exact-count shape
    /// (`foldp CountUp 0` over a merge tree).
    pub counter_shape: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_interior: 12,
            reuse: 0.35,
            async_density: 0.15,
            hostile: 0.0,
            counter_shape: 0.2,
        }
    }
}

/// One synthesized fleet scenario: the program, its rendered source, the
/// property it must satisfy, and a seeded event trace over its inputs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The seed this scenario was derived from (reproduces everything).
    pub seed: u64,
    /// The program DAG.
    pub ir: ProgramIr,
    /// Rendered FElm source.
    pub source: String,
    /// The temporal property the output stream must satisfy.
    pub property: Property,
    /// Shape class label for fleet breakdowns.
    pub shape: String,
    /// Seeded event trace over the program's declared inputs.
    pub trace: Trace,
}

/// Seeded scenario factory. Distinct seeds give independent programs;
/// the same seed always reproduces the same scenario byte-for-byte.
pub struct Generator {
    config: GenConfig,
}

impl Generator {
    /// A generator with the given tuning.
    pub fn new(config: GenConfig) -> Generator {
        Generator { config }
    }

    /// Generates the program DAG for `seed`.
    pub fn program(&self, seed: u64) -> ProgramIr {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e_1f_00_d5);
        let cfg = self.config;
        if rng.gen_bool(cfg.counter_shape) {
            return self.counter_program(&mut rng);
        }
        let mut nodes: Vec<Node> = Vec::new();
        // Seed with 1–3 distinct sources.
        let n_sources = rng.gen_range(1usize..4);
        let mut picked = Vec::new();
        while picked.len() < n_sources {
            let s = rng.gen_range(0usize..SOURCES.len());
            if !picked.contains(&s) {
                picked.push(s);
            }
        }
        for s in &picked {
            nodes.push(Node::Source(*s));
        }
        let interior = rng.gen_range(1usize..=cfg.max_interior.max(1));
        for _ in 0..interior {
            let pick = |rng: &mut StdRng, nodes: &[Node]| -> usize {
                if rng.gen_bool(cfg.reuse) {
                    rng.gen_range(0usize..nodes.len())
                } else {
                    nodes.len() - 1
                }
            };
            let a = pick(&mut rng, &nodes);
            let node = if rng.gen_bool(cfg.async_density) {
                Node::Async(a)
            } else {
                match rng.gen_range(0u32..8) {
                    0 | 1 => Node::Lift1(self.scalar1(&mut rng), a),
                    2 | 3 => {
                        let b = pick(&mut rng, &nodes);
                        Node::Lift2(self.scalar2(&mut rng), a, b)
                    }
                    4 | 5 => Node::Foldp(self.fold(&mut rng), rng.gen_range(0i64..4), a),
                    _ => {
                        let b = pick(&mut rng, &nodes);
                        Node::Merge(a, b)
                    }
                }
            };
            nodes.push(node);
        }
        // `async`/`merge` as the output node is legal but makes the
        // weakest oracle; prefer ending on a fold when the dice allow, so
        // monotone/exact-count properties stay common in the fleet.
        if rng.gen_bool(0.5) && !matches!(nodes.last(), Some(Node::Foldp(..))) {
            let arg = nodes.len() - 1;
            let fold = self.fold(&mut rng);
            nodes.push(Node::Foldp(fold, 0, arg));
        }
        // Operand choices can leave early nodes dangling; keep only what
        // `main` can see, so `inputs()` (and therefore generated traces)
        // never mention a signal the compiled graph does not declare.
        let ir = ProgramIr { nodes };
        crate::shrink::slice_to(&ir, ir.main())
    }

    /// The exact-count shape: `foldp CountUp 0` over a merge tree of
    /// sources.
    fn counter_program(&self, rng: &mut StdRng) -> ProgramIr {
        let mut nodes = Vec::new();
        let n_sources = rng.gen_range(1usize..4);
        let mut picked = Vec::new();
        while picked.len() < n_sources {
            let s = rng.gen_range(0usize..SOURCES.len());
            if !picked.contains(&s) {
                picked.push(s);
            }
        }
        for s in &picked {
            nodes.push(Node::Source(*s));
        }
        // Left-fold the sources into one merge spine.
        let mut acc = 0usize;
        for i in 1..n_sources {
            nodes.push(Node::Merge(acc, i));
            acc = nodes.len() - 1;
        }
        nodes.push(Node::Foldp(Fold::CountUp, 0, acc));
        ProgramIr { nodes }
    }

    fn scalar1(&self, rng: &mut StdRng) -> Scalar1 {
        match rng.gen_range(0u32..4) {
            0 => Scalar1::AddK(rng.gen_range(-9i64..10)),
            1 => Scalar1::MulK(rng.gen_range(1i64..4)),
            2 => Scalar1::Abs,
            _ => Scalar1::ModK(rng.gen_range(2i64..1000)),
        }
    }

    fn scalar2(&self, rng: &mut StdRng) -> Scalar2 {
        match rng.gen_range(0u32..4) {
            0 => Scalar2::Add,
            1 => Scalar2::Sub,
            2 => Scalar2::Max,
            _ => Scalar2::AddMulK(rng.gen_range(1i64..4)),
        }
    }

    fn fold(&self, rng: &mut StdRng) -> Fold {
        if rng.gen_bool(self.config.hostile) {
            return Fold::Hostile { height: 40 };
        }
        match rng.gen_range(0u32..4) {
            0 | 1 => Fold::CountUp,
            2 => Fold::SumAbsMod(rng.gen_range(1i64..100)),
            _ => Fold::LatestPlus(rng.gen_range(-9i64..10)),
        }
    }

    /// Generates a seeded trace of `events` events over the program's
    /// declared inputs. Hostile programs get a sprinkle of trigger
    /// events; benign values stay in `[-1000, 1000]`.
    pub fn trace(&self, ir: &ProgramIr, seed: u64, events: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7e_ac_e5);
        let inputs = ir.inputs();
        let hostile = ir.is_hostile();
        let mut trace = Trace::new();
        for i in 0..events {
            let input = inputs[rng.gen_range(0usize..inputs.len())];
            let value = if hostile && rng.gen_bool(0.02) {
                HOSTILE_TRIGGER
            } else {
                rng.gen_range(-1000i64..1001)
            };
            trace.push(i as u64, input, PlainValue::Int(value));
        }
        trace
    }

    /// Generates the full scenario for `seed`: program, source, property,
    /// shape class, and trace.
    pub fn scenario(&self, seed: u64, events: usize) -> Scenario {
        let ir = self.program(seed);
        let trace = self.trace(&ir, seed, events);
        Scenario {
            seed,
            source: ir.render(),
            property: ir.property(),
            shape: ir.shape_class(),
            trace,
            ir,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use felm::env::InputEnv;
    use felm::pipeline::compile_source;

    #[test]
    fn generation_is_deterministic() {
        let g = Generator::new(GenConfig::default());
        let a = g.scenario(7, 50);
        let b = g.scenario(7, 50);
        assert_eq!(a.ir, b.ir);
        assert_eq!(a.source, b.source);
        assert_eq!(a.trace, b.trace);
        assert_ne!(a.source, g.scenario(8, 50).source);
    }

    #[test]
    fn rendered_programs_compile_to_reactive_graphs() {
        let env = InputEnv::standard();
        let g = Generator::new(GenConfig::default());
        for seed in 0..40u64 {
            let s = g.scenario(seed, 10);
            let compiled = compile_source(&s.source, &env)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", s.source));
            assert!(
                compiled.graph().is_some(),
                "seed {seed} not reactive:\n{}",
                s.source
            );
        }
    }

    #[test]
    fn counter_shape_gets_the_exact_count_property() {
        let g = Generator::new(GenConfig {
            counter_shape: 1.0,
            ..GenConfig::default()
        });
        for seed in 0..10u64 {
            let s = g.scenario(seed, 10);
            assert_eq!(s.property, Property::ExactCount, "seed {seed}");
            assert!(s.shape.contains("fold"), "{}", s.shape);
        }
    }

    #[test]
    fn hostile_programs_carry_the_trigger_and_a_tower() {
        let g = Generator::new(GenConfig {
            hostile: 1.0,
            counter_shape: 0.0,
            ..GenConfig::default()
        });
        let mut saw_hostile = false;
        for seed in 0..20u64 {
            let s = g.scenario(seed, 200);
            if s.ir.is_hostile() {
                saw_hostile = true;
                assert!(s.source.contains(&HOSTILE_TRIGGER.to_string()));
                assert!(s.shape.ends_with("-hostile"), "{}", s.shape);
            }
        }
        assert!(saw_hostile);
    }

    #[test]
    fn mutated_render_miscompiles_count_up_only() {
        let g = Generator::new(GenConfig {
            counter_shape: 1.0,
            ..GenConfig::default()
        });
        let s = g.scenario(3, 10);
        let mutated = s.ir.render_mutated().expect("counter shape has CountUp");
        assert_ne!(mutated, s.source);
        assert!(mutated.contains("n + 2"));
        // A program with no CountUp fold has nothing to mutate.
        let bare = ProgramIr {
            nodes: vec![Node::Source(0)],
        };
        assert!(bare.render_mutated().is_none());
    }
}
