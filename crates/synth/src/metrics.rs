//! `elm_fleet_*` metric families for scenario-fleet runs.
//!
//! [`FleetMetrics`] is a small live-counter bundle the fleet driver bumps
//! as it hosts programs and judges properties; [`FleetMetrics::render`]
//! lays the counters out through the shared [`elm_runtime::metrics`]
//! registry, so fleet families come out in the same Prometheus text format
//! (and with the same `elm_` naming discipline) as the server's own
//! exposition and can simply be appended to a `/metrics`-style scrape.

use std::collections::BTreeMap;
use std::sync::Mutex;

use elm_runtime::metrics::{Counter, Registry};

/// Live counters for one fleet run.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Programs hosted, keyed by shape class.
    hosted_by_shape: Mutex<BTreeMap<String, u64>>,
    /// Property checks that passed.
    pub checks_passed: Counter,
    /// Property checks that failed.
    pub checks_failed: Counter,
    /// Candidate reproductions attempted while shrinking.
    pub shrink_attempts: Counter,
    /// Scheduler-equivalence divergences observed (must stay 0).
    pub divergences: Counter,
    /// Governor traps observed across the fleet (hostile profiles).
    pub traps: Counter,
}

impl FleetMetrics {
    /// A zeroed bundle.
    pub fn new() -> FleetMetrics {
        FleetMetrics::default()
    }

    /// Records one hosted program of the given shape class.
    pub fn host(&self, shape: &str) {
        let mut map = self.hosted_by_shape.lock().unwrap();
        *map.entry(shape.to_string()).or_insert(0) += 1;
    }

    /// Programs hosted per shape class, sorted by shape.
    pub fn hosted_by_shape(&self) -> Vec<(String, u64)> {
        self.hosted_by_shape
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Total programs hosted across all shapes.
    pub fn hosted_total(&self) -> u64 {
        self.hosted_by_shape.lock().unwrap().values().sum()
    }

    /// Renders the `elm_fleet_*` families as Prometheus exposition text.
    pub fn render(&self) -> String {
        let mut reg = Registry::new();
        for (shape, count) in self.hosted_by_shape() {
            reg.counter(
                "elm_fleet_programs_hosted_total",
                "Synthesized programs hosted, by shape class.",
                &[("shape", shape.as_str())],
                count,
            );
        }
        reg.counter(
            "elm_fleet_property_checks_total",
            "Temporal property checks judged, by outcome.",
            &[("outcome", "passed")],
            self.checks_passed.get(),
        );
        reg.counter(
            "elm_fleet_property_checks_total",
            "Temporal property checks judged, by outcome.",
            &[("outcome", "failed")],
            self.checks_failed.get(),
        );
        reg.counter(
            "elm_fleet_shrink_attempts_total",
            "Candidate reproductions attempted while shrinking failures.",
            &[],
            self.shrink_attempts.get(),
        );
        reg.counter(
            "elm_fleet_scheduler_divergences_total",
            "Outputs where a scheduler disagreed with governed synchronous replay.",
            &[],
            self.divergences.get(),
        );
        reg.counter(
            "elm_fleet_governor_traps_total",
            "Governor traps observed across the fleet (hostile fuel profiles).",
            &[],
            self.traps.get(),
        );
        reg.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_fleet_families() {
        let m = FleetMetrics::new();
        m.host("mid-fold");
        m.host("mid-fold");
        m.host("deep-fold-async-merge");
        m.checks_passed.add(3);
        m.checks_failed.inc();
        m.shrink_attempts.add(17);
        m.traps.add(2);
        let text = m.render();
        assert!(text.contains("elm_fleet_programs_hosted_total{shape=\"mid-fold\"} 2"));
        assert!(text.contains("elm_fleet_programs_hosted_total{shape=\"deep-fold-async-merge\"} 1"));
        assert!(text.contains("elm_fleet_property_checks_total{outcome=\"passed\"} 3"));
        assert!(text.contains("elm_fleet_property_checks_total{outcome=\"failed\"} 1"));
        assert!(text.contains("elm_fleet_shrink_attempts_total 17"));
        assert!(text.contains("elm_fleet_scheduler_divergences_total 0"));
        assert!(text.contains("elm_fleet_governor_traps_total 2"));
        assert_eq!(m.hosted_total(), 3);
    }
}
