//! Scenario synthesis: seeded, deterministic generation of well-typed
//! FElm programs, each paired with a machine-checkable temporal property
//! over its output stream, plus a shrinker for failing program+trace
//! pairs.
//!
//! "Synthesizing Functional Reactive Programs" (Finkbeiner et al.) derives
//! FRP programs from temporal specifications; this crate flips that into a
//! fuzzing harness for the paper's async-FRP semantics. A [`Generator`]
//! emits random signal DAGs over the standard input environment —
//! composing `lift`/`lift2`/`foldp`/`async`/`merge` with tunable depth,
//! fan-out, and async-boundary density — as an explicit IR
//! ([`ProgramIr`]) that renders to FElm surface syntax and goes through
//! the *full* production pipeline (parse → typecheck → compile → host).
//! Every generated program carries the strongest [`Property`] its shape
//! supports (exact event counts, monotone accumulators, or governed
//! replay equivalence), so a fleet of hundreds of synthesized sessions is
//! simultaneously a soak workload and a semantic oracle: Theorem 1
//! (scheduler equivalence) and the crash-recovery/overload machinery are
//! checked against arbitrary graph shapes instead of a handful of
//! hand-written builtins.
//!
//! When a check fails, [`shrink`] minimizes the `(program, trace)` pair —
//! bypassing graph nodes and bisecting the trace while the failure
//! reproduces — to a minimal repro that fits in a verdict line.
//!
//! The crate is deliberately deterministic: the same `(seed, GenConfig)`
//! always yields byte-identical programs, traces, and properties, so any
//! fleet failure is reproducible from the seed printed in the verdict.

pub mod gen;
pub mod metrics;
pub mod property;
pub mod run;
pub mod shrink;

pub use gen::{GenConfig, Generator, Node, ProgramIr, Scenario, HOSTILE_TRIGGER};
pub use metrics::FleetMetrics;
pub use property::{check_property, Property};
pub use run::{run_local, LocalRun};
pub use shrink::{shrink, ShrinkResult};
