//! Local (in-process) execution of synthesized programs.
//!
//! The fleet hosts programs inside the full server stack; this module is
//! the lightweight path the shrinker, the soundness proptest, and the
//! mutation-oracle demo use instead: compile through the production felm
//! pipeline, run on the deterministic synchronous scheduler under a
//! resource governor, and collect the output stream.

use std::time::Duration;

use elm_runtime::{EventLimits, Trace, TrapKind, Value};
use elm_signals::{Engine, Program};
use felm::env::InputEnv;
use felm::pipeline::compile_source;

/// The observable result of one local run.
#[derive(Clone, Debug)]
pub struct LocalRun {
    /// Output values in change order (non-`Int` outputs are impossible for
    /// generated programs, but are skipped defensively).
    pub outputs: Vec<i64>,
    /// The output's value after the run settled.
    pub final_value: i64,
    /// Governor traps that fired, as `(seq, kind)`.
    pub traps: Vec<(u64, TrapKind)>,
}

/// Compiles `source` through the production pipeline and replays `trace`
/// on the synchronous scheduler under `limits`.
///
/// # Errors
///
/// Returns a description if the program fails to parse/typecheck, is not
/// reactive, or the trace references inputs it does not declare.
pub fn run_local(source: &str, trace: &Trace, limits: EventLimits) -> Result<LocalRun, String> {
    let env = InputEnv::standard();
    let compiled = compile_source(source, &env).map_err(|e| e.to_string())?;
    let graph = compiled
        .graph()
        .cloned()
        .ok_or_else(|| "program is not reactive".to_string())?;
    let program = Program::from_dynamic_graph(graph);
    let mut running = program.start(Engine::Synchronous);
    running.set_governor(Some(limits), Some(Duration::from_secs(5)));
    // One event at a time, each run to quiescence (async follow-ups
    // included) before the next — the schedule a server session uses, so
    // scheduler-equivalence checks against hosted sessions compare like
    // with like. Batching the whole trace first would interleave async
    // follow-up rounds behind later input events instead.
    let mut outputs: Vec<i64> = Vec::new();
    for e in &trace.events {
        running
            .send_named(&e.input, e.value.to_value())
            .map_err(|e| e.to_string())?;
        let events = running.drain_raw().map_err(|e| e.to_string())?;
        outputs.extend(events.iter().filter_map(|e| match e.value() {
            Some(Value::Int(n)) => Some(*n),
            _ => None,
        }));
    }
    let final_value = match running.current() {
        Value::Int(n) => *n,
        _ => *outputs.last().unwrap_or(&0),
    };
    let traps = running.take_traps();
    running.stop();
    Ok(LocalRun {
        outputs,
        final_value,
        traps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, Generator, HOSTILE_TRIGGER};
    use crate::property::check_property;
    use elm_runtime::PlainValue;

    #[test]
    fn counter_program_counts_its_trace() {
        let g = Generator::new(GenConfig {
            counter_shape: 1.0,
            ..GenConfig::default()
        });
        let s = g.scenario(11, 64);
        let run = run_local(&s.source, &s.trace, EventLimits::default()).unwrap();
        assert!(run.traps.is_empty(), "{:?}", run.traps);
        check_property(s.property, &run.outputs, run.final_value, &s.trace).unwrap();
        assert_eq!(run.final_value, 64);
    }

    #[test]
    fn mutated_counter_violates_exact_count() {
        let g = Generator::new(GenConfig {
            counter_shape: 1.0,
            ..GenConfig::default()
        });
        let s = g.scenario(11, 16);
        let mutated = s.ir.render_mutated().unwrap();
        let run = run_local(&mutated, &s.trace, EventLimits::default()).unwrap();
        assert!(check_property(s.property, &run.outputs, run.final_value, &s.trace).is_err());
    }

    #[test]
    fn hostile_trigger_traps_and_rolls_back_under_a_tight_budget() {
        let source = format!(
            "main = foldp (\\e n -> if e == {HOSTILE_TRIGGER} then \
             ((let t = \\f y -> f (f y) in (t (t (t (t (t (t (t (t (t (t \
             (t (t (t (t (t (t (t (t (t (t (\\n -> n + 1)\
             ))))))))))))))))))))) 0) else n + 1) 0 Mouse.x\n"
        );
        let mut trace = Trace::new();
        trace.push(0, "Mouse.x", PlainValue::Int(1));
        trace.push(1, "Mouse.x", PlainValue::Int(HOSTILE_TRIGGER));
        trace.push(2, "Mouse.x", PlainValue::Int(2));
        let limits = EventLimits {
            fuel: 200_000,
            ..EventLimits::default()
        };
        let run = run_local(&source, &trace, limits).unwrap();
        assert_eq!(run.traps.len(), 1, "{:?}", run.traps);
        assert_eq!(run.final_value, 2, "trigger round must roll back");
    }
}
