//! The temporal-property oracle language.
//!
//! Each synthesized program carries the *strongest* property its shape
//! supports (chosen statically by [`ProgramIr::property`]). Properties are
//! judged over the observed output stream — the sequence of `Int` values
//! the subscribe stream (or a local drain) produced — plus the final
//! output value and the trace that was fed. Harness-level invariants that
//! hold for *every* program (sequence numbers strictly increase, no output
//! after close, replay equivalence across schedulers) are checked by the
//! fleet driver itself; this module is only the per-shape value oracle.
//!
//! [`ProgramIr::property`]: crate::gen::ProgramIr::property

use elm_runtime::Trace;

use crate::gen::HOSTILE_TRIGGER;

/// A machine-checkable temporal property over a program's output stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Property {
    /// The final output equals the number of benign trace events — holds
    /// when `main` is `foldp (\e n -> n + 1) 0` over a merge tree of
    /// sources, where every input event is a change at the fold.
    /// Trigger events are excluded: a hostile branch traps and the round
    /// rolls back, so the count must not advance on them.
    ExactCount,
    /// The output stream never decreases — holds when `main` is a
    /// monotone `foldp` accumulator.
    Monotone,
    /// No value-level invariant beyond what every program gets: the
    /// final value must match a budget-governed synchronous replay.
    Replay,
}

impl Property {
    /// Short machine-readable name used in verdicts and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Property::ExactCount => "exact_count",
            Property::Monotone => "monotone",
            Property::Replay => "replay",
        }
    }
}

/// Judges `property` against an observed run.
///
/// * `outputs` — the output values observed, in order (changes only).
/// * `final_value` — the output's value after the run settled.
/// * `trace` — the trace that was fed (used by [`Property::ExactCount`]).
///
/// Returns `Ok(())` or a human-readable violation description.
pub fn check_property(
    property: Property,
    outputs: &[i64],
    final_value: i64,
    trace: &Trace,
) -> Result<(), String> {
    match property {
        Property::ExactCount => {
            let expected = trace
                .events
                .iter()
                .filter(|e| !matches!(e.value, elm_runtime::PlainValue::Int(HOSTILE_TRIGGER)))
                .count() as i64;
            if final_value != expected {
                return Err(format!(
                    "exact_count violated: expected {expected} events counted, \
                     final value is {final_value}"
                ));
            }
            Ok(())
        }
        Property::Monotone => {
            for w in outputs.windows(2) {
                if w[1] < w[0] {
                    return Err(format!(
                        "monotone violated: output decreased {} -> {}",
                        w[0], w[1]
                    ));
                }
            }
            Ok(())
        }
        Property::Replay => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_runtime::PlainValue;

    fn trace_of(n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(i as u64, "Mouse.x", PlainValue::Int(i as i64));
        }
        t
    }

    #[test]
    fn exact_count_accepts_the_true_count_and_rejects_others() {
        let t = trace_of(5);
        assert!(check_property(Property::ExactCount, &[], 5, &t).is_ok());
        let err = check_property(Property::ExactCount, &[], 6, &t).unwrap_err();
        assert!(err.contains("exact_count"), "{err}");
    }

    #[test]
    fn exact_count_excludes_hostile_triggers() {
        let mut t = trace_of(3);
        t.push(10, "Mouse.x", PlainValue::Int(HOSTILE_TRIGGER));
        assert!(check_property(Property::ExactCount, &[], 3, &t).is_ok());
        assert!(check_property(Property::ExactCount, &[], 4, &t).is_err());
    }

    #[test]
    fn monotone_rejects_any_decrease() {
        let t = trace_of(0);
        assert!(check_property(Property::Monotone, &[1, 1, 2, 9], 9, &t).is_ok());
        let err = check_property(Property::Monotone, &[1, 3, 2], 2, &t).unwrap_err();
        assert!(err.contains("3 -> 2"), "{err}");
    }

    #[test]
    fn replay_is_always_locally_satisfied() {
        assert!(check_property(Property::Replay, &[5, 1], 1, &trace_of(2)).is_ok());
    }
}
