//! The temporal-property oracle language.
//!
//! Each synthesized program carries the *strongest* property its shape
//! supports (chosen statically by [`ProgramIr::property`]). Properties are
//! judged over the observed output stream — the sequence of `Int` values
//! the subscribe stream (or a local drain) produced — plus the final
//! output value and the trace that was fed. Harness-level invariants that
//! hold for *every* program (sequence numbers strictly increase, no output
//! after close, replay equivalence across schedulers) are checked by the
//! fleet driver itself; this module is only the per-shape value oracle.
//!
//! [`ProgramIr::property`]: crate::gen::ProgramIr::property

use elm_runtime::Trace;

use crate::gen::HOSTILE_TRIGGER;

/// A machine-checkable temporal property over a program's output stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Property {
    /// The final output equals the number of benign trace events — holds
    /// when `main` is `foldp (\e n -> n + 1) 0` over a merge tree of
    /// sources, where every input event is a change at the fold.
    /// Trigger events are excluded: a hostile branch traps and the round
    /// rolls back, so the count must not advance on them.
    ExactCount,
    /// The output stream never decreases — holds when `main` is a
    /// monotone `foldp` accumulator.
    Monotone,
    /// No value-level invariant beyond what every program gets: the
    /// final value must match a budget-governed synchronous replay.
    Replay,
    /// Bounded response for counting outputs: every applied event's
    /// effect becomes observable within `deadline_events` subsequent
    /// output changes. A counting fold's `j`-th observed change carries
    /// the number of events applied so far, so `value - (j+1)` is how
    /// many changes the observer never saw at that point; the property
    /// bounds that staleness — and the final lag between the settled
    /// value and the observed stream — by `deadline_events`. This is the
    /// liveness half of failover: a resumed session may coalesce, but it
    /// must not silently fall ever further behind.
    BoundedResponse {
        /// Maximum tolerated staleness, in output changes.
        deadline_events: u64,
    },
}

impl Property {
    /// Short machine-readable name used in verdicts and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Property::ExactCount => "exact_count",
            Property::Monotone => "monotone",
            Property::Replay => "replay",
            Property::BoundedResponse { .. } => "bounded_response",
        }
    }
}

/// Judges `property` against an observed run.
///
/// * `outputs` — the output values observed, in order (changes only).
/// * `final_value` — the output's value after the run settled.
/// * `trace` — the trace that was fed (used by [`Property::ExactCount`]).
///
/// Returns `Ok(())` or a human-readable violation description.
pub fn check_property(
    property: Property,
    outputs: &[i64],
    final_value: i64,
    trace: &Trace,
) -> Result<(), String> {
    match property {
        Property::ExactCount => {
            let expected = trace
                .events
                .iter()
                .filter(|e| !matches!(e.value, elm_runtime::PlainValue::Int(HOSTILE_TRIGGER)))
                .count() as i64;
            if final_value != expected {
                return Err(format!(
                    "exact_count violated: expected {expected} events counted, \
                     final value is {final_value}"
                ));
            }
            Ok(())
        }
        Property::Monotone => {
            for w in outputs.windows(2) {
                if w[1] < w[0] {
                    return Err(format!(
                        "monotone violated: output decreased {} -> {}",
                        w[0], w[1]
                    ));
                }
            }
            Ok(())
        }
        Property::Replay => Ok(()),
        Property::BoundedResponse { deadline_events } => {
            for (j, &v) in outputs.iter().enumerate() {
                let missed = v - (j as i64 + 1);
                if missed > deadline_events as i64 {
                    return Err(format!(
                        "bounded_response violated: observed change #{} carries value {v}, \
                         {missed} events behind (deadline {deadline_events})",
                        j + 1
                    ));
                }
            }
            let final_lag = final_value - outputs.len() as i64;
            if final_lag > deadline_events as i64 {
                return Err(format!(
                    "bounded_response violated: settled value {final_value} but only {} \
                     changes observed, {final_lag} events never surfaced \
                     (deadline {deadline_events})",
                    outputs.len()
                ));
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_runtime::PlainValue;

    fn trace_of(n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(i as u64, "Mouse.x", PlainValue::Int(i as i64));
        }
        t
    }

    #[test]
    fn exact_count_accepts_the_true_count_and_rejects_others() {
        let t = trace_of(5);
        assert!(check_property(Property::ExactCount, &[], 5, &t).is_ok());
        let err = check_property(Property::ExactCount, &[], 6, &t).unwrap_err();
        assert!(err.contains("exact_count"), "{err}");
    }

    #[test]
    fn exact_count_excludes_hostile_triggers() {
        let mut t = trace_of(3);
        t.push(10, "Mouse.x", PlainValue::Int(HOSTILE_TRIGGER));
        assert!(check_property(Property::ExactCount, &[], 3, &t).is_ok());
        assert!(check_property(Property::ExactCount, &[], 4, &t).is_err());
    }

    #[test]
    fn monotone_rejects_any_decrease() {
        let t = trace_of(0);
        assert!(check_property(Property::Monotone, &[1, 1, 2, 9], 9, &t).is_ok());
        let err = check_property(Property::Monotone, &[1, 3, 2], 2, &t).unwrap_err();
        assert!(err.contains("3 -> 2"), "{err}");
    }

    #[test]
    fn replay_is_always_locally_satisfied() {
        assert!(check_property(Property::Replay, &[5, 1], 1, &trace_of(2)).is_ok());
    }

    #[test]
    fn bounded_response_tolerates_lag_up_to_the_deadline() {
        let p = Property::BoundedResponse { deadline_events: 2 };
        let t = trace_of(0);
        // Perfectly live stream: every change observed.
        assert!(check_property(p, &[1, 2, 3, 4], 4, &t).is_ok());
        // Coalesced but within deadline: change #2 carries 4 (2 behind).
        assert!(check_property(p, &[1, 4], 4, &t).is_ok());
        // Mid-stream staleness beyond the deadline.
        let err = check_property(p, &[1, 5], 5, &t).unwrap_err();
        assert!(err.contains("bounded_response"), "{err}");
        assert!(err.contains("3 events behind"), "{err}");
        // Final lag beyond the deadline: settled at 9, observed 2 changes.
        let err = check_property(p, &[1, 2], 9, &t).unwrap_err();
        assert!(err.contains("never surfaced"), "{err}");
    }

    #[test]
    fn bounded_response_has_a_stable_name() {
        assert_eq!(
            Property::BoundedResponse { deadline_events: 8 }.name(),
            "bounded_response"
        );
    }
}
