//! Minimization of failing `(program, trace)` pairs.
//!
//! Given a reproducer predicate, [`shrink`] alternates two reductions to a
//! fixpoint (or an attempt budget):
//!
//! * **Trace shrinking** — delta-debugging style: remove chunks of the
//!   trace, halving the chunk size down to single events, keeping any
//!   candidate on which the failure still reproduces.
//! * **Program shrinking** — structural: re-root the DAG at any interior
//!   node (dropping everything not reachable from it), and bypass single
//!   nodes by rewiring their consumers to one of their operands. Both
//!   preserve topological order, so every candidate is a well-formed,
//!   well-typed program.
//!
//! The predicate sees the candidate `(ProgramIr, Trace)` and decides
//! whether the failure of interest still reproduces — typically by
//! rendering, running locally, and re-checking the candidate's own
//! strongest property.

use elm_runtime::Trace;

use crate::gen::{Node, ProgramIr};

/// The outcome of a shrink session.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized program (still failing).
    pub ir: ProgramIr,
    /// The minimized trace (still failing).
    pub trace: Trace,
    /// How many candidate reproductions were attempted.
    pub attempts: u64,
}

/// Minimizes a failing pair. `fails` must return `true` on the input pair;
/// every intermediate result it accepted is failing by construction.
pub fn shrink(
    ir: &ProgramIr,
    trace: &Trace,
    fails: impl Fn(&ProgramIr, &Trace) -> bool,
    budget: u64,
) -> ShrinkResult {
    let mut best_ir = ir.clone();
    let mut best_trace = trace.clone();
    let mut attempts = 0u64;

    loop {
        let mut improved = false;

        // Trace pass: remove chunks, halving the chunk size.
        let mut chunk = (best_trace.events.len() / 2).max(1);
        while chunk >= 1 && attempts < budget {
            let mut start = 0;
            while start < best_trace.events.len() && attempts < budget {
                let mut events = best_trace.events.clone();
                let end = (start + chunk).min(events.len());
                events.drain(start..end);
                let candidate = Trace { events };
                attempts += 1;
                if fails(&best_ir, &candidate) {
                    best_trace = candidate;
                    improved = true;
                    // Same start now points at fresh events; retry there.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Program pass: try re-rooting at every earlier node, then
        // bypassing each interior node with one of its operands. Adopting
        // a candidate renumbers the DAG, so restart the scan on success.
        'reroot: loop {
            for root in 0..best_ir.main() {
                if attempts >= budget {
                    break 'reroot;
                }
                let candidate = slice_to(&best_ir, root);
                if candidate.nodes.len() >= best_ir.nodes.len() {
                    continue;
                }
                attempts += 1;
                if fails(&candidate, &best_trace) {
                    best_ir = candidate;
                    improved = true;
                    continue 'reroot;
                }
            }
            break;
        }
        'bypass: loop {
            for i in 0..best_ir.nodes.len() {
                for o in best_ir.nodes[i].operands() {
                    if attempts >= budget {
                        break 'bypass;
                    }
                    let candidate = bypass(&best_ir, i, o);
                    if candidate.nodes.len() >= best_ir.nodes.len() {
                        continue;
                    }
                    attempts += 1;
                    if fails(&candidate, &best_trace) {
                        best_ir = candidate;
                        improved = true;
                        continue 'bypass;
                    }
                }
            }
            break;
        }

        if !improved || attempts >= budget {
            break;
        }
    }

    ShrinkResult {
        ir: best_ir,
        trace: best_trace,
        attempts,
    }
}

/// The subgraph reachable from `root`, renumbered into a fresh topological
/// order with `root` last (so it becomes `main`).
pub fn slice_to(ir: &ProgramIr, root: usize) -> ProgramIr {
    let mut keep = vec![false; ir.nodes.len()];
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if !keep[i] {
            keep[i] = true;
            stack.extend(ir.nodes[i].operands());
        }
    }
    let mut remap = vec![usize::MAX; ir.nodes.len()];
    let mut nodes = Vec::new();
    for (i, kept) in keep.iter().enumerate() {
        if *kept {
            remap[i] = nodes.len();
            nodes.push(map_operands(&ir.nodes[i], &remap));
        }
    }
    ProgramIr { nodes }
}

/// Rewires every consumer of node `i` to its operand `o` instead, then
/// drops whatever became unreachable from `main`.
fn bypass(ir: &ProgramIr, i: usize, o: usize) -> ProgramIr {
    let main = ir.main();
    if i == main {
        // Bypassing the output node is exactly re-rooting at its operand.
        return slice_to(ir, o);
    }
    let mut nodes = ir.nodes.clone();
    for node in nodes.iter_mut().skip(i + 1) {
        *node = map_operands_with(node, |x| if x == i { o } else { x });
    }
    slice_to(&ProgramIr { nodes }, main)
}

fn map_operands(node: &Node, remap: &[usize]) -> Node {
    map_operands_with(node, |i| remap[i])
}

fn map_operands_with(node: &Node, f: impl Fn(usize) -> usize) -> Node {
    match *node {
        Node::Source(s) => Node::Source(s),
        Node::Lift1(g, a) => Node::Lift1(g, f(a)),
        Node::Lift2(g, a, b) => Node::Lift2(g, f(a), f(b)),
        Node::Foldp(g, init, a) => Node::Foldp(g, init, f(a)),
        Node::Async(a) => Node::Async(f(a)),
        Node::Merge(a, b) => Node::Merge(f(a), f(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Fold, GenConfig, Generator};
    use crate::property::check_property;
    use crate::run::run_local;
    use elm_runtime::EventLimits;

    #[test]
    fn slice_drops_unreachable_nodes() {
        // n0=src, n1=src, n2=lift n0, n3=merge n2 n1, main=n3.
        let ir = ProgramIr {
            nodes: vec![
                Node::Source(0),
                Node::Source(1),
                Node::Lift1(crate::gen::Scalar1::Abs, 0),
                Node::Merge(2, 1),
            ],
        };
        let sliced = slice_to(&ir, 2);
        assert_eq!(
            sliced.nodes,
            vec![Node::Source(0), Node::Lift1(crate::gen::Scalar1::Abs, 0)]
        );
    }

    #[test]
    fn shrinks_a_mutated_counter_to_a_minimal_repro() {
        let g = Generator::new(GenConfig {
            counter_shape: 1.0,
            ..GenConfig::default()
        });
        let s = g.scenario(5, 40);
        let fails = |ir: &ProgramIr, trace: &Trace| {
            if trace.events.is_empty() {
                return false;
            }
            let Some(mutated) = ir.render_mutated() else {
                return false;
            };
            let Ok(run) = run_local(&mutated, trace, EventLimits::default()) else {
                return false;
            };
            check_property(ir.property(), &run.outputs, run.final_value, trace).is_err()
        };
        assert!(fails(&s.ir, &s.trace), "mutation must reproduce pre-shrink");
        let result = shrink(&s.ir, &s.trace, fails, 10_000);
        assert!(result.attempts > 0);
        // Minimal form: one event through one source into the fold.
        assert_eq!(result.trace.events.len(), 1, "{:?}", result.trace);
        assert_eq!(
            result.ir.nodes.len(),
            2,
            "expected source + fold, got {:?}",
            result.ir.nodes
        );
        assert!(matches!(
            result.ir.nodes[1],
            Node::Foldp(Fold::CountUp, 0, 0)
        ));
    }
}
