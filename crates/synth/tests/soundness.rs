//! Generator soundness: every synthesized program goes through the *full*
//! production pipeline (parse → typecheck → compile to a reactive graph)
//! and runs a seeded trace to quiescence without trapping under the
//! default resource budget, satisfying its own temporal property. And
//! when a failure *is* planted (the mutation-tested oracle), the shrinker
//! drives the program+trace pair down to a minimal counterexample.

use elm_runtime::{EventLimits, Trace};
use elm_synth::gen::Fold;
use elm_synth::{check_property, run_local, shrink, GenConfig, Generator, Node, ProgramIr};
use proptest::prelude::*;
use rand::Rng;

/// Arbitrary generator seeds, plus a sweep of tuning knobs so deep,
/// wide, and async-heavy shapes all get exercised.
fn seed_and_config() -> BoxedStrategy<(u64, GenConfig)> {
    BoxedStrategy::from_fn(|rng| {
        let seed: u64 = rng.gen();
        let config = GenConfig {
            max_interior: rng.gen_range(1usize..=20),
            reuse: rng.gen_range(0.0f64..0.8),
            async_density: rng.gen_range(0.0f64..0.5),
            hostile: 0.0, // benign fleet: must never trap
            counter_shape: rng.gen_range(0.0f64..0.5),
        };
        (seed, config)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated program parses, type-checks, compiles to a
    /// reactive graph, and runs its whole trace without trapping under
    /// the default budget — and its output stream satisfies the property
    /// the generator attached to it.
    #[test]
    fn generated_programs_are_sound(case in seed_and_config()) {
        let (seed, config) = case;
        let generator = Generator::new(config);
        let scenario = generator.scenario(seed, 48);
        let run = run_local(&scenario.source, &scenario.trace, EventLimits::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", scenario.source));
        prop_assert!(
            run.traps.is_empty(),
            "seed {} trapped under the default budget: {:?}\n{}",
            seed, run.traps, scenario.source
        );
        if let Err(violation) =
            check_property(scenario.property, &run.outputs, run.final_value, &scenario.trace)
        {
            panic!(
                "seed {seed} violated {:?}: {violation}\n{}",
                scenario.property, scenario.source
            );
        }
    }

    /// The mutation-tested oracle end to end: miscompile the counter
    /// accumulator, confirm the exact-count property catches it, and
    /// check the shrinker minimizes the repro to one fold over one source
    /// driven by a single event.
    #[test]
    fn shrinker_minimizes_planted_violations(seed in BoxedStrategy::from_fn(|rng| rng.gen::<u64>())) {
        let generator = Generator::new(GenConfig { counter_shape: 1.0, ..GenConfig::default() });
        let scenario = generator.scenario(seed, 32);
        let fails = |ir: &ProgramIr, trace: &Trace| {
            if trace.events.is_empty() {
                return false;
            }
            let Some(mutated) = ir.render_mutated() else { return false };
            let Ok(run) = run_local(&mutated, trace, EventLimits::default()) else {
                return false;
            };
            check_property(ir.property(), &run.outputs, run.final_value, trace).is_err()
        };
        prop_assert!(fails(&scenario.ir, &scenario.trace), "seed {} mutation went unnoticed", seed);
        let minimal = shrink(&scenario.ir, &scenario.trace, fails, 10_000);
        prop_assert!(minimal.attempts > 0);
        prop_assert_eq!(minimal.trace.events.len(), 1);
        prop_assert_eq!(minimal.ir.nodes.len(), 2);
        prop_assert!(matches!(minimal.ir.nodes[1], Node::Foldp(Fold::CountUp, 0, 0)));
    }
}

/// Hostile profiles are the one sanctioned exception to "never traps":
/// under a tight budget the trigger event must trap and roll back, and
/// under the default (generous) budget the tower would not even fit — so
/// fleet hosting always pairs hostile shapes with a governor.
#[test]
fn hostile_scenarios_trap_only_on_trigger_events() {
    let generator = Generator::new(GenConfig {
        hostile: 1.0,
        counter_shape: 0.0,
        ..GenConfig::default()
    });
    let tight = EventLimits {
        fuel: 200_000,
        ..EventLimits::default()
    };
    let mut exercised = 0;
    for seed in 0..60u64 {
        let scenario = generator.scenario(seed, 256);
        if !scenario.ir.is_hostile() {
            continue;
        }
        let triggers = scenario
            .trace
            .events
            .iter()
            .filter(|e| e.value == elm_runtime::PlainValue::Int(elm_synth::HOSTILE_TRIGGER))
            .count();
        if triggers == 0 {
            continue;
        }
        let run = run_local(&scenario.source, &scenario.trace, tight).unwrap();
        // Each trigger traps at most once (only when it actually reaches a
        // hostile fold that steps); benign events never trap.
        assert!(
            run.traps.len() <= triggers,
            "seed {seed}: {} traps from {} triggers",
            run.traps.len(),
            triggers
        );
        exercised += 1;
        if exercised >= 8 {
            break;
        }
    }
    assert!(exercised >= 3, "too few hostile scenarios exercised");
}
