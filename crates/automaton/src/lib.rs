//! Discrete Arrowized FRP: Elm's `Automaton` library (paper §4.3).
//!
//! "An `Automaton` is defined as a continuation that when given an input
//! `a`, produces the next continuation and an output `b`:
//! `data Automaton a b = Step (a -> (Automaton a b, b))`."
//!
//! Automatons are *pure data* — no innate dependency on signals — so they
//! can be dynamically created, switched in and out, and collected, giving
//! Elm the expressiveness of Arrowized FRP without signals-of-signals.
//! [`run`] feeds a signal through an automaton (implemented with `foldp`,
//! exactly as in the paper), and [`foldp_via_automaton`] shows the reverse
//! embedding — the two are equally expressive (paper §4.3; property-tested
//! in this crate and benchmarked as experiment E12).
//!
//! ```
//! use elm_automaton::Automaton;
//!
//! let counter = Automaton::state(0i64, |_input: &i64, count| count + 1);
//! let (next, out) = counter.step(&10);
//! assert_eq!(out, 1);
//! let (_, out) = next.step(&99);
//! assert_eq!(out, 2);
//! ```

#![warn(missing_docs)]

use std::sync::Arc;

use elm_signals::{Signal, SignalValue};

/// The continuation type inside an [`Automaton`].
type StepFn<A, B> = Arc<dyn Fn(&A) -> (Automaton<A, B>, B) + Send + Sync>;

/// A stateful stream transducer: one step consumes an `A` and yields the
/// next automaton plus a `B`.
pub struct Automaton<A, B> {
    step: StepFn<A, B>,
}

impl<A, B> Clone for Automaton<A, B> {
    fn clone(&self) -> Self {
        Automaton {
            step: self.step.clone(),
        }
    }
}

impl<A, B> std::fmt::Debug for Automaton<A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Automaton<{}, {}>",
            std::any::type_name::<A>(),
            std::any::type_name::<B>()
        )
    }
}

impl<A: 'static, B: 'static> Automaton<A, B> {
    /// Wraps a raw step function — the `Step` constructor.
    pub fn new(step: impl Fn(&A) -> (Automaton<A, B>, B) + Send + Sync + 'static) -> Self {
        Automaton {
            step: Arc::new(step),
        }
    }

    /// Steps the automaton once — the paper's
    /// `step : a -> Automaton a b -> (Automaton a b, b)`.
    pub fn step(&self, input: &A) -> (Automaton<A, B>, B) {
        (self.step)(input)
    }

    /// A stateless automaton from a pure function — the paper's
    /// `pure : (a -> b) -> Automaton a b`.
    pub fn pure(f: impl Fn(&A) -> B + Send + Sync + 'static) -> Self {
        let f = Arc::new(f);
        fn make<A: 'static, B: 'static>(f: Arc<dyn Fn(&A) -> B + Send + Sync>) -> Automaton<A, B> {
            Automaton::new(move |a| (make(f.clone()), f(a)))
        }
        make(f)
    }

    /// A stateful automaton whose output *is* its state — the paper's
    /// `init : (a -> b -> b) -> b -> Automaton a b` ("notice the
    /// similarity between the types of `init` and `foldp`").
    pub fn state(init: B, f: impl Fn(&A, &B) -> B + Send + Sync + 'static) -> Self
    where
        B: Clone + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        #[allow(clippy::type_complexity)]
        fn make<A: 'static, B: Clone + Send + Sync + 'static>(
            state: B,
            f: Arc<dyn Fn(&A, &B) -> B + Send + Sync>,
        ) -> Automaton<A, B> {
            Automaton::new(move |a| {
                let next = f(a, &state);
                (make(next.clone(), f.clone()), next)
            })
        }
        make(init, f)
    }

    /// A stateful automaton with hidden internal state — Elm's
    /// `hiddenState : s -> (a -> s -> (s, b)) -> Automaton a b`.
    pub fn hidden_state<S: Clone + Send + Sync + 'static>(
        init: S,
        f: impl Fn(&A, &S) -> (S, B) + Send + Sync + 'static,
    ) -> Self {
        let f = Arc::new(f);
        #[allow(clippy::type_complexity)]
        fn make<A: 'static, B: 'static, S: Clone + Send + Sync + 'static>(
            state: S,
            f: Arc<dyn Fn(&A, &S) -> (S, B) + Send + Sync>,
        ) -> Automaton<A, B> {
            Automaton::new(move |a| {
                let (next, out) = f(a, &state);
                (make(next, f.clone()), out)
            })
        }
        make(init, f)
    }

    /// Post-composes another automaton — the arrow `>>>`.
    pub fn then<C: 'static>(self, next: Automaton<B, C>) -> Automaton<A, C> {
        Automaton::new(move |a| {
            let (s1, b) = self.step(a);
            let (s2, c) = next.step(&b);
            (s1.then(s2), c)
        })
    }

    /// Runs two automatons on the same input, pairing outputs — the arrow
    /// `&&&` (fanout).
    pub fn fanout<C: 'static>(self, other: Automaton<A, C>) -> Automaton<A, (B, C)> {
        Automaton::new(move |a| {
            let (s1, b) = self.step(a);
            let (s2, c) = other.step(a);
            (s1.fanout(s2), (b, c))
        })
    }

    /// Routes this automaton over the first component of a pair, passing
    /// the second through unchanged — the arrow `first`.
    pub fn first<C: Clone + 'static>(self) -> Automaton<(A, C), (B, C)> {
        Automaton::new(move |(a, c): &(A, C)| {
            let (next, b) = self.step(a);
            (next.first(), (b, c.clone()))
        })
    }

    /// Routes this automaton over the second component of a pair — the
    /// arrow `second`.
    pub fn second<C: Clone + 'static>(self) -> Automaton<(C, A), (C, B)> {
        Automaton::new(move |(c, a): &(C, A)| {
            let (next, b) = self.step(a);
            (next.second(), (c.clone(), b))
        })
    }

    /// Pre-maps the input — contravariant action.
    pub fn premap<Z: 'static>(
        self,
        f: impl Fn(&Z) -> A + Send + Sync + 'static,
    ) -> Automaton<Z, B> {
        let f = Arc::new(f);
        fn make<Z: 'static, A: 'static, B: 'static>(
            inner: Automaton<A, B>,
            f: Arc<dyn Fn(&Z) -> A + Send + Sync>,
        ) -> Automaton<Z, B> {
            Automaton::new(move |z| {
                let (next, b) = inner.step(&f(z));
                (make(next, f.clone()), b)
            })
        }
        make(self, f)
    }

    /// Feeds a whole input sequence, collecting outputs (a convenience for
    /// tests and batch use).
    pub fn run_iter<'i>(&self, inputs: impl IntoIterator<Item = &'i A>) -> Vec<B>
    where
        A: 'i,
    {
        let mut cur = self.clone();
        let mut out = Vec::new();
        for i in inputs {
            let (next, b) = cur.step(i);
            out.push(b);
            cur = next;
        }
        out
    }
}

impl<A: 'static> Automaton<A, i64> {
    /// Counts inputs — Elm's `count : Automaton a Int`.
    pub fn count() -> Automaton<A, i64> {
        Automaton::state(0i64, |_a, n| n + 1)
    }
}

/// An automaton over cloneable outputs: the `map_output` combinator lives
/// here so the base type carries no `Clone` bounds (C-STRUCT-BOUNDS).
impl<A: 'static, B: Clone + 'static> Automaton<A, B> {
    /// Maps the output with a pure function.
    pub fn map_output<C: 'static>(
        self,
        f: impl Fn(&B) -> C + Send + Sync + 'static,
    ) -> Automaton<A, C> {
        let f = Arc::new(f);
        fn make<A: 'static, B: Clone + 'static, C: 'static>(
            inner: Automaton<A, B>,
            f: Arc<dyn Fn(&B) -> C + Send + Sync>,
        ) -> Automaton<A, C> {
            Automaton::new(move |a| {
                let (next, b) = inner.step(a);
                (make(next, f.clone()), f(&b))
            })
        }
        make(self, f)
    }
}

/// Runs each automaton in the list on the same input — Elm's
/// `combine : [Automaton a b] -> Automaton a [b]`, the basis for dynamic
/// collections of graphical components.
pub fn combine<A: 'static, B: 'static>(autos: Vec<Automaton<A, B>>) -> Automaton<A, Vec<B>> {
    Automaton::new(move |a| {
        let mut nexts = Vec::with_capacity(autos.len());
        let mut outs = Vec::with_capacity(autos.len());
        for auto in &autos {
            let (n, b) = auto.step(a);
            nexts.push(n);
            outs.push(b);
        }
        (combine(nexts), outs)
    })
}

/// Feeds a signal through an automaton — the paper's
/// `run : Automaton a b -> b -> Signal a -> Signal b`, implemented with
/// `foldp` exactly as printed in §4.3.
pub fn run<A, B>(automaton: Automaton<A, B>, base: B, inputs: &Signal<A>) -> Signal<B>
where
    A: SignalValue,
    B: SignalValue,
{
    inputs
        .foldp(
            elm_signals::Opaque((automaton, base)),
            |input, elm_signals::Opaque((auto, _prev))| {
                let (next, out) = auto.step(&input);
                elm_signals::Opaque((next, out))
            },
        )
        .map(|elm_signals::Opaque((_auto, out))| out)
}

/// The reverse embedding: `foldp f base inputs = run (init f base) base
/// inputs` (paper §4.3) — `foldp` expressed with automatons.
pub fn foldp_via_automaton<A, B>(
    f: impl Fn(&A, &B) -> B + Send + Sync + 'static,
    base: B,
    inputs: &Signal<A>,
) -> Signal<B>
where
    A: SignalValue,
    B: SignalValue,
{
    let base2 = base.clone();
    run(Automaton::state(base, f), base2, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elm_signals::{Engine, SignalNetwork};

    #[test]
    fn pure_is_stateless() {
        let double = Automaton::pure(|x: &i64| x * 2);
        assert_eq!(double.run_iter([&1, &2, &3]), vec![2, 4, 6]);
        // Re-running from the original yields the same outputs (purity).
        assert_eq!(double.run_iter([&1, &2, &3]), vec![2, 4, 6]);
    }

    #[test]
    fn state_threads_its_accumulator() {
        let sum = Automaton::state(0i64, |x: &i64, acc| acc + x);
        assert_eq!(sum.run_iter([&1, &2, &3]), vec![1, 3, 6]);
    }

    #[test]
    fn hidden_state_differs_from_output() {
        // Emit the *previous* input; state hides one value.
        let delay = Automaton::hidden_state(0i64, |x: &i64, prev| (*x, *prev));
        assert_eq!(delay.run_iter([&10, &20, &30]), vec![0, 10, 20]);
    }

    #[test]
    fn composition_and_fanout() {
        let inc = Automaton::pure(|x: &i64| x + 1);
        let double = Automaton::pure(|x: &i64| x * 2);
        let both = inc.clone().then(double.clone());
        assert_eq!(both.run_iter([&1, &2]), vec![4, 6]);
        let pair = inc.fanout(double);
        assert_eq!(pair.run_iter([&3]), vec![(4, 6)]);
    }

    #[test]
    fn arrow_identity_and_associativity() {
        let id = Automaton::pure(|x: &i64| *x);
        let f = Automaton::pure(|x: &i64| x + 10);
        let g = Automaton::pure(|x: &i64| x * 3);
        let h = Automaton::pure(|x: &i64| x - 1);
        let inputs = [&1i64, &2, &5, &7];

        // id >>> f == f == f >>> id
        assert_eq!(
            id.clone().then(f.clone()).run_iter(inputs),
            f.run_iter(inputs)
        );
        assert_eq!(f.clone().then(id).run_iter(inputs), f.run_iter(inputs));
        // (f >>> g) >>> h == f >>> (g >>> h)
        let left = f.clone().then(g.clone()).then(h.clone());
        let right = f.then(g.then(h));
        assert_eq!(left.run_iter(inputs), right.run_iter(inputs));
    }

    #[test]
    fn first_and_second_satisfy_the_exchange_laws() {
        let f = Automaton::pure(|x: &i64| x + 1);
        let inputs: Vec<(i64, i64)> = vec![(1, 10), (2, 20), (3, 30)];
        let refs: Vec<&(i64, i64)> = inputs.iter().collect();

        // first f leaves the second component untouched.
        assert_eq!(
            f.clone().first::<i64>().run_iter(refs.clone()),
            vec![(2, 10), (3, 20), (4, 30)]
        );
        // second f leaves the first component untouched.
        let swapped: Vec<(i64, i64)> = vec![(10, 1), (20, 2), (30, 3)];
        let srefs: Vec<&(i64, i64)> = swapped.iter().collect();
        assert_eq!(
            f.clone().second::<i64>().run_iter(srefs),
            vec![(10, 2), (20, 3), (30, 4)]
        );
        // first (f >>> g) == first f >>> first g on stateful automatons.
        let g = Automaton::state(0i64, |x: &i64, acc| acc + x);
        let lhs = f.clone().then(g.clone()).first::<i64>();
        let rhs = f.clone().first::<i64>().then(g.first::<i64>());
        assert_eq!(lhs.run_iter(refs.clone()), rhs.run_iter(refs));
    }

    #[test]
    fn combine_runs_a_dynamic_collection() {
        let autos = vec![
            Automaton::pure(|x: &i64| x + 1),
            Automaton::state(0i64, |x: &i64, acc| acc + x),
            Automaton::count(),
        ];
        let all = combine(autos);
        assert_eq!(all.run_iter([&5, &7]), vec![vec![6, 5, 1], vec![8, 12, 2]]);
    }

    #[test]
    fn premap_and_map_output() {
        let count_evens = Automaton::<bool, i64>::count()
            .premap(|x: &i64| x % 2 == 0)
            .map_output(|n| n * 100);
        // Counts all inputs (count ignores its input value).
        assert_eq!(count_evens.run_iter([&2i64, &3, &4]), vec![100, 200, 300]);
    }

    #[test]
    fn run_drives_an_automaton_with_a_signal() {
        let mut net = SignalNetwork::new();
        let (keys, hk) = net.input::<i64>("keys", 0);
        let counted = run(Automaton::count(), 0, &keys);
        let prog = net.program(&counted).unwrap();
        let mut r = prog.start(Engine::Synchronous);
        for k in [65i64, 66, 67] {
            r.send(&hk, k).unwrap();
        }
        assert_eq!(r.drain_changes().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn foldp_equals_run_init() {
        // The paper's equivalence, checked on a shared trace.
        let trace: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6];

        let build = |use_automaton: bool| {
            let mut net = SignalNetwork::new();
            let (input, h) = net.input::<i64>("input", 0);
            let sig = if use_automaton {
                foldp_via_automaton(|x: &i64, acc: &i64| acc + x, 0, &input)
            } else {
                input.foldp(0i64, |x, acc| acc + x)
            };
            let prog = net.program(&sig).unwrap();
            let mut r = prog.start(Engine::Synchronous);
            for v in &trace {
                r.send(&h, *v).unwrap();
            }
            r.drain_changes().unwrap()
        };

        assert_eq!(build(true), build(false));
    }
}
