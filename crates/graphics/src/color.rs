//! Colors, after Elm's `Color` library.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An sRGB color with alpha.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Color {
    /// Red, 0–255.
    pub r: u8,
    /// Green, 0–255.
    pub g: u8,
    /// Blue, 0–255.
    pub b: u8,
    /// Alpha, 0.0 (transparent) – 1.0 (opaque).
    pub a: f32,
}

impl Color {
    /// Opaque color from byte channels — Elm's `rgb`.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b, a: 1.0 }
    }

    /// Color with explicit alpha — Elm's `rgba`.
    pub const fn rgba(r: u8, g: u8, b: u8, a: f32) -> Color {
        Color { r, g, b, a }
    }

    /// Color from hue (degrees), saturation, and value in `[0, 1]` —
    /// Elm's `hsv`.
    pub fn hsv(hue: f64, saturation: f64, value: f64) -> Color {
        let h = hue.rem_euclid(360.0) / 60.0;
        let c = value * saturation;
        let x = c * (1.0 - (h.rem_euclid(2.0) - 1.0).abs());
        let (r1, g1, b1) = match h as u32 {
            0 => (c, x, 0.0),
            1 => (x, c, 0.0),
            2 => (0.0, c, x),
            3 => (0.0, x, c),
            4 => (x, 0.0, c),
            _ => (c, 0.0, x),
        };
        let m = value - c;
        let to_byte = |v: f64| ((v + m).clamp(0.0, 1.0) * 255.0).round() as u8;
        Color::rgb(to_byte(r1), to_byte(g1), to_byte(b1))
    }

    /// Returns the same color with a different alpha.
    pub fn with_alpha(self, a: f32) -> Color {
        Color { a, ..self }
    }

    /// CSS encoding (`rgba(r,g,b,a)`), as the HTML renderer emits it.
    pub fn to_css(self) -> String {
        format!("rgba({},{},{},{})", self.r, self.g, self.b, self.a)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:02x}{:02x}{:02x}", self.r, self.g, self.b)?;
        if self.a != 1.0 {
            write!(f, "@{:.2}", self.a)?;
        }
        Ok(())
    }
}

/// Named colors matching Elm's standard palette (subset).
pub mod palette {
    use super::Color;

    /// Pure red.
    pub const RED: Color = Color::rgb(204, 0, 0);
    /// Pure green.
    pub const GREEN: Color = Color::rgb(115, 210, 22);
    /// Pure blue.
    pub const BLUE: Color = Color::rgb(52, 101, 164);
    /// Yellow.
    pub const YELLOW: Color = Color::rgb(237, 212, 0);
    /// Orange.
    pub const ORANGE: Color = Color::rgb(245, 121, 0);
    /// Purple.
    pub const PURPLE: Color = Color::rgb(117, 80, 123);
    /// Black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// White.
    pub const WHITE: Color = Color::rgb(255, 255, 255);
    /// Mid gray.
    pub const GRAY: Color = Color::rgb(211, 215, 207);
    /// Charcoal.
    pub const CHARCOAL: Color = Color::rgb(85, 87, 83);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_and_alpha() {
        let c = Color::rgb(10, 20, 30);
        assert_eq!(c.a, 1.0);
        assert_eq!(c.with_alpha(0.5).a, 0.5);
        assert_eq!(c.to_css(), "rgba(10,20,30,1)");
    }

    #[test]
    fn hsv_primaries() {
        assert_eq!(Color::hsv(0.0, 1.0, 1.0), Color::rgb(255, 0, 0));
        assert_eq!(Color::hsv(120.0, 1.0, 1.0), Color::rgb(0, 255, 0));
        assert_eq!(Color::hsv(240.0, 1.0, 1.0), Color::rgb(0, 0, 255));
        // Hue wraps.
        assert_eq!(Color::hsv(360.0, 1.0, 1.0), Color::hsv(0.0, 1.0, 1.0));
        // Zero saturation is grayscale regardless of hue.
        assert_eq!(Color::hsv(77.0, 0.0, 0.5), Color::hsv(200.0, 0.0, 0.5));
    }

    #[test]
    fn display_format() {
        assert_eq!(palette::BLACK.to_string(), "#000000");
        assert_eq!(Color::rgba(255, 0, 0, 0.25).to_string(), "#ff0000@0.25");
    }
}
