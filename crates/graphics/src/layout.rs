//! The layout solver: elements to absolutely positioned primitives.
//!
//! Layout is a pure function from an [`Element`] tree to a [`DisplayList`]
//! of screen-coordinate primitives (origin top-left, y down). Renderers —
//! HTML, SVG, ASCII — consume the display list, so layout logic exists in
//! exactly one place and is directly testable, which is the point of the
//! paper's "purely functional graphical layout".

use serde::{Deserialize, Serialize};

use crate::color::Color;
use crate::element::{Direction, Element, ElementKind, ImageFit};
use crate::form::{FillStyle, Form, FormKind, Point};
use crate::text::Text;

/// An absolutely positioned primitive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Placed {
    /// X of the top-left corner, in screen pixels.
    pub x: i32,
    /// Y of the top-left corner, in screen pixels.
    pub y: i32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Effective opacity (product of ancestors').
    pub opacity: f32,
    /// What to draw.
    pub primitive: Primitive,
}

/// Drawable primitives after layout.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Primitive {
    /// A filled rectangle (element backgrounds).
    Fill(Color),
    /// Text anchored at the placed box's top-left.
    Text(Text),
    /// An image.
    Image {
        /// Fit mode.
        fit: ImageFit,
        /// Source.
        src: String,
    },
    /// A video player.
    Video {
        /// Source.
        src: String,
    },
    /// One stroked/filled form, already transformed to *screen*
    /// coordinates (y down); the placed box is the collage's box.
    Form(ScreenForm),
}

/// A form flattened into screen coordinates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScreenForm {
    /// Effective alpha.
    pub alpha: f32,
    /// The drawing, with all points mapped to screen pixels.
    pub kind: ScreenFormKind,
}

/// Screen-space form payloads.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScreenFormKind {
    /// Stroke a polyline.
    Line {
        /// Stroke style.
        style: crate::form::LineStyle,
        /// Screen-space points.
        points: Vec<Point>,
    },
    /// Fill/outline a polygon.
    Shape {
        /// Style.
        style: FillStyle,
        /// Screen-space vertices.
        points: Vec<Point>,
    },
    /// Text centered at a screen point.
    Text {
        /// The text.
        text: Text,
        /// Center position.
        at: Point,
        /// Rotation (radians, screen sense).
        theta: f64,
    },
    /// An image centered at a screen point.
    Image {
        /// Width after scaling.
        width: f64,
        /// Height after scaling.
        height: f64,
        /// Source.
        src: String,
        /// Center position.
        at: Point,
        /// Rotation (radians, screen sense).
        theta: f64,
    },
}

/// The output of layout: primitives in back-to-front paint order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DisplayList {
    /// Primitives, first painted first.
    pub items: Vec<Placed>,
    /// Total width of the laid-out scene.
    pub width: u32,
    /// Total height of the laid-out scene.
    pub height: u32,
}

impl DisplayList {
    /// Primitives overlapping the given point (hit testing), topmost last.
    pub fn hits(&self, x: i32, y: i32) -> Vec<&Placed> {
        self.items
            .iter()
            .filter(|p| {
                x >= p.x && y >= p.y && x < p.x + p.width as i32 && y < p.y + p.height as i32
            })
            .collect()
    }
}

/// Lays out an element tree into a display list.
pub fn layout(root: &Element) -> DisplayList {
    let mut out = DisplayList {
        items: Vec::new(),
        width: root.width,
        height: root.height,
    };
    place(root, 0, 0, 1.0, &mut out);
    out
}

fn place(e: &Element, x: i32, y: i32, opacity: f32, out: &mut DisplayList) {
    let opacity = opacity * e.opacity;
    if let Some(color) = e.background {
        out.items.push(Placed {
            x,
            y,
            width: e.width,
            height: e.height,
            opacity,
            primitive: Primitive::Fill(color),
        });
    }
    match &e.kind {
        ElementKind::Spacer => {}
        ElementKind::Text(t) => out.items.push(Placed {
            x,
            y,
            width: e.width,
            height: e.height,
            opacity,
            primitive: Primitive::Text(t.clone()),
        }),
        ElementKind::Image { fit, src } => out.items.push(Placed {
            x,
            y,
            width: e.width,
            height: e.height,
            opacity,
            primitive: Primitive::Image {
                fit: *fit,
                src: src.clone(),
            },
        }),
        ElementKind::Video { src } => out.items.push(Placed {
            x,
            y,
            width: e.width,
            height: e.height,
            opacity,
            primitive: Primitive::Video { src: src.clone() },
        }),
        ElementKind::Container { position, child } => {
            let (dx, dy) = position.resolve(e.width, e.height, child.width, child.height);
            place(child, x + dx, y + dy, opacity, out);
        }
        ElementKind::Flow {
            direction,
            children,
        } => {
            let mut cx = x;
            let mut cy = y;
            match direction {
                Direction::Down => {
                    for c in children {
                        place(c, cx, cy, opacity, out);
                        cy += c.height as i32;
                    }
                }
                Direction::Up => {
                    let mut cursor = y + e.height as i32;
                    for c in children {
                        cursor -= c.height as i32;
                        place(c, cx, cursor, opacity, out);
                    }
                }
                Direction::Right => {
                    for c in children {
                        place(c, cx, cy, opacity, out);
                        cx += c.width as i32;
                    }
                }
                Direction::Left => {
                    let mut cursor = x + e.width as i32;
                    for c in children {
                        cursor -= c.width as i32;
                        place(c, cursor, cy, opacity, out);
                    }
                }
                Direction::Inward | Direction::Outward => {
                    // Inward: later children on top (paint later).
                    // Outward: earlier children on top.
                    let ordered: Vec<&Element> = match direction {
                        Direction::Inward => children.iter().collect(),
                        _ => children.iter().rev().collect(),
                    };
                    for c in ordered {
                        place(c, cx, cy, opacity, out);
                    }
                }
            }
        }
        ElementKind::Collage { forms } => {
            let center = (
                x as f64 + e.width as f64 / 2.0,
                y as f64 + e.height as f64 / 2.0,
            );
            for f in forms {
                flatten_form(f, center, 1.0, out, x, y, e.width, e.height, opacity);
            }
        }
    }
}

/// Maps a collage point (origin center, y up) to screen coordinates.
fn to_screen(center: Point, p: Point) -> Point {
    (center.0 + p.0, center.1 - p.1)
}

#[allow(clippy::too_many_arguments)]
fn flatten_form(
    f: &Form,
    center: Point,
    parent_alpha: f32,
    out: &mut DisplayList,
    box_x: i32,
    box_y: i32,
    box_w: u32,
    box_h: u32,
    opacity: f32,
) {
    let alpha = parent_alpha * f.alpha;
    let placed = |primitive: Primitive, out: &mut DisplayList| {
        out.items.push(Placed {
            x: box_x,
            y: box_y,
            width: box_w,
            height: box_h,
            opacity,
            primitive,
        });
    };
    match &f.kind {
        FormKind::Line { style, path } => {
            let points = path
                .points
                .iter()
                .map(|&p| to_screen(center, f.apply(p)))
                .collect();
            placed(
                Primitive::Form(ScreenForm {
                    alpha,
                    kind: ScreenFormKind::Line {
                        style: style.clone(),
                        points,
                    },
                }),
                out,
            );
        }
        FormKind::Shape { style, shape } => {
            let points = shape
                .points
                .iter()
                .map(|&p| to_screen(center, f.apply(p)))
                .collect();
            placed(
                Primitive::Form(ScreenForm {
                    alpha,
                    kind: ScreenFormKind::Shape {
                        style: style.clone(),
                        points,
                    },
                }),
                out,
            );
        }
        FormKind::Text(t) => {
            let at = to_screen(center, f.apply((0.0, 0.0)));
            placed(
                Primitive::Form(ScreenForm {
                    alpha,
                    kind: ScreenFormKind::Text {
                        text: t.clone(),
                        at,
                        theta: -f.theta,
                    },
                }),
                out,
            );
        }
        FormKind::Image { width, height, src } => {
            let at = to_screen(center, f.apply((0.0, 0.0)));
            placed(
                Primitive::Form(ScreenForm {
                    alpha,
                    kind: ScreenFormKind::Image {
                        width: width * f.scale,
                        height: height * f.scale,
                        src: src.clone(),
                        at,
                        theta: -f.theta,
                    },
                }),
                out,
            );
        }
        FormKind::Group(children) => {
            for c in children {
                // Compose the group transform with the child's by applying
                // the group transform to the child's already-transformed
                // points: build a synthetic child whose transform is the
                // composition.
                let composed = compose(f, c);
                flatten_form(
                    &composed, center, alpha, out, box_x, box_y, box_w, box_h, opacity,
                );
            }
        }
    }
}

/// Composes an outer transform with a child form: the result applies
/// `child` then `outer`.
fn compose(outer: &Form, child: &Form) -> Form {
    let (ox, oy) = outer.apply((child.x, child.y));
    Form {
        x: ox,
        y: oy,
        theta: outer.theta + child.theta,
        scale: outer.scale * child.scale,
        alpha: child.alpha,
        kind: child.kind.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::palette;
    use crate::element::{collage, flow};
    use crate::form::{degrees, square};
    use crate::position::Position;

    #[test]
    fn container_centers_child_in_display_list() {
        // Paper Example 1's container 180 100 middle …
        let child = Element::plain_text("Welcome to Elm!");
        let (cw, ch) = (child.width, child.height);
        let main = Element::container(180, 100, Position::MIDDLE, child);
        let dl = layout(&main);
        assert_eq!(dl.items.len(), 1);
        let item = &dl.items[0];
        assert_eq!(item.x, (180 - cw as i32) / 2);
        assert_eq!(item.y, (100 - ch as i32) / 2);
    }

    #[test]
    fn flow_down_stacks_without_overlap() {
        let e = flow(
            Direction::Down,
            vec![
                Element::spacer(10, 20).with_background(palette::RED),
                Element::spacer(10, 30).with_background(palette::BLUE),
            ],
        );
        let dl = layout(&e);
        assert_eq!(dl.items[0].y, 0);
        assert_eq!(dl.items[1].y, 20);
        assert_eq!(dl.height, 50);
    }

    #[test]
    fn flow_up_and_left_reverse_cursor() {
        let e = flow(
            Direction::Up,
            vec![
                Element::spacer(10, 20).with_background(palette::RED),
                Element::spacer(10, 30).with_background(palette::BLUE),
            ],
        );
        let dl = layout(&e);
        // First child at the bottom.
        assert_eq!(dl.items[0].y, 30);
        assert_eq!(dl.items[1].y, 0);

        let e = flow(
            Direction::Left,
            vec![
                Element::spacer(20, 10).with_background(palette::RED),
                Element::spacer(30, 10).with_background(palette::BLUE),
            ],
        );
        let dl = layout(&e);
        assert_eq!(dl.items[0].x, 30);
        assert_eq!(dl.items[1].x, 0);
    }

    #[test]
    fn layering_order_matches_direction() {
        let top = Element::spacer(5, 5).with_background(palette::RED);
        let bottom = Element::spacer(5, 5).with_background(palette::BLUE);
        let inward = flow(Direction::Inward, vec![bottom.clone(), top.clone()]);
        let dl = layout(&inward);
        // Later child painted last (on top).
        assert_eq!(dl.items[1].primitive, Primitive::Fill(palette::RED));
        let outward = flow(Direction::Outward, vec![top, bottom]);
        let dl = layout(&outward);
        assert_eq!(dl.items[1].primitive, Primitive::Fill(palette::RED));
    }

    #[test]
    fn opacity_multiplies_down_the_tree() {
        let inner = Element::spacer(5, 5)
            .with_background(palette::RED)
            .with_opacity(0.5);
        let outer = Element::container(10, 10, Position::TOP_LEFT, inner).with_opacity(0.5);
        let dl = layout(&outer);
        assert!((dl.items[0].opacity - 0.25).abs() < 1e-6);
    }

    #[test]
    fn collage_converts_to_screen_coordinates() {
        // A unit square moved up-right in collage space must appear
        // up-right of the collage center in screen space (y flipped).
        let f = Form::filled(palette::RED, square(2.0)).shifted(10.0, 10.0);
        let e = collage(100, 100, vec![f]);
        let dl = layout(&e);
        let Primitive::Form(sf) = &dl.items[0].primitive else {
            panic!()
        };
        let ScreenFormKind::Shape { points, .. } = &sf.kind else {
            panic!()
        };
        let cx = points.iter().map(|p| p.0).sum::<f64>() / points.len() as f64;
        let cy = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
        assert!((cx - 60.0).abs() < 1e-9);
        assert!((cy - 40.0).abs() < 1e-9);
    }

    #[test]
    fn groups_compose_transforms() {
        let child = Form::filled(palette::RED, square(2.0)).shifted(10.0, 0.0);
        let g = Form::group(vec![child]).rotated(degrees(90.0));
        let e = collage(100, 100, vec![g]);
        let dl = layout(&e);
        let Primitive::Form(sf) = &dl.items[0].primitive else {
            panic!()
        };
        let ScreenFormKind::Shape { points, .. } = &sf.kind else {
            panic!()
        };
        // Collage-space center after rotation: (0, 10); screen: (50, 40).
        let cx = points.iter().map(|p| p.0).sum::<f64>() / points.len() as f64;
        let cy = points.iter().map(|p| p.1).sum::<f64>() / points.len() as f64;
        assert!((cx - 50.0).abs() < 1e-9, "{cx}");
        assert!((cy - 40.0).abs() < 1e-9, "{cy}");
    }

    #[test]
    fn hit_testing_finds_overlapping_primitives() {
        let e = flow(
            Direction::Down,
            vec![
                Element::spacer(10, 10).with_background(palette::RED),
                Element::spacer(10, 10).with_background(palette::BLUE),
            ],
        );
        let dl = layout(&e);
        assert_eq!(dl.hits(5, 5).len(), 1);
        assert_eq!(dl.hits(5, 15).len(), 1);
        assert_eq!(dl.hits(50, 50).len(), 0);
    }
}
