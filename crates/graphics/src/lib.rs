//! Purely functional graphical layout — Elm's Elements and Forms
//! (paper §2 Example 1, §4.1, Fig. 12).
//!
//! Two composable layers:
//!
//! * **[`Element`]** — rectangles of known size: text, images, containers,
//!   and `flow` stacking. "Values of type Element occupy a rectangular
//!   area of the screen when displayed, making Elements easy to compose."
//! * **[`Form`]** — free-form 2D shapes (lines, polygons, text, images)
//!   that can be moved, rotated, scaled, and combined with
//!   [`collage`] into an `Element`.
//!
//! Layout is a pure function ([`layout::layout`]) producing a
//! [`layout::DisplayList`], rendered to HTML ([`render::html`]), SVG
//! ([`render::svg`]), or an ASCII raster ([`render::ascii`] — the headless
//! substitute for a browser screen; see DESIGN.md).
//!
//! ```
//! use elm_graphics::{flow, Direction, Element, Position};
//!
//! // Paper Example 1.
//! let content = flow(Direction::Down, vec![
//!     Element::plain_text("Welcome to Elm!"),
//!     Element::image(150, 50, "flower.jpg"),
//!     Element::as_text("[9, 8, 7, 6, 5, 4, 3, 2, 1]"),
//! ]);
//! let main = Element::container(180, 100, Position::MIDDLE, content);
//! let html = elm_graphics::render::html::to_html_page("quickstart", &main);
//! assert!(html.contains("Welcome to Elm!"));
//! ```

#![warn(missing_docs)]

pub mod color;
pub mod element;
pub mod form;
pub mod layout;
pub mod position;
pub mod render;
pub mod text;

pub use color::{palette, Color};
pub use element::{collage, flow, layers, Direction, Element, ElementKind, ImageFit};
pub use form::{
    circle, dashed, degrees, dotted, ngon, oval, path, polygon, rect, segment, solid, square,
    turns, FillStyle, Form, FormKind, LineCap, LineStyle, Path, Point, Shape,
};
pub use layout::{layout, DisplayList, Placed, Primitive};
pub use position::{Align, Position};
pub use text::Text;
