//! Styled text, after Elm's `Text` library.
//!
//! **Font-metric substitution** (see DESIGN.md): a browser measures text
//! with real font metrics; headless we use a fixed-metric model — every
//! glyph is `0.6 × size` wide and a line is `1.2 × size` tall. The layout
//! engine is exact with respect to this model, so all layout invariants
//! are still meaningfully tested.

use serde::{Deserialize, Serialize};

use crate::color::Color;

/// Default font size in pixels.
pub const DEFAULT_SIZE: u32 = 14;

/// Width of one glyph as a fraction of the font size.
pub const GLYPH_WIDTH_RATIO: f64 = 0.6;

/// Line height as a fraction of the font size.
pub const LINE_HEIGHT_RATIO: f64 = 1.2;

/// A run of styled text (possibly multi-line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Text {
    /// The text content; `\n` separates lines.
    pub content: String,
    /// Font size in pixels.
    pub size: u32,
    /// Bold?
    pub bold: bool,
    /// Italic?
    pub italic: bool,
    /// Monospace?
    pub monospace: bool,
    /// Foreground color, if set.
    pub color: Option<Color>,
    /// Hyperlink target, if any.
    pub href: Option<String>,
}

impl Text {
    /// Plain text with default styling — Elm's `toText`.
    pub fn plain(content: impl Into<String>) -> Text {
        Text {
            content: content.into(),
            size: DEFAULT_SIZE,
            bold: false,
            italic: false,
            monospace: false,
            color: None,
            href: None,
        }
    }

    /// Monospace text — Elm's `monospace` (used by `asText`).
    pub fn code(content: impl Into<String>) -> Text {
        Text {
            monospace: true,
            ..Text::plain(content)
        }
    }

    /// Returns bold text — Elm's `bold`.
    pub fn bold(mut self) -> Text {
        self.bold = true;
        self
    }

    /// Returns italic text — Elm's `italic`.
    pub fn italic(mut self) -> Text {
        self.italic = true;
        self
    }

    /// Sets the font size — Elm's `Text.height`.
    pub fn size(mut self, size: u32) -> Text {
        self.size = size;
        self
    }

    /// Sets the color — Elm's `Text.color`.
    pub fn color(mut self, color: Color) -> Text {
        self.color = Some(color);
        self
    }

    /// Turns the text into a link — Elm's `Text.link`.
    pub fn link(mut self, href: impl Into<String>) -> Text {
        self.href = Some(href.into());
        self
    }

    /// The lines of the text.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.content.split('\n')
    }

    /// Measured size `(width, height)` in pixels under the fixed-metric
    /// model (see module docs).
    pub fn measure(&self) -> (u32, u32) {
        let longest = self.lines().map(|l| l.chars().count()).max().unwrap_or(0);
        let line_count = self.lines().count().max(1);
        let w = (longest as f64 * self.size as f64 * GLYPH_WIDTH_RATIO).ceil() as u32;
        let h = (line_count as f64 * self.size as f64 * LINE_HEIGHT_RATIO).ceil() as u32;
        (w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::palette;

    #[test]
    fn builder_style_composition() {
        let t = Text::plain("hi")
            .bold()
            .italic()
            .size(20)
            .color(palette::RED);
        assert!(t.bold && t.italic);
        assert_eq!(t.size, 20);
        assert_eq!(t.color, Some(palette::RED));
    }

    #[test]
    fn measurement_follows_fixed_metrics() {
        let t = Text::plain("hello").size(10);
        // 5 chars * 10px * 0.6 = 30; 1 line * 10px * 1.2 = 12.
        assert_eq!(t.measure(), (30, 12));
        let multi = Text::plain("ab\nlonger line").size(10);
        let (w, h) = multi.measure();
        assert_eq!(w, (11.0f64 * 10.0 * 0.6).ceil() as u32);
        assert_eq!(h, 24);
    }

    #[test]
    fn empty_text_still_has_line_height() {
        let t = Text::plain("");
        let (w, h) = t.measure();
        assert_eq!(w, 0);
        assert!(h > 0);
    }
}
