//! Positions within a container (paper §2: "Elm provides a simple
//! abstraction, allowing the position of content within a container to be
//! specified as `topLeft`, `midTop`, `topRight`, `midLeft`, `middle`, and
//! so on").

use serde::{Deserialize, Serialize};

/// Alignment along one axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Left / top.
    Near,
    /// Centered.
    Mid,
    /// Right / bottom.
    Far,
}

/// A position inside a container: an alignment pair plus pixel offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Position {
    /// Horizontal alignment.
    pub horizontal: Align,
    /// Vertical alignment.
    pub vertical: Align,
    /// Extra x offset in pixels (to the right).
    pub dx: i32,
    /// Extra y offset in pixels (downward).
    pub dy: i32,
}

impl Position {
    /// `topLeft`.
    pub const TOP_LEFT: Position = Position::new(Align::Near, Align::Near);
    /// `midTop`.
    pub const MID_TOP: Position = Position::new(Align::Mid, Align::Near);
    /// `topRight`.
    pub const TOP_RIGHT: Position = Position::new(Align::Far, Align::Near);
    /// `midLeft`.
    pub const MID_LEFT: Position = Position::new(Align::Near, Align::Mid);
    /// `middle`.
    pub const MIDDLE: Position = Position::new(Align::Mid, Align::Mid);
    /// `midRight`.
    pub const MID_RIGHT: Position = Position::new(Align::Far, Align::Mid);
    /// `bottomLeft`.
    pub const BOTTOM_LEFT: Position = Position::new(Align::Near, Align::Far);
    /// `midBottom`.
    pub const MID_BOTTOM: Position = Position::new(Align::Mid, Align::Far);
    /// `bottomRight`.
    pub const BOTTOM_RIGHT: Position = Position::new(Align::Far, Align::Far);

    /// A position from alignments with zero offsets.
    pub const fn new(horizontal: Align, vertical: Align) -> Position {
        Position {
            horizontal,
            vertical,
            dx: 0,
            dy: 0,
        }
    }

    /// Adds pixel offsets — Elm's `moveBy`-style adjustment.
    pub fn offset(mut self, dx: i32, dy: i32) -> Position {
        self.dx += dx;
        self.dy += dy;
        self
    }

    /// Resolves the child's top-left corner inside a `(cw, ch)` container
    /// for a child of size `(w, h)`.
    pub fn resolve(&self, cw: u32, ch: u32, w: u32, h: u32) -> (i32, i32) {
        let place = |align: Align, outer: u32, inner: u32| -> i32 {
            match align {
                Align::Near => 0,
                Align::Mid => (outer as i64 - inner as i64) as i32 / 2,
                Align::Far => (outer as i64 - inner as i64) as i32,
            }
        };
        (
            place(self.horizontal, cw, w) + self.dx,
            place(self.vertical, ch, h) + self.dy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn middle_centers_the_child() {
        assert_eq!(Position::MIDDLE.resolve(180, 100, 80, 40), (50, 30));
    }

    #[test]
    fn corners_and_edges() {
        assert_eq!(Position::TOP_LEFT.resolve(100, 100, 20, 20), (0, 0));
        assert_eq!(Position::TOP_RIGHT.resolve(100, 100, 20, 20), (80, 0));
        assert_eq!(Position::BOTTOM_LEFT.resolve(100, 100, 20, 20), (0, 80));
        assert_eq!(Position::BOTTOM_RIGHT.resolve(100, 100, 20, 20), (80, 80));
        assert_eq!(Position::MID_TOP.resolve(100, 100, 20, 20), (40, 0));
        assert_eq!(Position::MID_BOTTOM.resolve(100, 100, 20, 20), (40, 80));
    }

    #[test]
    fn offsets_apply_after_alignment() {
        let p = Position::TOP_LEFT.offset(5, -3);
        assert_eq!(p.resolve(100, 100, 10, 10), (5, -3));
    }

    #[test]
    fn oversized_children_center_negatively() {
        assert_eq!(Position::MIDDLE.resolve(10, 10, 20, 20), (-5, -5));
    }
}
