//! Elements: rectangular graphical building blocks (paper §4.1).
//!
//! "An element is a rectangle with a known width and height. Elements can
//! contain text, images, or video. They can be easily created and
//! composed." Composition is purely functional: `flow`, `container`,
//! `above`/`below`/`beside`, and sizing functions all build new values.

use serde::{Deserialize, Serialize};

use crate::color::Color;
use crate::form::Form;
use crate::position::Position;
use crate::text::Text;

/// Stacking direction for [`flow`] (paper Example 1 uses `flow down`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Left to right.
    Right,
    /// Right to left.
    Left,
    /// Top to bottom.
    Down,
    /// Bottom to top.
    Up,
    /// All children stacked at the same place, later ones on top.
    Inward,
    /// Like `Inward` but earlier children on top.
    Outward,
}

/// A rectangular graphical element with known dimensions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Opacity, 0.0–1.0.
    pub opacity: f32,
    /// Background color, if any.
    pub background: Option<Color>,
    /// The content.
    pub kind: ElementKind,
}

/// The possible contents of an [`Element`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ElementKind {
    /// Invisible spacing.
    Spacer,
    /// Styled text.
    Text(Text),
    /// An image by source URL, with a fit mode.
    Image {
        /// Fit mode.
        fit: ImageFit,
        /// Source URL / path.
        src: String,
    },
    /// An embedded video by source URL (paper §4.1: "Elements can contain
    /// text, images, or video").
    Video {
        /// Source URL / path.
        src: String,
    },
    /// A child positioned inside a larger box (paper Example 1's
    /// `container 180 100 middle content`).
    Container {
        /// Where the child goes.
        position: Position,
        /// The child element.
        child: Box<Element>,
    },
    /// Children stacked along a direction.
    Flow {
        /// Stacking direction.
        direction: Direction,
        /// The children, in order.
        children: Vec<Element>,
    },
    /// Free-form 2D forms over a local coordinate system (paper §4.1's
    /// `collage`).
    Collage {
        /// The forms, drawn in order.
        forms: Vec<Form>,
    },
}

impl Element {
    fn of(width: u32, height: u32, kind: ElementKind) -> Element {
        Element {
            width,
            height,
            opacity: 1.0,
            background: None,
            kind,
        }
    }

    /// An invisible `w × h` box — Elm's `spacer`.
    pub fn spacer(width: u32, height: u32) -> Element {
        Element::of(width, height, ElementKind::Spacer)
    }

    /// The empty element — Elm's `empty` (a 0×0 spacer).
    pub fn empty() -> Element {
        Element::spacer(0, 0)
    }

    /// A text element sized by the fixed-metric model — Elm's `text`.
    pub fn text(text: Text) -> Element {
        let (w, h) = text.measure();
        Element::of(w, h, ElementKind::Text(text))
    }

    /// Plain unstyled text — Elm's `plainText`.
    pub fn plain_text(s: impl Into<String>) -> Element {
        Element::text(Text::plain(s))
    }

    /// Monospace rendering of a value's text form — Elm's `asText`.
    pub fn as_text(value: impl std::fmt::Display) -> Element {
        Element::text(Text::code(value.to_string()))
    }

    /// A `w × h` image — Elm's `image`.
    pub fn image(width: u32, height: u32, src: impl Into<String>) -> Element {
        Element::of(
            width,
            height,
            ElementKind::Image {
                fit: ImageFit::Plain,
                src: src.into(),
            },
        )
    }

    /// An image scaled to fit without distortion — Elm's `fittedImage`
    /// (paper Example 3 uses `fittedImage 300 200`).
    pub fn fitted_image(width: u32, height: u32, src: impl Into<String>) -> Element {
        Element::of(
            width,
            height,
            ElementKind::Image {
                fit: ImageFit::Fitted,
                src: src.into(),
            },
        )
    }

    /// A `w × h` video player — Elm's `video`.
    pub fn video(width: u32, height: u32, src: impl Into<String>) -> Element {
        Element::of(width, height, ElementKind::Video { src: src.into() })
    }

    /// An image cropped to the box — Elm's `croppedImage` (simplified).
    pub fn cropped_image(width: u32, height: u32, src: impl Into<String>) -> Element {
        Element::of(
            width,
            height,
            ElementKind::Image {
                fit: ImageFit::Cropped,
                src: src.into(),
            },
        )
    }

    /// Positions `child` inside a `w × h` box — Elm's `container`.
    pub fn container(width: u32, height: u32, position: Position, child: Element) -> Element {
        Element::of(
            width,
            height,
            ElementKind::Container {
                position,
                child: Box::new(child),
            },
        )
    }

    /// Returns this element with a changed width. Images scale
    /// proportionally (height adjusts); other elements just change size.
    pub fn with_width(self, width: u32) -> Element {
        let height = match &self.kind {
            ElementKind::Image { .. } if self.width > 0 => {
                ((self.height as u64 * width as u64) / self.width as u64) as u32
            }
            _ => self.height,
        };
        Element {
            width,
            height,
            ..self
        }
    }

    /// Returns this element with a changed height. Images scale
    /// proportionally (width adjusts); other elements just change size.
    pub fn with_height(self, height: u32) -> Element {
        let width = match &self.kind {
            ElementKind::Image { .. } if self.height > 0 => {
                ((self.width as u64 * height as u64) / self.height as u64) as u32
            }
            _ => self.width,
        };
        Element {
            width,
            height,
            ..self
        }
    }

    /// Returns this element resized — Elm's `size`.
    pub fn with_size(self, width: u32, height: u32) -> Element {
        Element {
            width,
            height,
            ..self
        }
    }

    /// Returns this element with a new opacity — Elm's `opacity`.
    pub fn with_opacity(self, opacity: f32) -> Element {
        Element { opacity, ..self }
    }

    /// Returns this element over a colored background — Elm's `color`.
    pub fn with_background(self, color: Color) -> Element {
        Element {
            background: Some(color),
            ..self
        }
    }

    /// Stacks `self` above `other` — Elm's `above`.
    pub fn above(self, other: Element) -> Element {
        flow(Direction::Down, vec![self, other])
    }

    /// Stacks `self` below `other` — Elm's `below`.
    pub fn below(self, other: Element) -> Element {
        flow(Direction::Down, vec![other, self])
    }

    /// Puts `self` to the left of `other` — Elm's `beside`.
    pub fn beside(self, other: Element) -> Element {
        flow(Direction::Right, vec![self, other])
    }
}

/// How an image fills its box.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImageFit {
    /// Stretch to the box.
    Plain,
    /// Scale preserving aspect ratio, letterboxing as needed.
    Fitted,
    /// Crop to the box.
    Cropped,
    /// Tile to fill the box.
    Tiled,
}

/// Composes elements along a direction — Elm's
/// `flow : Direction -> [Element] -> Element` (paper Example 1).
///
/// The composite size follows from the children: stacking vertically, the
/// width is the max child width and the height the sum of child heights;
/// horizontally, vice versa; `Inward`/`Outward` take the max of both.
pub fn flow(direction: Direction, children: Vec<Element>) -> Element {
    let (width, height) = match direction {
        Direction::Down | Direction::Up => (
            children.iter().map(|c| c.width).max().unwrap_or(0),
            children.iter().map(|c| c.height).sum(),
        ),
        Direction::Right | Direction::Left => (
            children.iter().map(|c| c.width).sum(),
            children.iter().map(|c| c.height).max().unwrap_or(0),
        ),
        Direction::Inward | Direction::Outward => (
            children.iter().map(|c| c.width).max().unwrap_or(0),
            children.iter().map(|c| c.height).max().unwrap_or(0),
        ),
    };
    Element {
        width,
        height,
        opacity: 1.0,
        background: None,
        kind: ElementKind::Flow {
            direction,
            children,
        },
    }
}

/// Combines forms into an element — Elm's
/// `collage : Int -> Int -> [Form] -> Element` (paper Fig. 12).
pub fn collage(width: u32, height: u32, forms: Vec<Form>) -> Element {
    Element {
        width,
        height,
        opacity: 1.0,
        background: None,
        kind: ElementKind::Collage { forms },
    }
}

/// Elm's `layers`: stack elements on top of each other.
pub fn layers(children: Vec<Element>) -> Element {
    flow(Direction::Outward, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::Position;

    #[test]
    fn flow_down_sizes_like_paper_example_1() {
        let content = flow(
            Direction::Down,
            vec![
                Element::plain_text("Welcome to Elm!"),
                Element::image(150, 50, "flower.jpg"),
                Element::as_text("[9,8,7,6,5,4,3,2,1]"),
            ],
        );
        // Width is the max of children; height is their sum.
        let kids = match &content.kind {
            ElementKind::Flow { children, .. } => children,
            _ => unreachable!(),
        };
        assert_eq!(content.width, kids.iter().map(|c| c.width).max().unwrap());
        assert_eq!(content.height, kids.iter().map(|c| c.height).sum::<u32>());
        let main = Element::container(180, 100, Position::MIDDLE, content);
        assert_eq!((main.width, main.height), (180, 100));
    }

    #[test]
    fn flow_right_swaps_the_roles() {
        let e = flow(
            Direction::Right,
            vec![Element::spacer(10, 30), Element::spacer(20, 7)],
        );
        assert_eq!((e.width, e.height), (30, 30));
    }

    #[test]
    fn inward_outward_take_maxima() {
        for dir in [Direction::Inward, Direction::Outward] {
            let e = flow(dir, vec![Element::spacer(10, 30), Element::spacer(20, 7)]);
            assert_eq!((e.width, e.height), (20, 30));
        }
    }

    #[test]
    fn empty_flow_is_zero_sized() {
        let e = flow(Direction::Down, Vec::new());
        assert_eq!((e.width, e.height), (0, 0));
    }

    #[test]
    fn image_resizing_preserves_aspect_ratio() {
        let img = Element::image(100, 50, "x.png");
        let wider = img.clone().with_width(200);
        assert_eq!((wider.width, wider.height), (200, 100));
        let taller = img.with_height(100);
        assert_eq!((taller.width, taller.height), (200, 100));
        // Text does not scale its other axis.
        let t = Element::plain_text("hello").with_width(500);
        assert_eq!(t.width, 500);
    }

    #[test]
    fn above_below_beside() {
        let a = Element::spacer(10, 10);
        let b = Element::spacer(20, 5);
        let ab = a.clone().above(b.clone());
        assert_eq!((ab.width, ab.height), (20, 15));
        let ba = a.clone().below(b.clone());
        let ElementKind::Flow { children, .. } = &ba.kind else {
            unreachable!()
        };
        assert_eq!(children[0], b);
        let side = a.beside(children[0].clone());
        assert_eq!((side.width, side.height), (30, 10));
    }

    #[test]
    fn styling_is_pure() {
        let base = Element::spacer(5, 5);
        let styled = base
            .clone()
            .with_opacity(0.5)
            .with_background(crate::color::palette::RED);
        assert_eq!(base.opacity, 1.0);
        assert_eq!(styled.opacity, 0.5);
        assert!(base.background.is_none());
    }
}
