//! SVG rendering of display lists.
//!
//! Collages (and whole element trees) render to standalone SVG documents —
//! the headless analogue of the canvas the Elm runtime draws forms on.
//! Golden tests for Fig. 12's shapes use this renderer.

use std::fmt::Write as _;

use crate::color::Color;
use crate::form::{FillStyle, LineCap, LineStyle};
use crate::layout::{DisplayList, Placed, Primitive, ScreenFormKind};

/// Renders a display list as a complete SVG document.
pub fn to_svg(dl: &DisplayList) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">",
        dl.width, dl.height, dl.width, dl.height
    );
    for item in &dl.items {
        render_item(&mut out, item);
    }
    out.push_str("</svg>\n");
    out
}

fn fmt_pts(points: &[(f64, f64)]) -> String {
    points
        .iter()
        .map(|(x, y)| format!("{},{}", trim(*x), trim(*y)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Formats a coordinate without trailing noise (3 decimal places, trimmed).
fn trim(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s == "-0" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn stroke_attrs(style: &LineStyle) -> String {
    let mut s = format!(
        " stroke=\"{}\" stroke-width=\"{}\" fill=\"none\"",
        css(style.color),
        trim(style.width)
    );
    if !style.dashing.is_empty() {
        let dash = style
            .dashing
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let _ = write!(s, " stroke-dasharray=\"{dash}\"");
    }
    match style.cap {
        LineCap::Flat => {}
        LineCap::Round => s.push_str(" stroke-linecap=\"round\""),
        LineCap::Padded => s.push_str(" stroke-linecap=\"square\""),
    }
    s
}

fn css(c: Color) -> String {
    c.to_css()
}

fn render_item(out: &mut String, item: &Placed) {
    let opacity_attr = if item.opacity < 1.0 {
        format!(" opacity=\"{}\"", trim(item.opacity as f64))
    } else {
        String::new()
    };
    match &item.primitive {
        Primitive::Fill(color) => {
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"{}/>",
                item.x,
                item.y,
                item.width,
                item.height,
                css(*color),
                opacity_attr
            );
        }
        Primitive::Text(t) => {
            let _ = writeln!(
                out,
                "  <text x=\"{}\" y=\"{}\" font-size=\"{}\"{}{}>{}</text>",
                item.x,
                item.y + t.size as i32,
                t.size,
                t.color
                    .map(|c| format!(" fill=\"{}\"", css(c)))
                    .unwrap_or_default(),
                opacity_attr,
                escape(&t.content)
            );
        }
        Primitive::Image { src, .. } => {
            let _ = writeln!(
                out,
                "  <image x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" href=\"{}\"{}/>",
                item.x,
                item.y,
                item.width,
                item.height,
                escape(src),
                opacity_attr
            );
        }
        Primitive::Video { src } => {
            let _ = writeln!(
                out,
                "  <rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"#222\"{}/>\n  <text x=\"{}\" y=\"{}\" fill=\"#fff\" font-size=\"12\">video: {}</text>",
                item.x,
                item.y,
                item.width,
                item.height,
                opacity_attr,
                item.x + 4,
                item.y + 16,
                escape(src)
            );
        }
        Primitive::Form(sf) => {
            let alpha = item.opacity * sf.alpha;
            let alpha_attr = if alpha < 1.0 {
                format!(" opacity=\"{}\"", trim(alpha as f64))
            } else {
                String::new()
            };
            match &sf.kind {
                ScreenFormKind::Line { style, points } => {
                    let _ = writeln!(
                        out,
                        "  <polyline points=\"{}\"{}{}/>",
                        fmt_pts(points),
                        stroke_attrs(style),
                        alpha_attr
                    );
                }
                ScreenFormKind::Shape { style, points } => match style {
                    FillStyle::Filled(color) => {
                        let _ = writeln!(
                            out,
                            "  <polygon points=\"{}\" fill=\"{}\"{}/>",
                            fmt_pts(points),
                            css(*color),
                            alpha_attr
                        );
                    }
                    FillStyle::Outlined(ls) => {
                        let _ = writeln!(
                            out,
                            "  <polygon points=\"{}\"{}{}/>",
                            fmt_pts(points),
                            stroke_attrs(ls),
                            alpha_attr
                        );
                    }
                    FillStyle::Textured(src) => {
                        let _ = writeln!(
                            out,
                            "  <polygon points=\"{}\" fill=\"url({})\"{}/>",
                            fmt_pts(points),
                            escape(src),
                            alpha_attr
                        );
                    }
                },
                ScreenFormKind::Text { text, at, theta } => {
                    let rot = if theta.abs() > 1e-12 {
                        format!(
                            " transform=\"rotate({} {} {})\"",
                            trim(theta.to_degrees()),
                            trim(at.0),
                            trim(at.1)
                        )
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\" font-size=\"{}\"{}{}>{}</text>",
                        trim(at.0),
                        trim(at.1),
                        text.size,
                        rot,
                        alpha_attr,
                        escape(&text.content)
                    );
                }
                ScreenFormKind::Image {
                    width,
                    height,
                    src,
                    at,
                    theta,
                } => {
                    let rot = if theta.abs() > 1e-12 {
                        format!(
                            " transform=\"rotate({} {} {})\"",
                            trim(theta.to_degrees()),
                            trim(at.0),
                            trim(at.1)
                        )
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "  <image x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" href=\"{}\"{}{}/>",
                        trim(at.0 - width / 2.0),
                        trim(at.1 - height / 2.0),
                        trim(*width),
                        trim(*height),
                        escape(src),
                        rot,
                        alpha_attr
                    );
                }
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::palette;
    use crate::element::collage;
    use crate::form::{dashed, degrees, ngon, oval, path, rect, solid, Form};
    use crate::layout::layout;

    #[test]
    fn fig12_collage_renders_all_four_forms() {
        // Paper Fig. 12 verbatim.
        let square = rect(70.0, 70.0);
        let pentagon = ngon(5, 20.0);
        let circle = oval(50.0, 50.0);
        let zigzag = path(vec![(0.0, 0.0), (10.0, 10.0), (0.0, 30.0), (10.0, 40.0)]);
        let main = collage(
            140,
            140,
            vec![
                Form::filled(palette::GREEN, pentagon),
                Form::outlined(dashed(palette::BLUE), circle),
                Form::outlined(solid(palette::BLACK), square).rotated(degrees(70.0)),
                Form::trace(solid(palette::RED), zigzag).shifted(40.0, 40.0),
            ],
        );
        let svg = to_svg(&layout(&main));
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polygon").count(), 3);
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("stroke-dasharray=\"8,4\""));
        assert!(svg.contains(&css(palette::GREEN)));
    }

    #[test]
    fn text_is_escaped() {
        let e = crate::element::Element::plain_text("a < b & c");
        let svg = to_svg(&layout(&e));
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn trim_strips_noise() {
        assert_eq!(trim(1.0), "1");
        assert_eq!(trim(1.25), "1.25");
        assert_eq!(trim(-0.0001), "0");
        assert_eq!(trim(2.5000001), "2.5");
    }
}
