//! ASCII rasterization of display lists.
//!
//! The headless stand-in for a screen: examples "display" their GUIs in
//! the terminal, and golden tests assert on stable character rasters. One
//! character cell covers an 8×16 pixel block (roughly a terminal cell's
//! aspect ratio).

use crate::layout::{DisplayList, Primitive, ScreenFormKind};

/// Horizontal pixels per character cell.
pub const CELL_W: u32 = 8;
/// Vertical pixels per character cell.
pub const CELL_H: u32 = 16;

/// Renders a display list as a character raster.
///
/// Backgrounds are `░`, images `▒`, videos `▓`, form interiors/edges `█`,
/// and text is
/// drawn with its own characters (clipped to the scene).
pub fn to_ascii(dl: &DisplayList) -> String {
    let cols = (dl.width.div_ceil(CELL_W)).max(1) as usize;
    let rows = (dl.height.div_ceil(CELL_H)).max(1) as usize;
    let mut grid = vec![vec![' '; cols]; rows];

    let mut put = |col: i64, row: i64, ch: char, grid: &mut Vec<Vec<char>>| {
        if col >= 0 && row >= 0 && (col as usize) < cols && (row as usize) < rows {
            grid[row as usize][col as usize] = ch;
        }
    };

    for item in &dl.items {
        let c0 = item.x as i64 / CELL_W as i64;
        let r0 = item.y as i64 / CELL_H as i64;
        match &item.primitive {
            Primitive::Fill(_) => {
                let c1 = (item.x as i64 + item.width as i64 - 1) / CELL_W as i64;
                let r1 = (item.y as i64 + item.height as i64 - 1) / CELL_H as i64;
                for r in r0..=r1 {
                    for c in c0..=c1 {
                        put(c, r, '\u{2591}', &mut grid);
                    }
                }
            }
            Primitive::Image { .. } | Primitive::Video { .. } => {
                let shade = if matches!(item.primitive, Primitive::Video { .. }) {
                    '\u{2593}'
                } else {
                    '\u{2592}'
                };
                let c1 = (item.x as i64 + item.width as i64 - 1) / CELL_W as i64;
                let r1 = (item.y as i64 + item.height as i64 - 1) / CELL_H as i64;
                for r in r0..=r1 {
                    for c in c0..=c1 {
                        put(c, r, shade, &mut grid);
                    }
                }
            }
            Primitive::Text(t) => {
                for (line_ix, line) in t.content.split('\n').enumerate() {
                    for (i, ch) in line.chars().enumerate() {
                        put(c0 + i as i64, r0 + line_ix as i64, ch, &mut grid);
                    }
                }
            }
            Primitive::Form(sf) => match &sf.kind {
                ScreenFormKind::Line { points, .. } => {
                    raster_polyline(points, false, &mut put, &mut grid);
                }
                ScreenFormKind::Shape { points, .. } => {
                    raster_polyline(points, true, &mut put, &mut grid);
                }
                ScreenFormKind::Text { text, at, .. } => {
                    let chars: Vec<char> = text.content.chars().collect();
                    let start_col = (at.0 / CELL_W as f64) as i64 - chars.len() as i64 / 2;
                    let row = (at.1 / CELL_H as f64) as i64;
                    for (i, ch) in chars.iter().enumerate() {
                        put(start_col + i as i64, row, *ch, &mut grid);
                    }
                }
                ScreenFormKind::Image {
                    width, height, at, ..
                } => {
                    let c0 = ((at.0 - width / 2.0) / CELL_W as f64) as i64;
                    let c1 = ((at.0 + width / 2.0) / CELL_W as f64) as i64;
                    let r0 = ((at.1 - height / 2.0) / CELL_H as f64) as i64;
                    let r1 = ((at.1 + height / 2.0) / CELL_H as f64) as i64;
                    for r in r0..=r1 {
                        for c in c0..=c1 {
                            put(c, r, '\u{2592}', &mut grid);
                        }
                    }
                }
            },
        }
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    for row in grid {
        let line: String = row.into_iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

fn raster_polyline(
    points: &[(f64, f64)],
    close: bool,
    put: &mut impl FnMut(i64, i64, char, &mut Vec<Vec<char>>),
    grid: &mut Vec<Vec<char>>,
) {
    if points.is_empty() {
        return;
    }
    let n = points.len();
    let last = if close { n } else { n - 1 };
    for i in 0..last {
        let a = points[i];
        let b = points[(i + 1) % n];
        // Walk the segment in small steps, marking cells.
        let steps = ((a.0 - b.0).abs().max((a.1 - b.1).abs()) / 2.0).ceil() as usize + 1;
        for s in 0..=steps {
            let t = s as f64 / steps as f64;
            let x = a.0 + (b.0 - a.0) * t;
            let y = a.1 + (b.1 - a.1) * t;
            put(
                (x / CELL_W as f64) as i64,
                (y / CELL_H as f64) as i64,
                '\u{2588}',
                grid,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::palette;
    use crate::element::{collage, flow, Direction, Element};
    use crate::form::{rect, Form};
    use crate::layout::layout;
    use crate::position::Position;

    #[test]
    fn text_appears_at_its_position() {
        let e = Element::container(160, 64, Position::MIDDLE, Element::plain_text("hi"));
        let ascii = to_ascii(&layout(&e));
        let lines: Vec<&str> = ascii.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[1].contains("hi") || lines[2].contains("hi"),
            "{ascii}"
        );
    }

    #[test]
    fn fills_and_images_use_distinct_shades() {
        let e = flow(
            Direction::Down,
            vec![
                Element::spacer(32, 16).with_background(palette::RED),
                Element::image(32, 16, "x.png"),
            ],
        );
        let ascii = to_ascii(&layout(&e));
        let lines: Vec<&str> = ascii.lines().collect();
        assert!(lines[0].contains('\u{2591}'));
        assert!(lines[1].contains('\u{2592}'));
    }

    #[test]
    fn forms_raster_as_blocks() {
        let e = collage(80, 80, vec![Form::filled(palette::BLUE, rect(40.0, 40.0))]);
        let ascii = to_ascii(&layout(&e));
        assert!(ascii.contains('\u{2588}'), "{ascii}");
    }

    #[test]
    fn raster_is_stable_for_example1() {
        let content = flow(
            Direction::Down,
            vec![
                Element::plain_text("Welcome to Elm!"),
                Element::image(120, 32, "flower.jpg"),
            ],
        );
        let main = Element::container(160, 80, Position::MIDDLE, content);
        let a = to_ascii(&layout(&main));
        let b = to_ascii(&layout(&main));
        assert_eq!(a, b);
        assert!(a.contains("Welcome to Elm!"));
    }
}
