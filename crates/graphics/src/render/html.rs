//! HTML rendering of element trees.
//!
//! The paper's compiler emits HTML: "The output of compiling an Elm
//! program is an HTML file" (§5). This renderer produces the same kind of
//! output — absolutely positioned `div`s for layout, `img` for images,
//! inline SVG for collages — from a laid-out [`DisplayList`].

use std::fmt::Write as _;

use crate::element::Element;
use crate::layout::{layout, DisplayList, Primitive};

/// Renders an element as an HTML fragment (a single positioned `<div>`).
pub fn to_html_fragment(root: &Element) -> String {
    let dl = layout(root);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<div class=\"elm\" style=\"position:relative;width:{}px;height:{}px;overflow:hidden;\">",
        dl.width, dl.height
    );
    for item in &dl.items {
        let style_pos = format!(
            "position:absolute;left:{}px;top:{}px;width:{}px;height:{}px;",
            item.x, item.y, item.width, item.height
        );
        let opacity = if item.opacity < 1.0 {
            format!("opacity:{};", item.opacity)
        } else {
            String::new()
        };
        match &item.primitive {
            Primitive::Fill(color) => {
                let _ = writeln!(
                    out,
                    "  <div style=\"{}{}background-color:{};\"></div>",
                    style_pos,
                    opacity,
                    color.to_css()
                );
            }
            Primitive::Text(t) => {
                let mut style = format!("{style_pos}{opacity}font-size:{}px;", t.size);
                if t.bold {
                    style.push_str("font-weight:bold;");
                }
                if t.italic {
                    style.push_str("font-style:italic;");
                }
                if t.monospace {
                    style.push_str("font-family:monospace;");
                }
                if let Some(c) = t.color {
                    let _ = write!(style, "color:{};", c.to_css());
                }
                let body = escape(&t.content).replace('\n', "<br>");
                let body = match &t.href {
                    Some(href) => format!("<a href=\"{}\">{body}</a>", escape(href)),
                    None => body,
                };
                let _ = writeln!(out, "  <div style=\"{style}\">{body}</div>");
            }
            Primitive::Image { src, .. } => {
                let _ = writeln!(
                    out,
                    "  <img style=\"{}{}\" src=\"{}\">",
                    style_pos,
                    opacity,
                    escape(src)
                );
            }
            Primitive::Video { src } => {
                let _ = writeln!(
                    out,
                    "  <video style=\"{}{}\" src=\"{}\" controls></video>",
                    style_pos,
                    opacity,
                    escape(src)
                );
            }
            Primitive::Form(_) => {
                // Form points are in absolute scene coordinates, so the SVG
                // overlay spans the whole scene (one per primitive keeps
                // paint order).
                let single = DisplayList {
                    items: vec![item.clone()],
                    width: dl.width,
                    height: dl.height,
                };
                let svg = super::svg::to_svg(&single);
                let style = format!(
                    "position:absolute;left:0;top:0;width:{}px;height:{}px;{opacity}",
                    dl.width, dl.height
                );
                let _ = writeln!(out, "  <div style=\"{style}\">{svg}</div>");
            }
        }
    }
    out.push_str("</div>\n");
    out
}

/// Renders an element as a complete HTML page, like the Elm compiler's
/// output file.
pub fn to_html_page(title: &str, root: &Element) -> String {
    format!(
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n<title>{}</title>\n\
         </head>\n<body style=\"margin:0;\">\n{}</body>\n</html>\n",
        escape(title),
        to_html_fragment(root)
    )
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::palette;
    use crate::element::{flow, Direction};
    use crate::position::Position;
    use crate::text::Text;

    #[test]
    fn example1_layout_renders_like_the_paper() {
        // Paper Example 1.
        let content = flow(
            Direction::Down,
            vec![
                Element::plain_text("Welcome to Elm!"),
                Element::image(150, 50, "flower.jpg"),
                Element::as_text("[9,8,7,6,5,4,3,2,1]"),
            ],
        );
        let main = Element::container(180, 100, Position::MIDDLE, content);
        let html = to_html_page("Example 1", &main);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("Welcome to Elm!"));
        assert!(html.contains("src=\"flower.jpg\""));
        assert!(html.contains("font-family:monospace;"));
        assert!(html.contains("width:180px;height:100px;"));
    }

    #[test]
    fn text_styles_become_css() {
        let t = Element::text(
            Text::plain("styled")
                .bold()
                .italic()
                .color(palette::RED)
                .link("http://elm-lang.org"),
        );
        let html = to_html_fragment(&t);
        assert!(html.contains("font-weight:bold;"));
        assert!(html.contains("font-style:italic;"));
        assert!(html.contains("color:rgba(204,0,0,1);"));
        assert!(html.contains("<a href=\"http://elm-lang.org\">styled</a>"));
    }

    #[test]
    fn collages_embed_svg() {
        use crate::element::collage;
        use crate::form::{rect, Form};
        let e = collage(50, 50, vec![Form::filled(palette::BLUE, rect(10.0, 10.0))]);
        let html = to_html_fragment(&e);
        assert!(html.contains("<svg"));
        assert!(html.contains("polygon"));
    }

    #[test]
    fn html_is_escaped() {
        let e = Element::plain_text("<script>alert(1)</script>");
        let html = to_html_fragment(&e);
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn newlines_become_breaks() {
        let e = Element::plain_text("line1\nline2");
        assert!(to_html_fragment(&e).contains("line1<br>line2"));
    }
}
