//! Renderers over the laid-out [`crate::layout::DisplayList`]:
//! [`html`] (what the Elm compiler emits), [`svg`] (collages), and
//! [`ascii`] (the headless terminal "screen" used by examples and tests).

pub mod ascii;
pub mod html;
pub mod svg;
