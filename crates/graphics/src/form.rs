//! Forms: free-form 2D shapes (paper §4.1, Fig. 12).
//!
//! "A form is an arbitrary 2D shape (including lines, shapes, text, and
//! images) and a form can be enhanced by specifying texture and color.
//! Forms can be moved, rotated, and scaled." Forms live in collage
//! coordinates: origin at the collage center, x to the right, y upward —
//! renderers convert to screen coordinates.

use serde::{Deserialize, Serialize};

use crate::color::Color;
use crate::text::Text;

/// A 2D point in collage coordinates.
pub type Point = (f64, f64);

/// A polyline — Elm's `Path`, built by [`path`] or [`segment`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// The points visited in order.
    pub points: Vec<Point>,
}

/// Builds a path through each point — Elm's `path` (the paper's Fig. 12
/// calls this `zigzag = path [ (0,0), (10,10), (0,30), (10,40) ]`).
pub fn path(points: Vec<Point>) -> Path {
    Path { points }
}

/// A straight segment between two points — Elm's `segment`.
pub fn segment(from: Point, to: Point) -> Path {
    Path {
        points: vec![from, to],
    }
}

/// A closed shape — Elm's `Shape`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Shape {
    /// The boundary vertices in order (implicitly closed).
    pub points: Vec<Point>,
}

/// An irregular polygon through the points — Elm's `polygon`.
pub fn polygon(points: Vec<Point>) -> Shape {
    Shape { points }
}

/// A `w × h` axis-aligned rectangle centered at the origin — Elm's `rect`.
pub fn rect(w: f64, h: f64) -> Shape {
    Shape {
        points: vec![
            (-w / 2.0, -h / 2.0),
            (w / 2.0, -h / 2.0),
            (w / 2.0, h / 2.0),
            (-w / 2.0, h / 2.0),
        ],
    }
}

/// A `side × side` square — Elm's `square`.
pub fn square(side: f64) -> Shape {
    rect(side, side)
}

/// An ellipse with the given axis widths, approximated by a polygon —
/// Elm's `oval`.
pub fn oval(w: f64, h: f64) -> Shape {
    const SEGMENTS: usize = 36;
    let points = (0..SEGMENTS)
        .map(|i| {
            let t = (i as f64 / SEGMENTS as f64) * std::f64::consts::TAU;
            (t.cos() * w / 2.0, t.sin() * h / 2.0)
        })
        .collect();
    Shape { points }
}

/// A circle of the given radius — Elm's `circle`.
pub fn circle(radius: f64) -> Shape {
    oval(radius * 2.0, radius * 2.0)
}

/// A regular `n`-gon with the given radius — Elm's `ngon` (Fig. 12's
/// `pentagon = ngon 5 20`).
pub fn ngon(n: usize, radius: f64) -> Shape {
    let points = (0..n)
        .map(|i| {
            let t = (i as f64 / n as f64) * std::f64::consts::TAU;
            (t.cos() * radius, t.sin() * radius)
        })
        .collect();
    Shape { points }
}

/// Line caps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineCap {
    /// Squared-off ends.
    #[default]
    Flat,
    /// Rounded ends.
    Round,
    /// Square ends extending past the endpoint.
    Padded,
}

/// Stroke styling — Elm's `LineStyle`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LineStyle {
    /// Stroke color.
    pub color: Color,
    /// Stroke width in pixels.
    pub width: f64,
    /// Cap style.
    pub cap: LineCap,
    /// Dash pattern (on/off run lengths); empty = solid.
    pub dashing: Vec<u32>,
}

/// A solid line — Elm's `solid`.
pub fn solid(color: Color) -> LineStyle {
    LineStyle {
        color,
        width: 1.0,
        cap: LineCap::Flat,
        dashing: Vec::new(),
    }
}

/// A dashed line — Elm's `dashed`.
pub fn dashed(color: Color) -> LineStyle {
    LineStyle {
        dashing: vec![8, 4],
        ..solid(color)
    }
}

/// A dotted line — Elm's `dotted`.
pub fn dotted(color: Color) -> LineStyle {
    LineStyle {
        dashing: vec![3, 3],
        ..solid(color)
    }
}

/// How a shape is drawn.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FillStyle {
    /// Filled with a color — Elm's `filled`.
    Filled(Color),
    /// Outlined with a line style — Elm's `outlined`.
    Outlined(LineStyle),
    /// Textured with an image — Elm's `textured`.
    Textured(String),
}

/// The content of a form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FormKind {
    /// A stroked path — Elm's `trace`.
    Line {
        /// Stroke style.
        style: LineStyle,
        /// The path.
        path: Path,
    },
    /// A styled shape.
    Shape {
        /// Fill / outline / texture.
        style: FillStyle,
        /// The shape.
        shape: Shape,
    },
    /// Text drawn at the form's position.
    Text(Text),
    /// An image of the given size.
    Image {
        /// Width.
        width: f64,
        /// Height.
        height: f64,
        /// Source.
        src: String,
    },
    /// A group of sub-forms sharing this form's transform — Elm's `group`.
    Group(Vec<Form>),
}

/// A positioned, rotated, scaled drawing — Elm's `Form`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Form {
    /// Translation (collage coordinates).
    pub x: f64,
    /// Translation (collage coordinates, y up).
    pub y: f64,
    /// Rotation in radians, counterclockwise.
    pub theta: f64,
    /// Uniform scale factor.
    pub scale: f64,
    /// Opacity 0–1 — Elm's `alpha`.
    pub alpha: f32,
    /// What to draw.
    pub kind: FormKind,
}

impl Form {
    fn of(kind: FormKind) -> Form {
        Form {
            x: 0.0,
            y: 0.0,
            theta: 0.0,
            scale: 1.0,
            alpha: 1.0,
            kind,
        }
    }

    /// A filled shape — Elm's `filled green pentagon`.
    pub fn filled(color: Color, shape: Shape) -> Form {
        Form::of(FormKind::Shape {
            style: FillStyle::Filled(color),
            shape,
        })
    }

    /// An outlined shape — Elm's `outlined (dashed blue) circle`.
    pub fn outlined(style: LineStyle, shape: Shape) -> Form {
        Form::of(FormKind::Shape {
            style: FillStyle::Outlined(style),
            shape,
        })
    }

    /// A textured shape — Elm's `textured`.
    pub fn textured(src: impl Into<String>, shape: Shape) -> Form {
        Form::of(FormKind::Shape {
            style: FillStyle::Textured(src.into()),
            shape,
        })
    }

    /// A stroked path — Elm's `trace (solid red) zigzag`.
    pub fn trace(style: LineStyle, path: Path) -> Form {
        Form::of(FormKind::Line { style, path })
    }

    /// A text form — Elm's `toForm (text …)` shorthand.
    pub fn text(text: Text) -> Form {
        Form::of(FormKind::Text(text))
    }

    /// An image form — Elm's `toForm (image …)` shorthand.
    pub fn image(width: f64, height: f64, src: impl Into<String>) -> Form {
        Form::of(FormKind::Image {
            width,
            height,
            src: src.into(),
        })
    }

    /// Groups forms under one shared transform — Elm's `group`.
    pub fn group(forms: Vec<Form>) -> Form {
        Form::of(FormKind::Group(forms))
    }

    /// Translates by `(dx, dy)` — Elm's `move`.
    pub fn shifted(mut self, dx: f64, dy: f64) -> Form {
        self.x += dx;
        self.y += dy;
        self
    }

    /// Rotates by `angle` radians counterclockwise — Elm's `rotate`.
    pub fn rotated(mut self, angle: f64) -> Form {
        self.theta += angle;
        self
    }

    /// Scales uniformly — Elm's `scale`.
    pub fn scaled(mut self, factor: f64) -> Form {
        self.scale *= factor;
        self
    }

    /// Adjusts opacity — Elm's `alpha`.
    pub fn with_alpha(mut self, alpha: f32) -> Form {
        self.alpha = alpha;
        self
    }

    /// The affine transform `(point) -> (scaled, rotated, translated)` this
    /// form applies to its local coordinates.
    pub fn apply(&self, p: Point) -> Point {
        let (sin, cos) = self.theta.sin_cos();
        let (sx, sy) = (p.0 * self.scale, p.1 * self.scale);
        (sx * cos - sy * sin + self.x, sx * sin + sy * cos + self.y)
    }

    /// Axis-aligned bounding box `((min_x, min_y), (max_x, max_y))` in
    /// collage coordinates, after this form's transform. Line widths are
    /// ignored (geometry only). Returns `None` for empty geometry.
    pub fn bounds(&self) -> Option<(Point, Point)> {
        let mut acc: Option<(Point, Point)> = None;
        let mut add = |p: Point| {
            acc = Some(match acc {
                None => (p, p),
                Some(((x0, y0), (x1, y1))) => {
                    ((x0.min(p.0), y0.min(p.1)), (x1.max(p.0), y1.max(p.1)))
                }
            });
        };
        match &self.kind {
            FormKind::Line { path, .. } => {
                for &p in &path.points {
                    add(self.apply(p));
                }
            }
            FormKind::Shape { shape, .. } => {
                for &p in &shape.points {
                    add(self.apply(p));
                }
            }
            FormKind::Text(t) => {
                let (w, h) = t.measure();
                let (w, h) = (w as f64 / 2.0, h as f64 / 2.0);
                for p in [(-w, -h), (w, -h), (w, h), (-w, h)] {
                    add(self.apply(p));
                }
            }
            FormKind::Image { width, height, .. } => {
                let (w, h) = (width / 2.0, height / 2.0);
                for p in [(-w, -h), (w, -h), (w, h), (-w, h)] {
                    add(self.apply(p));
                }
            }
            FormKind::Group(forms) => {
                for f in forms {
                    if let Some((lo, hi)) = f.bounds() {
                        for p in [lo, (lo.0, hi.1), (hi.0, lo.1), hi] {
                            add(self.apply(p));
                        }
                    }
                }
            }
        }
        acc
    }
}

/// Converts degrees to radians — Elm's `degrees` (Fig. 12 uses
/// `rotate (degrees 70)`).
pub fn degrees(d: f64) -> f64 {
    d * std::f64::consts::PI / 180.0
}

/// Converts turns (full revolutions) to radians — Elm's `turns`.
pub fn turns(t: f64) -> f64 {
    t * std::f64::consts::TAU
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::palette;

    #[test]
    fn shape_constructors_have_expected_vertices() {
        assert_eq!(rect(70.0, 70.0).points.len(), 4);
        assert_eq!(ngon(5, 20.0).points.len(), 5);
        assert_eq!(oval(50.0, 50.0).points.len(), 36);
        assert_eq!(
            path(vec![(0.0, 0.0), (10.0, 10.0), (0.0, 30.0), (10.0, 40.0)])
                .points
                .len(),
            4
        );
        assert_eq!(segment((0.0, 0.0), (1.0, 1.0)).points.len(), 2);
    }

    #[test]
    fn transforms_compose() {
        let f = Form::filled(palette::RED, square(2.0))
            .shifted(10.0, 0.0)
            .rotated(degrees(90.0))
            .scaled(2.0);
        // Local point (1, 0): scale → (2, 0); rotate 90° → (0, 2);
        // translate → (10, 2).
        let (x, y) = f.apply((1.0, 0.0));
        assert!((x - 10.0).abs() < 1e-9, "{x}");
        assert!((y - 2.0).abs() < 1e-9, "{y}");
    }

    #[test]
    fn rotation_preserves_bounding_diagonal_of_square() {
        let sq = Form::filled(palette::BLUE, square(10.0));
        let rot = sq.clone().rotated(degrees(45.0));
        let ((x0, y0), (x1, y1)) = rot.bounds().unwrap();
        let diag = 10.0 * std::f64::consts::SQRT_2;
        assert!(((x1 - x0) - diag).abs() < 1e-9);
        assert!(((y1 - y0) - diag).abs() < 1e-9);
        // Unrotated bounds are the square itself.
        let ((a0, b0), (a1, b1)) = sq.bounds().unwrap();
        assert_eq!((a1 - a0, b1 - b0), (10.0, 10.0));
    }

    #[test]
    fn scaling_scales_bounds_linearly() {
        let f = Form::filled(palette::RED, rect(4.0, 2.0)).scaled(3.0);
        let ((x0, y0), (x1, y1)) = f.bounds().unwrap();
        assert_eq!((x1 - x0, y1 - y0), (12.0, 6.0));
    }

    #[test]
    fn groups_transform_their_children() {
        let child = Form::filled(palette::RED, square(2.0)).shifted(5.0, 0.0);
        let g = Form::group(vec![child]).rotated(degrees(180.0));
        let ((x0, _), (x1, _)) = g.bounds().unwrap();
        assert!(
            x0 < -3.9 && x1 < -3.9 + 2.2,
            "group moved to the left: {x0} {x1}"
        );
    }

    #[test]
    fn degrees_and_turns() {
        assert!((degrees(180.0) - std::f64::consts::PI).abs() < 1e-12);
        assert!((turns(0.5) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn line_styles() {
        assert!(solid(palette::RED).dashing.is_empty());
        assert_eq!(dashed(palette::RED).dashing, vec![8, 4]);
        assert_eq!(dotted(palette::RED).dashing, vec![3, 3]);
    }
}
