//! Property tests for the layout solver: the algebraic laws of purely
//! functional layout, on randomly generated element trees.

use proptest::prelude::*;

use elm_graphics::{flow, layout, palette, Direction, Element, ElementKind, Position, Primitive};

/// A generated element tree (depth-bounded).
fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = prop_oneof![
        (1u32..60, 1u32..40)
            .prop_map(|(w, h)| Element::spacer(w, h).with_background(palette::GRAY)),
        "[a-z]{1,12}".prop_map(Element::plain_text),
        (10u32..80, 10u32..60).prop_map(|(w, h)| Element::image(w, h, "x.png")),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_element(depth - 1);
    prop_oneof![
        4 => leaf,
        2 => (any::<u8>(), prop::collection::vec(inner.clone(), 0..4)).prop_map(|(d, children)| {
            let dir = match d % 6 {
                0 => Direction::Right,
                1 => Direction::Left,
                2 => Direction::Down,
                3 => Direction::Up,
                4 => Direction::Inward,
                _ => Direction::Outward,
            };
            flow(dir, children)
        }),
        1 => (40u32..160, 40u32..120, any::<u8>(), inner).prop_map(|(w, h, p, child)| {
            let pos = [
                Position::TOP_LEFT,
                Position::MID_TOP,
                Position::TOP_RIGHT,
                Position::MID_LEFT,
                Position::MIDDLE,
                Position::MID_RIGHT,
                Position::BOTTOM_LEFT,
                Position::MID_BOTTOM,
                Position::BOTTOM_RIGHT,
            ][(p % 9) as usize];
            Element::container(w, h, pos, child)
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Layout is a pure function: same tree, same display list.
    #[test]
    fn layout_is_deterministic(e in arb_element(3)) {
        prop_assert_eq!(layout(&e), layout(&e));
    }

    /// The flow sizing laws of Example 1: vertical stacking sums heights
    /// and maxes widths; horizontal does the converse.
    #[test]
    fn flow_sizes_obey_the_laws(children in prop::collection::vec(arb_element(2), 0..5)) {
        let down = flow(Direction::Down, children.clone());
        prop_assert_eq!(down.height, children.iter().map(|c| c.height).sum::<u32>());
        prop_assert_eq!(down.width, children.iter().map(|c| c.width).max().unwrap_or(0));

        let right = flow(Direction::Right, children.clone());
        prop_assert_eq!(right.width, children.iter().map(|c| c.width).sum::<u32>());
        prop_assert_eq!(right.height, children.iter().map(|c| c.height).max().unwrap_or(0));
    }

    /// Primitive count is invariant under flow direction (direction only
    /// moves children; it never drops or duplicates them).
    #[test]
    fn direction_never_drops_primitives(children in prop::collection::vec(arb_element(2), 0..5)) {
        let count = |d: Direction| layout(&flow(d, children.clone())).items.len();
        let base = count(Direction::Down);
        for d in [Direction::Up, Direction::Left, Direction::Right, Direction::Inward, Direction::Outward] {
            prop_assert_eq!(count(d), base);
        }
    }

    /// Within a Down flow of *leaf* boxes, successive children tile the
    /// column without overlap and in order.
    #[test]
    fn down_flow_children_are_disjoint_vertically(
        sizes in prop::collection::vec((1u32..50, 1u32..40), 1..6)
    ) {
        let children: Vec<Element> = sizes
            .iter()
            .map(|(w, h)| Element::spacer(*w, *h).with_background(palette::GRAY))
            .collect();
        let e = flow(Direction::Down, children);
        let dl = layout(&e);
        let fills: Vec<_> = dl
            .items
            .iter()
            .filter(|p| matches!(p.primitive, Primitive::Fill(_)))
            .collect();
        prop_assert_eq!(fills.len(), sizes.len());
        let mut cursor = 0i32;
        for (fill, (w, h)) in fills.iter().zip(&sizes) {
            prop_assert_eq!(fill.y, cursor);
            prop_assert_eq!((fill.width, fill.height), (*w, *h));
            cursor += *h as i32;
        }
    }

    /// Effective opacity is always within [0, 1].
    #[test]
    fn opacity_stays_bounded(e in arb_element(3), o1 in 0.0f32..=1.0, o2 in 0.0f32..=1.0) {
        let wrapped = Element::container(
            200,
            200,
            Position::MIDDLE,
            e.with_opacity(o1),
        )
        .with_opacity(o2);
        for item in layout(&wrapped).items {
            prop_assert!((0.0..=1.0).contains(&item.opacity));
        }
    }

    /// Containers never change the child's size, only its position.
    #[test]
    fn containers_translate_but_do_not_resize(e in arb_element(2), w in 10u32..200, h in 10u32..200) {
        let direct = layout(&e);
        let contained = layout(&Element::container(w, h, Position::MIDDLE, e.clone()));
        prop_assert_eq!(direct.items.len(), contained.items.len());
        for (a, b) in direct.items.iter().zip(&contained.items) {
            prop_assert_eq!(a.width, b.width);
            prop_assert_eq!(a.height, b.height);
            prop_assert_eq!(&a.primitive, &b.primitive);
            // Uniform translation across all primitives.
            prop_assert_eq!(b.x - a.x, contained.items[0].x - direct.items[0].x);
            prop_assert_eq!(b.y - a.y, contained.items[0].y - direct.items[0].y);
        }
    }

    /// The HTML and ASCII renderers never panic on generated trees, and
    /// re-rendering is stable.
    #[test]
    fn renderers_are_total_and_stable(e in arb_element(3)) {
        let dl = layout(&e);
        let ascii = elm_graphics::render::ascii::to_ascii(&dl);
        prop_assert_eq!(&ascii, &elm_graphics::render::ascii::to_ascii(&dl));
        let html = elm_graphics::render::html::to_html_fragment(&e);
        prop_assert_eq!(&html, &elm_graphics::render::html::to_html_fragment(&e));
        let svg = elm_graphics::render::svg::to_svg(&dl);
        prop_assert!(svg.starts_with("<svg"));
    }
}

/// Non-proptest sanity anchor: the generator actually produces all kinds.
#[test]
fn generator_covers_the_element_kinds() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let mut seen_flow = false;
    let mut seen_container = false;
    for _ in 0..200 {
        let e = arb_element(3).new_tree(&mut runner).unwrap().current();
        match e.kind {
            ElementKind::Flow { .. } => seen_flow = true,
            ElementKind::Container { .. } => seen_container = true,
            _ => {}
        }
    }
    assert!(seen_flow && seen_container);
}
