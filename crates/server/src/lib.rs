//! elm-server — a multi-session signal server.
//!
//! The paper's runtime executes *one* FRP program against *one* event
//! stream. This crate scales that out: a [`server::Server`] hosts many
//! concurrent program instances (sessions), each an isolated signal
//! graph on the deterministic synchronous engine, pinned actor-style to
//! a shard worker thread. A newline-delimited JSON protocol
//! ([`protocol`]) exposes the whole lifecycle over TCP ([`net`]):
//! `open` (builtin from the [`registry::Registry`] or ad-hoc FElm source
//! compiled by `felm`), `event` / `batch` ingress with configurable
//! backpressure ([`protocol::BackpressurePolicy`]), `query`,
//! `subscribe` (streamed output changes), `stats`, and `close`.
//!
//! Isolation is the core guarantee: a session's outputs depend only on
//! its own event stream, so N sessions fed concurrently produce exactly
//! what N single-program synchronous replays would — the property the
//! `loadgen` binary checks end to end. Sessions that idle past the
//! configured timeout are evicted gracefully rather than wedging their
//! shard.
//!
//! Sessions are additionally *crash-recoverable*: every applied event is
//! write-ahead journaled ([`elm_runtime::EventJournal`]), the runtime is
//! snapshotted on a configurable cadence, and when a session's runtime
//! dies (a node panic, an injected fault, an engine error) the shard
//! restores the last snapshot and replays the journal suffix under a
//! supervised restart budget ([`supervisor`]) — the session keeps its
//! id and subscribers. Only budget exhaustion evicts, with the
//! `recovery_failed` close reason. A deterministic fault-injection
//! layer ([`elm_environment::FaultPlan`]) drives the `loadgen --chaos`
//! harness that checks recovered outputs byte-for-byte against an
//! uninterrupted synchronous replay.
//!
//! The server is also *overload-protected* against both hostile load
//! and hostile programs: untrusted FElm sessions run under an
//! [`elm_runtime::EventLimits`] fuel/allocation/depth budget plus a
//! per-event deadline (a runaway evaluation traps, rolls back, and the
//! session lives on), shard-level token-bucket [`admission`] control
//! sheds excess data-plane traffic with a typed `overloaded` reply and
//! `retry_after_ms` hint while control-plane verbs stay answerable, and
//! the TCP front end isolates slow subscribers behind bounded write
//! queues ([`net::NetConfig`]). The cooperating [`client`] retries shed
//! requests with jittered exponential backoff.

#![warn(missing_docs)]

pub mod admission;
pub mod blackbox;
pub mod client;
pub mod cluster;
pub mod metrics;
pub mod net;
pub mod netfault;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod session;
pub mod shard;
pub mod supervisor;

pub use admission::{Admission, AdmissionConfig, AdmissionController, MemoryGauge};
pub use blackbox::{blackbox, Blackbox, BlackboxRecord};
pub use client::{Client, ClusterClient, RetryPolicy, RetryStats};
pub use cluster::{place, Cluster, ClusterConfig, RepMsg, ReplicationTap};
pub use net::{NetConfig, NetCounters};
pub use netfault::{Delivery, NetFault, NetFaultConfig, PartitionWindow};
pub use protocol::{
    AdmissionStats, BackpressurePolicy, BatchOutcome, EnqueueOutcome, IngressStats, LatencySummary,
    OpenInfo, QueryInfo, RecoveryStats, Request, ServerStats, SessionMeta, SessionStats, TrapStats,
    Update,
};
pub use registry::{ProgramSpec, Registry};
pub use server::{Server, ServerConfig};
pub use session::{Session, SessionConfig, SessionId, TraceMailbox, TracePop};
pub use shard::{Command, ShardCounters, ShardHandle, ShardStats};
pub use supervisor::{RestartBudget, RestartDecision, RestartPolicy};
