//! The wire vocabulary: requests, replies, and pushed updates.
//!
//! The protocol is newline-delimited JSON (NDJSON) over TCP. Every request
//! is one JSON object on one line with a `"cmd"` field; every request gets
//! exactly one reply line with an `"ok"` field. A `subscribe` additionally
//! streams `{"update": …}` lines as the session's output signal changes.
//!
//! Values on the wire reuse [`PlainValue`]'s serde shape (externally
//! tagged): `{"Int":5}`, `"Unit"`, `{"Pair":[{"Int":1},{"Int":2}]}` — the
//! same encoding `elm-runtime` traces use on disk, so recorded traces can
//! be replayed over the wire verbatim.

use elm_runtime::{
    HistogramSnapshot, JournalEntry, NodeTimingSnapshot, PlainSpanTree, PlainValue, StatsSnapshot,
    TrapKind, WireSnapshot,
};
use serde_json::Value as Json;

/// One client → server command, decoded from a JSON line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Instantiate a program as a new session. Exactly one of `program`
    /// (a registry name) or `source` (FElm source text) must be set.
    Open {
        /// Builtin program name from the registry.
        program: Option<String>,
        /// FElm source to compile (`main = …`).
        source: Option<String>,
        /// Ingress queue capacity override.
        queue: Option<usize>,
        /// Backpressure policy override.
        policy: Option<BackpressurePolicy>,
        /// Attach a causal tracer + per-node timing histograms to the
        /// session (`"observe":true`). Off by default: untraced sessions
        /// pay no observability overhead.
        observe: bool,
        /// Client-chosen session id (cluster mode). When set, the session
        /// is created under exactly this id — the open fails if the id is
        /// already hosted — so ids stay unique across a peer group without
        /// coordination. When absent the server allocates the next id.
        session: Option<u64>,
    },
    /// One input event for a session.
    Event {
        /// Target session.
        session: u64,
        /// Input signal name, e.g. `"Mouse.x"`.
        input: String,
        /// The new value.
        value: PlainValue,
        /// Client-supplied causal trace id (0 = untraced). Journaled and
        /// replicated with the event, so the same id identifies it on
        /// every peer it crosses — including after a failover.
        trace: u64,
    },
    /// Many input events for a session, enqueued in order.
    Batch {
        /// Target session.
        session: u64,
        /// `(input, value)` pairs in delivery order.
        events: Vec<(String, PlainValue)>,
    },
    /// Read a session's current output value and queue depth.
    Query {
        /// Target session.
        session: u64,
    },
    /// Stream the session's output changes as `{"update": …}` lines.
    Subscribe {
        /// Target session.
        session: u64,
    },
    /// Per-session (with `session`) or global (without) counters.
    Stats {
        /// Restrict to one session.
        session: Option<u64>,
    },
    /// Prometheus-text exposition of every server metric family. The same
    /// text is served to HTTP clients that send `GET /metrics`. With
    /// `"scope":"cluster"` (or `GET /metrics?federate=1`) the receiving
    /// peer fans out to the whole group and returns one federated
    /// exposition with `peer` labels.
    Metrics {
        /// True for the cluster-federated scope.
        cluster: bool,
    },
    /// Stream the flight recorder's current contents as NDJSON — the same
    /// records a panic or takeover dumps to disk, readable live.
    Blackbox,
    /// Stream the session's completed span trees as `{"trace": …}` lines.
    /// Requires the session to have been opened with `"observe":true`.
    Trace {
        /// Target session.
        session: u64,
    },
    /// Read a session's hosted program: its FElm source (when it was
    /// compiled from source — builtin felm programs included) and the
    /// graph's structural fingerprint, so any observed failure is
    /// reproducible from wire output alone.
    Describe {
        /// Target session.
        session: u64,
    },
    /// Tear a session down.
    Close {
        /// Target session.
        session: u64,
    },
    /// Peer verb: a cluster peer introduces itself on a fresh replication
    /// connection. Replied to (unlike the streaming peer verbs), so the
    /// sender can confirm the link before pipelining appends.
    Hello {
        /// The sender's peer index within the shared `--peers` list.
        from: usize,
        /// The sender's advertised listen address.
        addr: String,
    },
    /// Ask where a session key lives. Any peer answers identically
    /// (rendezvous hashing is deterministic in the shared peer list), so
    /// clients can ask whichever peer they reach first.
    Place {
        /// The session key to place.
        key: u64,
    },
    /// Peer verb: replicate one journal entry for a session this peer
    /// backs up. Streamed fire-and-forget: produces **no reply line**.
    JournalAppend {
        /// The sender's peer index.
        from: usize,
        /// The replicated session.
        session: u64,
        /// The journaled event, exactly as the primary applied it.
        entry: JournalEntry,
        /// The sender's ownership epoch for the session (0 = a pre-epoch
        /// sender; accepted for compatibility). Receivers fence the
        /// append when the epoch is below the highest they have seen.
        epoch: u64,
    },
    /// Peer verb: session metadata plus (optionally) a state snapshot.
    /// Sent at open (no snapshot yet), after every primary-side snapshot
    /// (bounding the replica's replay suffix), and at close
    /// (`dropped:true`). Streamed fire-and-forget: **no reply line**.
    SnapshotShip {
        /// The sender's peer index.
        from: usize,
        /// The replicated session.
        session: u64,
        /// How to re-instantiate the program on takeover.
        meta: SessionMeta,
        /// State through `through`, when the primary has snapshotted.
        snapshot: Option<Box<WireSnapshot>>,
        /// The sequence number the snapshot covers (0 = none yet).
        through: u64,
        /// True when the primary closed the session: forget the replica.
        dropped: bool,
        /// Trace id of the last event folded into the snapshot (0 when
        /// untraced): a resumed session's first recovery span can point
        /// back at the trace that produced the state it resumed from.
        trace: u64,
        /// The sender's ownership epoch for the session (0 = pre-epoch
        /// sender). Stale-epoch ships — including `dropped:true`, which
        /// would otherwise erase the new owner's replica — are fenced.
        epoch: u64,
    },
    /// Peer verb: liveness signal on an otherwise-idle replication link.
    /// Streamed fire-and-forget: **no reply line**.
    Heartbeat {
        /// The sender's peer index.
        from: usize,
    },
    /// Peer verb: the sender has declared a peer dead and adopted these
    /// sessions. Receivers record the new routes (for `moved` redirects)
    /// and close any of the sessions they still host live (split-brain
    /// resolution: the takeover wins). Replied to.
    Takeover {
        /// The adopting peer's index.
        from: usize,
        /// The adopting peer's advertised listen address.
        addr: String,
        /// The adopted session ids.
        sessions: Vec<u64>,
        /// Per-session trace id of the last replicated event (parallel to
        /// `sessions`, 0 = untraced/unknown). Receivers echo it on
        /// `moved` redirects so a client's retry joins the same trace the
        /// takeover continued.
        traces: Vec<u64>,
        /// Per-session ownership epoch the adopter now serves under
        /// (parallel to `sessions`, 0 = pre-epoch sender). Receivers
        /// record it as the fence: any later traffic for the session at a
        /// lower epoch is a zombie's and is rejected.
        epochs: Vec<u64>,
    },
}

/// How to re-instantiate a replicated session's program on takeover.
/// Rides on [`Request::SnapshotShip`].
#[derive(Clone, Debug, PartialEq)]
pub struct SessionMeta {
    /// Resolved program name (`"<source>"` for ad-hoc source).
    pub program: String,
    /// FElm source, when the program was compiled from source. Builtin
    /// native graphs replicate by name instead.
    pub source: Option<String>,
    /// Ingress queue capacity.
    pub queue: usize,
    /// Backpressure policy.
    pub policy: BackpressurePolicy,
}

/// What to do when a session's bounded ingress queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Pump the session synchronously to make room — the producer's
    /// request does not complete until the queue has drained, so a slow
    /// session slows its own clients rather than losing events.
    #[default]
    Block,
    /// Drop the oldest queued event to admit the new one.
    DropOldest,
    /// Replace the newest queued event *on the same input signal* with the
    /// new value (falling back to drop-oldest if no such event is queued).
    /// Right for absolute-state signals like `Mouse.position` where only
    /// the latest value matters.
    Coalesce,
}

impl BackpressurePolicy {
    /// Parses the wire spelling (`"block"`, `"drop-oldest"`, `"coalesce"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(BackpressurePolicy::Block),
            "drop-oldest" | "drop_oldest" => Some(BackpressurePolicy::DropOldest),
            "coalesce" => Some(BackpressurePolicy::Coalesce),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::DropOldest => "drop-oldest",
            BackpressurePolicy::Coalesce => "coalesce",
        }
    }
}

/// What happened to one submitted event at the ingress queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Queued normally.
    Accepted,
    /// Queued, at the cost of evicting the oldest queued event.
    DroppedOldest,
    /// Merged into an already-queued event on the same input.
    Coalesced,
    /// Not queued: the session's program does not declare this input (or
    /// the session exhausted its restart budget and awaits eviction).
    Ignored,
    /// Not queued: admission control shed the event under overload. The
    /// client should back off for at least `retry_after_ms` before
    /// resubmitting.
    Shed {
        /// Suggested minimum backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl EnqueueOutcome {
    /// The wire spelling.
    pub fn label(self) -> &'static str {
        match self {
            EnqueueOutcome::Accepted => "accepted",
            EnqueueOutcome::DroppedOldest => "dropped-oldest",
            EnqueueOutcome::Coalesced => "coalesced",
            EnqueueOutcome::Ignored => "ignored",
            EnqueueOutcome::Shed { .. } => "shed",
        }
    }
}

/// Per-category tally for a batch submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct BatchOutcome {
    /// Events queued (including those that evicted an older event).
    pub accepted: u64,
    /// Older events evicted to admit new ones.
    pub dropped: u64,
    /// Events merged into already-queued ones.
    pub coalesced: u64,
    /// Events skipped for undeclared inputs.
    pub ignored: u64,
    /// Events shed by admission control (batches are admitted
    /// all-or-nothing, so this is 0 or the whole batch).
    pub shed: u64,
    /// Suggested minimum backoff when `shed` is nonzero, else 0.
    pub retry_after_ms: u64,
}

impl BatchOutcome {
    /// Folds one event's outcome into the tally.
    pub fn record(&mut self, outcome: EnqueueOutcome) {
        match outcome {
            EnqueueOutcome::Accepted => self.accepted += 1,
            EnqueueOutcome::DroppedOldest => {
                self.accepted += 1;
                self.dropped += 1;
            }
            EnqueueOutcome::Coalesced => self.coalesced += 1,
            EnqueueOutcome::Ignored => self.ignored += 1,
            EnqueueOutcome::Shed { .. } => self.shed += 1,
        }
    }
}

/// Reply to a successful `open`.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct OpenInfo {
    /// The new session's id.
    pub session: u64,
    /// Resolved program name (`"<source>"` for ad-hoc source).
    pub program: String,
    /// Input signal names the program declares — events on any other
    /// input are ignored (and counted).
    pub inputs: Vec<String>,
    /// The output's initial value, before any event.
    pub initial: PlainValue,
}

/// Reply to `query`.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct QueryInfo {
    /// The session id.
    pub session: u64,
    /// Resolved program name.
    pub program: String,
    /// The output signal's current value.
    pub value: PlainValue,
    /// Events waiting in the ingress queue.
    pub queue_len: u64,
    /// The highest event sequence number applied to the runtime — the
    /// session's durable high-water mark. After a failover, clients resume
    /// by re-sending their trace from `last_seq + 1`.
    pub last_seq: u64,
    /// True once a node ever panicked in this session. The session keeps
    /// running (panicked nodes emit `NoChange` forever, paper §3.3.2);
    /// only an exhausted restart budget evicts it.
    pub poisoned: bool,
    /// The session's current ownership epoch (1 at open, bumped on every
    /// takeover adoption). Clients compare epochs across peers: during a
    /// partition both sides of a split may answer, but only one answers
    /// at the highest epoch — the split-brain probe and the client's
    /// stale-peer detector both key on this field.
    pub epoch: u64,
}

/// Reply to `describe`.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct DescribeInfo {
    /// The session id.
    pub session: u64,
    /// Resolved program name.
    pub program: String,
    /// The FElm source the program was compiled from; `None` for
    /// native-built graphs, which have no textual form.
    pub source: Option<String>,
    /// The signal graph's structural fingerprint (stable within one
    /// server process — enough to check two sessions host the same
    /// compiled shape).
    pub fingerprint: u64,
    /// Input signal names the program declares.
    pub inputs: Vec<String>,
}

/// Ingress-side counters for one session (or summed across sessions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct IngressStats {
    /// Events admitted to the queue.
    pub enqueued: u64,
    /// Oldest-event evictions under pressure.
    pub dropped: u64,
    /// Same-signal merges under pressure.
    pub coalesced: u64,
    /// Events on undeclared inputs.
    pub ignored: u64,
    /// Pump cycles executed.
    pub pumps: u64,
    /// Output changes produced.
    pub events_out: u64,
    /// Current queue depth.
    pub queue_len: u64,
    /// Live subscribers.
    pub subscribers: u64,
}

impl IngressStats {
    /// Counter-wise sum, mirroring [`StatsSnapshot::merged`].
    pub fn merged(&self, other: &IngressStats) -> IngressStats {
        IngressStats {
            enqueued: self.enqueued + other.enqueued,
            dropped: self.dropped + other.dropped,
            coalesced: self.coalesced + other.coalesced,
            ignored: self.ignored + other.ignored,
            pumps: self.pumps + other.pumps,
            events_out: self.events_out + other.events_out,
            queue_len: self.queue_len + other.queue_len,
            subscribers: self.subscribers + other.subscribers,
        }
    }
}

/// Ingest-to-output latency percentiles, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct LatencySummary {
    /// Samples measured.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a sample set (sorts `samples` in place).
    ///
    /// Degenerate sets are well-defined: an empty set yields the all-zero
    /// default (not a panic), and a single-sample set reports that sample
    /// for every percentile and the max.
    pub fn compute(samples: &mut [u64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        // `(len-1) * p` rounds to at most len-1 for p ≤ 1, so `pick` can
        // never index out of bounds — including the single-sample case,
        // where every percentile is samples[0].
        let pick = |p: f64| {
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        LatencySummary {
            count: samples.len() as u64,
            p50_us: pick(0.50),
            p90_us: pick(0.90),
            p99_us: pick(0.99),
            max_us: samples[samples.len() - 1],
        }
    }
}

/// Crash-recovery counters for one session (or summed across sessions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RecoveryStats {
    /// Supervised restarts performed (crash → snapshot + replay).
    pub restarts: u64,
    /// Journal entries re-applied across all recoveries.
    pub replayed_events: u64,
    /// Longest single-recovery replay — bounded by the snapshot interval.
    pub max_replay: u64,
    /// Snapshots taken.
    pub snapshot_count: u64,
    /// Journal entries currently retained (after snapshot truncation).
    pub journal_len: u64,
    /// Journal appends performed.
    pub journal_appends: u64,
    /// Journal truncations (each snapshot truncates the journal it covers).
    pub journal_truncations: u64,
    /// Journal appends that failed (event applied anyway; an immediate
    /// snapshot re-covers the gap).
    pub journal_failures: u64,
}

impl RecoveryStats {
    /// Counter-wise sum (`max_replay` takes the max), mirroring
    /// [`StatsSnapshot::merged`].
    pub fn merged(&self, other: &RecoveryStats) -> RecoveryStats {
        RecoveryStats {
            restarts: self.restarts + other.restarts,
            replayed_events: self.replayed_events + other.replayed_events,
            max_replay: self.max_replay.max(other.max_replay),
            snapshot_count: self.snapshot_count + other.snapshot_count,
            journal_len: self.journal_len + other.journal_len,
            journal_appends: self.journal_appends + other.journal_appends,
            journal_truncations: self.journal_truncations + other.journal_truncations,
            journal_failures: self.journal_failures + other.journal_failures,
        }
    }
}

/// Per-kind tally of resource traps: events stopped by the evaluation
/// governor (fuel, allocation, depth, or deadline) and rolled back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct TrapStats {
    /// Events that exhausted their fuel budget.
    pub out_of_fuel: u64,
    /// Events that exhausted their allocation budget.
    pub out_of_memory: u64,
    /// Events that exceeded the evaluation depth budget.
    pub depth_exceeded: u64,
    /// Events that blew their wall-clock deadline.
    pub deadline_exceeded: u64,
}

impl TrapStats {
    /// Folds one trap into the tally.
    pub fn record(&mut self, kind: TrapKind) {
        match kind {
            TrapKind::OutOfFuel => self.out_of_fuel += 1,
            TrapKind::OutOfMemory => self.out_of_memory += 1,
            TrapKind::DepthExceeded => self.depth_exceeded += 1,
            TrapKind::DeadlineExceeded => self.deadline_exceeded += 1,
        }
    }

    /// The tally for one kind.
    pub fn count(&self, kind: TrapKind) -> u64 {
        match kind {
            TrapKind::OutOfFuel => self.out_of_fuel,
            TrapKind::OutOfMemory => self.out_of_memory,
            TrapKind::DepthExceeded => self.depth_exceeded,
            TrapKind::DeadlineExceeded => self.deadline_exceeded,
        }
    }

    /// Traps of any kind.
    pub fn total(&self) -> u64 {
        self.out_of_fuel + self.out_of_memory + self.depth_exceeded + self.deadline_exceeded
    }

    /// Counter-wise sum, mirroring [`StatsSnapshot::merged`].
    pub fn merged(&self, other: &TrapStats) -> TrapStats {
        TrapStats {
            out_of_fuel: self.out_of_fuel + other.out_of_fuel,
            out_of_memory: self.out_of_memory + other.out_of_memory,
            depth_exceeded: self.depth_exceeded + other.depth_exceeded,
            deadline_exceeded: self.deadline_exceeded + other.deadline_exceeded,
        }
    }
}

/// Admission-control counters (per shard, summed for the server view).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct AdmissionStats {
    /// Data-plane events offered for admission (`event` + `batch` items).
    pub offered: u64,
    /// Events admitted past the controller.
    pub admitted: u64,
    /// Events shed with a typed `overloaded` reply.
    pub shed: u64,
}

impl AdmissionStats {
    /// Counter-wise sum.
    pub fn merged(&self, other: &AdmissionStats) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered + other.offered,
            admitted: self.admitted + other.admitted,
            shed: self.shed + other.shed,
        }
    }
}

/// Everything the server knows about one session's execution.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct SessionStats {
    /// The session id.
    pub session: u64,
    /// Resolved program name.
    pub program: String,
    /// Scheduler counters from the session's runtime.
    pub runtime: StatsSnapshot,
    /// Ingress-queue counters.
    pub ingress: IngressStats,
    /// Ingest-to-output latency.
    pub latency: LatencySummary,
    /// Mergeable log2 histogram of ingest-to-output latency in
    /// microseconds — the federation-side form of `latency`: snapshots
    /// from different sessions (or different peers) sum bucket-wise,
    /// which percentile summaries cannot. Also feeds the `elm_slo_*`
    /// burn-rate families.
    pub ingest_hist: HistogramSnapshot,
    /// Crash-recovery counters.
    pub recovery: RecoveryStats,
    /// True once a node ever panicked in this session (panicked nodes stay
    /// poisoned across recoveries, per the paper's semantics).
    pub poisoned: bool,
    /// Per-node compute / queue-wait timings, if the session was opened
    /// with `"observe":true` (empty otherwise).
    pub nodes: Vec<NodeTimingSnapshot>,
    /// Trace spans lost to ring-buffer overflow (drop-oldest policy).
    pub spans_dropped: u64,
    /// Resource traps by kind: events governed off (and rolled back)
    /// without poisoning the session.
    pub traps: TrapStats,
}

/// Aggregated view across the whole server.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct ServerStats {
    /// Sessions currently hosted.
    pub sessions_live: u64,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by request.
    pub closed: u64,
    /// Sessions evicted for idling past the timeout.
    pub evicted_idle: u64,
    /// Sessions evicted after exhausting their restart budget.
    pub recovery_failed: u64,
    /// Supervised restarts summed over live sessions.
    pub restarts: u64,
    /// Journal entries re-applied during recovery, summed over live
    /// sessions.
    pub replayed_events: u64,
    /// Snapshots taken, summed over live sessions.
    pub snapshot_count: u64,
    /// Runtime counters summed over live sessions.
    pub runtime: StatsSnapshot,
    /// Ingress counters summed over live sessions.
    pub ingress: IngressStats,
    /// Recovery counters summed over live sessions.
    pub recovery: RecoveryStats,
    /// Latency over all live sessions' samples.
    pub latency: LatencySummary,
    /// Resource traps summed over live sessions.
    pub traps: TrapStats,
    /// Admission-control counters summed over shards.
    pub admission: AdmissionStats,
}

/// One server → subscriber push.
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// The session's output signal changed.
    Changed {
        /// Which session.
        session: u64,
        /// Monotonic per-session change counter.
        seq: u64,
        /// The new output value.
        value: PlainValue,
    },
    /// The session is gone; no further updates will arrive. Always the
    /// final message on a subscription stream.
    Closed {
        /// Which session.
        session: u64,
        /// `"closed"`, `"idle"`, `"recovery_failed"`, or `"shutdown"`.
        reason: String,
    },
    /// The session now lives on another cluster peer (failover or
    /// split-brain resolution). Rendered as a `closed` update with
    /// `reason:"moved"` plus the new peer's address, so pre-cluster
    /// subscribers still terminate cleanly while cluster-aware ones
    /// reconnect to `peer` and resubscribe. Final, like `Closed`.
    Moved {
        /// Which session.
        session: u64,
        /// Address of the peer now hosting the session.
        peer: String,
    },
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn as_u64(j: &Json) -> Option<u64> {
    match j {
        Json::U64(n) => Some(*n),
        Json::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn req_u64(json: &Json, name: &str) -> Result<u64, String> {
    json.get(name)
        .and_then(as_u64)
        .ok_or_else(|| format!("missing or non-integer field \"{name}\""))
}

fn opt_str(json: &Json, name: &str) -> Option<String> {
    json.get(name).and_then(Json::as_str).map(str::to_string)
}

fn opt_u64(json: &Json, name: &str) -> u64 {
    json.get(name).and_then(as_u64).unwrap_or(0)
}

fn plain_value(json: &Json, name: &str) -> Result<PlainValue, String> {
    let v = json
        .get(name)
        .ok_or_else(|| format!("missing field \"{name}\""))?;
    serde_json::from_value(v.clone()).map_err(|e| format!("bad \"{name}\": {e}"))
}

impl Request {
    /// Decodes one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, an unknown
    /// `cmd`, or missing/mistyped fields.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json: Json = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
        let cmd = json
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing string field \"cmd\"")?;
        match cmd {
            "open" => {
                let policy = match opt_str(&json, "policy") {
                    None => None,
                    Some(p) => Some(BackpressurePolicy::parse(&p).ok_or_else(|| {
                        format!("unknown policy '{p}' (block | drop-oldest | coalesce)")
                    })?),
                };
                Ok(Request::Open {
                    program: opt_str(&json, "program"),
                    source: opt_str(&json, "source"),
                    queue: json.get("queue").and_then(as_u64).map(|n| n as usize),
                    policy,
                    observe: matches!(json.get("observe"), Some(Json::Bool(true))),
                    session: json.get("session").and_then(as_u64),
                })
            }
            "event" => Ok(Request::Event {
                session: req_u64(&json, "session")?,
                input: opt_str(&json, "input").ok_or("missing string field \"input\"")?,
                value: plain_value(&json, "value")?,
                trace: opt_u64(&json, "trace"),
            }),
            "batch" => {
                let session = req_u64(&json, "session")?;
                let raw = json
                    .get("events")
                    .and_then(Json::as_seq)
                    .ok_or("missing array field \"events\"")?;
                let mut events = Vec::with_capacity(raw.len());
                for e in raw {
                    events.push((
                        opt_str(e, "input").ok_or("batch event missing \"input\"")?,
                        plain_value(e, "value")?,
                    ));
                }
                Ok(Request::Batch { session, events })
            }
            "query" => Ok(Request::Query {
                session: req_u64(&json, "session")?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                session: req_u64(&json, "session")?,
            }),
            "stats" => Ok(Request::Stats {
                session: json.get("session").and_then(as_u64),
            }),
            "metrics" => Ok(Request::Metrics {
                cluster: opt_str(&json, "scope").as_deref() == Some("cluster"),
            }),
            "blackbox" => Ok(Request::Blackbox),
            "trace" => Ok(Request::Trace {
                session: req_u64(&json, "session")?,
            }),
            "describe" => Ok(Request::Describe {
                session: req_u64(&json, "session")?,
            }),
            "close" => Ok(Request::Close {
                session: req_u64(&json, "session")?,
            }),
            "hello" => Ok(Request::Hello {
                from: req_u64(&json, "from")? as usize,
                addr: opt_str(&json, "addr").ok_or("missing string field \"addr\"")?,
            }),
            "place" => Ok(Request::Place {
                key: req_u64(&json, "key")?,
            }),
            "journal-append" => Ok(Request::JournalAppend {
                from: req_u64(&json, "from")? as usize,
                session: req_u64(&json, "session")?,
                entry: JournalEntry {
                    seq: req_u64(&json, "seq")?,
                    input: opt_str(&json, "input").ok_or("missing string field \"input\"")?,
                    value: plain_value(&json, "value")?,
                    trace: opt_u64(&json, "trace"),
                },
                epoch: opt_u64(&json, "epoch"),
            }),
            "snapshot-ship" => {
                let dropped = matches!(json.get("dropped"), Some(Json::Bool(true)));
                let meta = if dropped {
                    // A drop only needs the session id; the metadata is
                    // about to be forgotten anyway.
                    SessionMeta {
                        program: String::new(),
                        source: None,
                        queue: 0,
                        policy: BackpressurePolicy::Block,
                    }
                } else {
                    let policy = opt_str(&json, "policy")
                        .ok_or("missing string field \"policy\"")
                        .and_then(|p| {
                            BackpressurePolicy::parse(&p).ok_or("unknown backpressure policy")
                        })?;
                    SessionMeta {
                        program: opt_str(&json, "program")
                            .ok_or("missing string field \"program\"")?,
                        source: opt_str(&json, "source"),
                        queue: req_u64(&json, "queue")? as usize,
                        policy,
                    }
                };
                let snapshot = match json.get("snapshot") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(Box::new(
                        serde_json::from_value::<WireSnapshot>(v.clone())
                            .map_err(|e| format!("bad \"snapshot\": {e}"))?,
                    )),
                };
                Ok(Request::SnapshotShip {
                    from: req_u64(&json, "from")? as usize,
                    session: req_u64(&json, "session")?,
                    meta,
                    snapshot,
                    through: req_u64(&json, "through")?,
                    dropped,
                    trace: opt_u64(&json, "trace"),
                    epoch: opt_u64(&json, "epoch"),
                })
            }
            "heartbeat" => Ok(Request::Heartbeat {
                from: req_u64(&json, "from")? as usize,
            }),
            "takeover" => {
                let sessions = json
                    .get("sessions")
                    .and_then(Json::as_seq)
                    .ok_or("missing array field \"sessions\"")?
                    .iter()
                    .map(|s| as_u64(s).ok_or("non-integer session id in \"sessions\""))
                    .collect::<Result<Vec<u64>, _>>()?;
                // Optional parallel trace/epoch arrays (absent from older
                // senders): pad/truncate to the session list's length.
                let mut traces: Vec<u64> = json
                    .get("traces")
                    .and_then(Json::as_seq)
                    .map(|seq| seq.iter().map(|t| as_u64(t).unwrap_or(0)).collect())
                    .unwrap_or_default();
                traces.resize(sessions.len(), 0);
                let mut epochs: Vec<u64> = json
                    .get("epochs")
                    .and_then(Json::as_seq)
                    .map(|seq| seq.iter().map(|t| as_u64(t).unwrap_or(0)).collect())
                    .unwrap_or_default();
                epochs.resize(sessions.len(), 0);
                Ok(Request::Takeover {
                    from: req_u64(&json, "from")? as usize,
                    addr: opt_str(&json, "addr").ok_or("missing string field \"addr\"")?,
                    sessions,
                    traces,
                    epochs,
                })
            }
            other => Err(format!("unknown cmd '{other}'")),
        }
    }
}

fn line(json: Json) -> String {
    serde_json::to_string(&json).expect("response serialization is infallible")
}

/// `{"ok":false,"error":…}` — the reply for any failed request.
pub fn err_line(msg: &str) -> String {
    line(obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.to_string())),
    ]))
}

/// `{"ok":false,"error":"overloaded","retry_after_ms":…}` — the typed
/// load-shedding reply. Machine-parseable: clients match on the `error`
/// string and honor `retry_after_ms` as a minimum backoff.
pub fn overloaded_line(retry_after_ms: u64) -> String {
    line(obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("overloaded".to_string())),
        ("retry_after_ms", Json::U64(retry_after_ms)),
    ]))
}

/// `{"ok":false,"error":"protocol_error","detail":…}` — the typed reply
/// for framing violations (oversized line, invalid UTF-8). The connection
/// stays usable: the offending line is discarded, not the stream.
pub fn protocol_error_line(detail: &str) -> String {
    line(obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("protocol_error".to_string())),
        ("detail", Json::Str(detail.to_string())),
    ]))
}

fn ok_with(mut fields: Vec<(&str, Json)>) -> String {
    fields.insert(0, ("ok", Json::Bool(true)));
    line(obj(fields))
}

fn to_json<T: serde::Serialize>(v: &T) -> Json {
    serde_json::to_value(v).expect("response serialization is infallible")
}

/// Reply for `open`.
pub fn opened_line(info: &OpenInfo) -> String {
    ok_with(vec![
        ("session", Json::U64(info.session)),
        ("program", Json::Str(info.program.clone())),
        (
            "inputs",
            Json::Seq(info.inputs.iter().cloned().map(Json::Str).collect()),
        ),
        ("initial", to_json(&info.initial)),
    ])
}

/// Reply for `event`.
pub fn event_line(outcome: EnqueueOutcome) -> String {
    ok_with(vec![("outcome", Json::Str(outcome.label().to_string()))])
}

/// Reply for `batch`.
pub fn batch_line(outcome: &BatchOutcome) -> String {
    ok_with(vec![("outcome", to_json(outcome))])
}

/// Reply for `query`.
pub fn query_line(info: &QueryInfo) -> String {
    ok_with(vec![
        ("session", Json::U64(info.session)),
        ("program", Json::Str(info.program.clone())),
        ("value", to_json(&info.value)),
        ("queue_len", Json::U64(info.queue_len)),
        ("last_seq", Json::U64(info.last_seq)),
        ("poisoned", Json::Bool(info.poisoned)),
        ("epoch", Json::U64(info.epoch)),
    ])
}

/// Reply for `describe`.
pub fn describe_line(info: &DescribeInfo) -> String {
    ok_with(vec![
        ("session", Json::U64(info.session)),
        ("program", Json::Str(info.program.clone())),
        (
            "source",
            match &info.source {
                Some(src) => Json::Str(src.clone()),
                None => Json::Null,
            },
        ),
        ("fingerprint", Json::U64(info.fingerprint)),
        (
            "inputs",
            Json::Seq(info.inputs.iter().cloned().map(Json::Str).collect()),
        ),
    ])
}

/// Reply for `subscribe` (updates then stream separately).
pub fn subscribed_line(session: u64) -> String {
    ok_with(vec![("subscribed", Json::U64(session))])
}

/// Reply for `close`.
pub fn closed_line(session: u64) -> String {
    ok_with(vec![("closed", Json::U64(session))])
}

/// Reply for global `stats`.
pub fn stats_line(global: &ServerStats, sessions: &[SessionStats]) -> String {
    ok_with(vec![
        ("global", to_json(global)),
        (
            "sessions",
            Json::Seq(sessions.iter().map(to_json).collect()),
        ),
    ])
}

/// Reply for per-session `stats`.
pub fn session_stats_line(stats: &SessionStats) -> String {
    ok_with(vec![("stats", to_json(stats))])
}

/// Reply for `metrics`: the Prometheus exposition text, JSON-escaped.
pub fn metrics_line(text: &str) -> String {
    ok_with(vec![("metrics", Json::Str(text.to_string()))])
}

/// Reply for `blackbox`: the flight recorder's NDJSON dump, JSON-escaped.
pub fn blackbox_line(ndjson: &str) -> String {
    ok_with(vec![("blackbox", Json::Str(ndjson.to_string()))])
}

/// Reply for `trace` (span trees then stream separately).
pub fn trace_subscribed_line(session: u64) -> String {
    ok_with(vec![("trace_subscribed", Json::U64(session))])
}

/// An asynchronous `{"trace":…}` push line carrying one completed span
/// tree: one ingress event's full propagation through the session's graph.
pub fn trace_line(session: u64, tree: &PlainSpanTree) -> String {
    line(obj(vec![
        ("trace", Json::U64(tree.trace)),
        ("session", Json::U64(session)),
        ("spans", to_json(&tree.spans)),
    ]))
}

/// An asynchronous `{"update":…}` push line.
pub fn update_line(update: &Update) -> String {
    match update {
        Update::Changed {
            session,
            seq,
            value,
        } => line(obj(vec![
            ("update", Json::Str("changed".to_string())),
            ("session", Json::U64(*session)),
            ("seq", Json::U64(*seq)),
            ("value", to_json(value)),
        ])),
        Update::Closed { session, reason } => line(obj(vec![
            ("update", Json::Str("closed".to_string())),
            ("session", Json::U64(*session)),
            ("reason", Json::Str(reason.clone())),
        ])),
        Update::Moved { session, peer } => line(obj(vec![
            ("update", Json::Str("closed".to_string())),
            ("session", Json::U64(*session)),
            ("reason", Json::Str("moved".to_string())),
            ("peer", Json::Str(peer.clone())),
        ])),
    }
}

/// `{"ok":false,"error":"moved","session":…,"peer":…,"trace":…,"epoch":…}`
/// — the typed redirect for a request that reached the wrong cluster
/// peer. Clients reconnect to `peer` and repeat the request there.
/// `trace` is the takeover's last-replicated trace id for the session (0
/// when unknown), tying the redirect hop into the same causal story.
/// `epoch` is the owner's ownership epoch where the redirecting peer
/// knows it (0 otherwise): an epoch above what the client has witnessed
/// marks a genuine ownership handoff, not a mere wrong-peer bounce, so
/// epoch-aware clients resynchronize before resending non-idempotent
/// requests.
pub fn moved_line(session: u64, peer: &str, trace: u64, epoch: u64) -> String {
    line(obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("moved".to_string())),
        ("session", Json::U64(session)),
        ("peer", Json::Str(peer.to_string())),
        ("trace", Json::U64(trace)),
        ("epoch", Json::U64(epoch)),
    ]))
}

/// Reply for a peer `hello`: confirms the link and names the receiver.
pub fn hello_line(me: usize) -> String {
    ok_with(vec![("peer", Json::U64(me as u64))])
}

/// Reply for `place`: where `key` lives and who backs it up.
pub fn place_line(key: u64, primary: (usize, &str), replica: (usize, &str)) -> String {
    let peer = |(index, addr): (usize, &str)| {
        obj(vec![
            ("peer", Json::U64(index as u64)),
            ("addr", Json::Str(addr.to_string())),
        ])
    };
    ok_with(vec![
        ("key", Json::U64(key)),
        ("primary", peer(primary)),
        ("replica", peer(replica)),
    ])
}

/// Reply for a peer `takeover`: how many route updates were recorded.
pub fn takeover_ack_line(noted: usize) -> String {
    ok_with(vec![("noted", Json::U64(noted as u64))])
}

/// Renders an outbound peer `hello` request line.
pub fn hello_request(from: usize, addr: &str) -> String {
    line(obj(vec![
        ("cmd", Json::Str("hello".to_string())),
        ("from", Json::U64(from as u64)),
        ("addr", Json::Str(addr.to_string())),
    ]))
}

/// Renders an outbound peer `journal-append` request line. `epoch` is
/// the sender's ownership epoch for the session.
pub fn journal_append_request(
    from: usize,
    session: u64,
    entry: &JournalEntry,
    epoch: u64,
) -> String {
    line(obj(vec![
        ("cmd", Json::Str("journal-append".to_string())),
        ("from", Json::U64(from as u64)),
        ("session", Json::U64(session)),
        ("seq", Json::U64(entry.seq)),
        ("input", Json::Str(entry.input.clone())),
        ("value", to_json(&entry.value)),
        ("trace", Json::U64(entry.trace)),
        ("epoch", Json::U64(epoch)),
    ]))
}

/// Renders an outbound peer `snapshot-ship` request line. `epoch` is
/// the sender's ownership epoch for the session.
pub fn snapshot_ship_request(
    from: usize,
    session: u64,
    meta: &SessionMeta,
    snapshot: Option<&WireSnapshot>,
    through: u64,
    trace: u64,
    epoch: u64,
) -> String {
    let mut fields = vec![
        ("cmd", Json::Str("snapshot-ship".to_string())),
        ("from", Json::U64(from as u64)),
        ("session", Json::U64(session)),
        ("program", Json::Str(meta.program.clone())),
        ("queue", Json::U64(meta.queue as u64)),
        ("policy", Json::Str(meta.policy.label().to_string())),
        ("through", Json::U64(through)),
        ("trace", Json::U64(trace)),
        ("epoch", Json::U64(epoch)),
    ];
    if let Some(src) = &meta.source {
        fields.push(("source", Json::Str(src.clone())));
    }
    if let Some(snap) = snapshot {
        fields.push(("snapshot", to_json(snap)));
    }
    line(obj(fields))
}

/// Renders an outbound peer `snapshot-ship` drop line (`dropped:true`).
/// `epoch` fences stale drops: a zombie primary's close must not erase
/// the adopter's replica state.
pub fn snapshot_drop_request(from: usize, session: u64, epoch: u64) -> String {
    line(obj(vec![
        ("cmd", Json::Str("snapshot-ship".to_string())),
        ("from", Json::U64(from as u64)),
        ("session", Json::U64(session)),
        ("through", Json::U64(0)),
        ("dropped", Json::Bool(true)),
        ("epoch", Json::U64(epoch)),
    ]))
}

/// Renders an outbound peer `heartbeat` request line.
pub fn heartbeat_request(from: usize) -> String {
    line(obj(vec![
        ("cmd", Json::Str("heartbeat".to_string())),
        ("from", Json::U64(from as u64)),
    ]))
}

/// Renders an outbound peer `takeover` broadcast line. `traces` is the
/// per-session last-replicated trace id and `epochs` the per-session
/// ownership epoch the adopter now serves under, both parallel to
/// `sessions`.
pub fn takeover_request(
    from: usize,
    addr: &str,
    sessions: &[u64],
    traces: &[u64],
    epochs: &[u64],
) -> String {
    line(obj(vec![
        ("cmd", Json::Str("takeover".to_string())),
        ("from", Json::U64(from as u64)),
        ("addr", Json::Str(addr.to_string())),
        (
            "sessions",
            Json::Seq(sessions.iter().map(|&s| Json::U64(s)).collect()),
        ),
        (
            "traces",
            Json::Seq(traces.iter().map(|&t| Json::U64(t)).collect()),
        ),
        (
            "epochs",
            Json::Seq(epochs.iter().map(|&e| Json::U64(e)).collect()),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_command_set() {
        let open =
            Request::parse(r#"{"cmd":"open","program":"counter","queue":8,"policy":"coalesce"}"#)
                .unwrap();
        assert_eq!(
            open,
            Request::Open {
                program: Some("counter".to_string()),
                source: None,
                queue: Some(8),
                policy: Some(BackpressurePolicy::Coalesce),
                observe: false,
                session: None,
            }
        );

        let keyed = Request::parse(r#"{"cmd":"open","program":"counter","session":41}"#).unwrap();
        assert!(matches!(
            keyed,
            Request::Open {
                session: Some(41),
                ..
            }
        ));

        let observed =
            Request::parse(r#"{"cmd":"open","program":"counter","observe":true}"#).unwrap();
        assert!(matches!(observed, Request::Open { observe: true, .. }));

        let event =
            Request::parse(r#"{"cmd":"event","session":3,"input":"Mouse.x","value":{"Int":7}}"#)
                .unwrap();
        assert_eq!(
            event,
            Request::Event {
                session: 3,
                input: "Mouse.x".to_string(),
                value: PlainValue::Int(7),
                trace: 0,
            }
        );

        let traced = Request::parse(
            r#"{"cmd":"event","session":3,"input":"Mouse.x","value":{"Int":7},"trace":99}"#,
        )
        .unwrap();
        assert!(matches!(traced, Request::Event { trace: 99, .. }));

        let batch = Request::parse(
            r#"{"cmd":"batch","session":1,"events":[{"input":"Mouse.clicks","value":"Unit"}]}"#,
        )
        .unwrap();
        assert_eq!(
            batch,
            Request::Batch {
                session: 1,
                events: vec![("Mouse.clicks".to_string(), PlainValue::Unit)],
            }
        );

        assert_eq!(
            Request::parse(r#"{"cmd":"stats"}"#).unwrap(),
            Request::Stats { session: None }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics { cluster: false }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"metrics","scope":"cluster"}"#).unwrap(),
            Request::Metrics { cluster: true }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"blackbox"}"#).unwrap(),
            Request::Blackbox
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"trace","session":7}"#).unwrap(),
            Request::Trace { session: 7 }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"describe","session":4}"#).unwrap(),
            Request::Describe { session: 4 }
        );
        assert!(Request::parse(r#"{"cmd":"describe"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"trace"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"nope"}"#).is_err());
        assert!(Request::parse("{").is_err());
        assert!(Request::parse(r#"{"cmd":"event","session":1,"input":"x"}"#).is_err());
    }

    #[test]
    fn reply_lines_are_json_objects() {
        let l = opened_line(&OpenInfo {
            session: 2,
            program: "counter".to_string(),
            inputs: vec!["Mouse.clicks".to_string()],
            initial: PlainValue::Int(0),
        });
        let parsed: Json = serde_json::from_str(&l).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        // The JSON parser reads small integers back as i64.
        assert_eq!(parsed.get("session"), Some(&Json::I64(2)));
        assert_eq!(
            parsed.get("initial"),
            Some(&Json::Map(vec![("Int".to_string(), Json::I64(0))]))
        );

        let e = err_line("boom");
        let parsed: Json = serde_json::from_str(&e).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn describe_line_carries_source_fingerprint_and_inputs() {
        let l = describe_line(&DescribeInfo {
            session: 9,
            program: "<source>".to_string(),
            source: Some("main = lift (\\x -> x) Mouse.x\n".to_string()),
            fingerprint: 0xdead_beef,
            inputs: vec!["Mouse.x".to_string()],
        });
        let parsed: Json = serde_json::from_str(&l).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("session"), Some(&Json::I64(9)));
        assert_eq!(
            parsed.get("source").and_then(Json::as_str),
            Some("main = lift (\\x -> x) Mouse.x\n")
        );
        assert_eq!(parsed.get("fingerprint"), Some(&Json::I64(0xdead_beef)));

        // Native graphs have no source: the field is null, not absent.
        let l = describe_line(&DescribeInfo {
            session: 1,
            program: "crashy".to_string(),
            source: None,
            fingerprint: 1,
            inputs: vec!["Mouse.x".to_string()],
        });
        let parsed: Json = serde_json::from_str(&l).unwrap();
        assert_eq!(parsed.get("source"), Some(&Json::Null));
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::compute(&mut samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn latency_summary_empty_set_is_the_zero_default() {
        assert_eq!(LatencySummary::compute(&mut []), LatencySummary::default());
        assert_eq!(
            LatencySummary::compute(&mut Vec::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn latency_summary_single_sample_reports_it_everywhere() {
        let mut one = [42u64];
        let s = LatencySummary::compute(&mut one);
        assert_eq!(
            s,
            LatencySummary {
                count: 1,
                p50_us: 42,
                p90_us: 42,
                p99_us: 42,
                max_us: 42,
            }
        );
    }

    #[test]
    fn metrics_and_trace_lines_are_json_objects() {
        let m = metrics_line("# HELP elm_events_total x\nelm_events_total 3\n");
        let parsed: Json = serde_json::from_str(&m).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert!(parsed
            .get("metrics")
            .and_then(Json::as_str)
            .unwrap()
            .contains("elm_events_total 3"));

        let tree = PlainSpanTree {
            trace: 9,
            spans: vec![elm_runtime::PlainSpan {
                node: 0,
                label: "Mouse.clicks".to_string(),
                kind: "input".to_string(),
                seq: 0,
                start_ns: 10,
                end_ns: 20,
                queue_ns: 0,
                changed: true,
                panicked: false,
                parent: None,
            }],
        };
        let t = trace_line(4, &tree);
        let parsed: Json = serde_json::from_str(&t).unwrap();
        assert_eq!(parsed.get("trace"), Some(&Json::I64(9)));
        assert_eq!(parsed.get("session"), Some(&Json::I64(4)));
        assert_eq!(parsed.get("spans").and_then(Json::as_seq).unwrap().len(), 1);
    }

    #[test]
    fn batch_outcome_tallies() {
        let mut b = BatchOutcome::default();
        b.record(EnqueueOutcome::Accepted);
        b.record(EnqueueOutcome::DroppedOldest);
        b.record(EnqueueOutcome::Coalesced);
        b.record(EnqueueOutcome::Ignored);
        b.record(EnqueueOutcome::Shed { retry_after_ms: 25 });
        assert_eq!(
            b,
            BatchOutcome {
                accepted: 2,
                dropped: 1,
                coalesced: 1,
                ignored: 1,
                shed: 1,
                retry_after_ms: 0,
            }
        );
    }

    #[test]
    fn overload_and_protocol_error_lines_are_typed() {
        let o = overloaded_line(40);
        let parsed: Json = serde_json::from_str(&o).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("overloaded")
        );
        assert_eq!(parsed.get("retry_after_ms"), Some(&Json::I64(40)));

        let p = protocol_error_line("line exceeds 1048576 bytes");
        let parsed: Json = serde_json::from_str(&p).unwrap();
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("protocol_error")
        );
        assert!(parsed
            .get("detail")
            .and_then(Json::as_str)
            .unwrap()
            .contains("1048576"));
    }

    #[test]
    fn peer_verbs_round_trip_through_their_request_renderers() {
        assert_eq!(
            Request::parse(&hello_request(2, "127.0.0.1:7001")).unwrap(),
            Request::Hello {
                from: 2,
                addr: "127.0.0.1:7001".to_string(),
            }
        );
        assert_eq!(
            Request::parse(&heartbeat_request(1)).unwrap(),
            Request::Heartbeat { from: 1 }
        );

        let entry = JournalEntry {
            seq: 9,
            input: "Mouse.x".to_string(),
            value: PlainValue::Int(-4),
            trace: 77,
        };
        assert_eq!(
            Request::parse(&journal_append_request(0, 5, &entry, 3)).unwrap(),
            Request::JournalAppend {
                from: 0,
                session: 5,
                entry,
                epoch: 3,
            }
        );

        let meta = SessionMeta {
            program: "<source>".to_string(),
            source: Some("main = Mouse.x\n".to_string()),
            queue: 64,
            policy: BackpressurePolicy::Coalesce,
        };
        let shipped = Request::parse(&snapshot_ship_request(1, 5, &meta, None, 0, 42, 2)).unwrap();
        assert_eq!(
            shipped,
            Request::SnapshotShip {
                from: 1,
                session: 5,
                meta,
                snapshot: None,
                through: 0,
                dropped: false,
                trace: 42,
                epoch: 2,
            }
        );

        let dropped = Request::parse(&snapshot_drop_request(1, 5, 4)).unwrap();
        assert!(matches!(
            dropped,
            Request::SnapshotShip {
                session: 5,
                dropped: true,
                epoch: 4,
                ..
            }
        ));

        assert_eq!(
            Request::parse(&takeover_request(
                2,
                "127.0.0.1:7002",
                &[3, 8],
                &[91, 0],
                &[2, 2]
            ))
            .unwrap(),
            Request::Takeover {
                from: 2,
                addr: "127.0.0.1:7002".to_string(),
                sessions: vec![3, 8],
                traces: vec![91, 0],
                epochs: vec![2, 2],
            }
        );
        // A pre-trace/pre-epoch sender omits the parallel arrays: pad
        // with zeros (0 = unknown trace / unfenced epoch).
        let legacy = Request::parse(
            r#"{"cmd":"takeover","from":2,"addr":"127.0.0.1:7002","sessions":[3,8]}"#,
        )
        .unwrap();
        assert!(matches!(
            legacy,
            Request::Takeover { ref traces, ref epochs, .. }
                if traces == &vec![0, 0] && epochs == &vec![0, 0]
        ));
        // Likewise a pre-epoch journal-append parses with epoch 0.
        let legacy_append = Request::parse(
            r#"{"cmd":"journal-append","from":0,"session":5,"seq":9,"input":"Mouse.x","value":{"Int":1}}"#,
        )
        .unwrap();
        assert!(matches!(
            legacy_append,
            Request::JournalAppend { epoch: 0, .. }
        ));
        assert_eq!(
            Request::parse(r#"{"cmd":"place","key":12}"#).unwrap(),
            Request::Place { key: 12 }
        );
    }

    #[test]
    fn moved_redirects_are_typed_on_both_planes() {
        // Request plane: a typed error with the new peer's address, the
        // takeover's trace id, and the owner's epoch.
        let parsed: Json = serde_json::from_str(&moved_line(7, "127.0.0.1:7002", 55, 3)).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("error").and_then(Json::as_str), Some("moved"));
        assert_eq!(
            parsed.get("peer").and_then(Json::as_str),
            Some("127.0.0.1:7002")
        );
        assert_eq!(parsed.get("trace"), Some(&Json::I64(55)));
        assert_eq!(parsed.get("epoch"), Some(&Json::I64(3)));

        // Subscription plane: a final closed update with reason "moved",
        // so pre-cluster subscribers still terminate cleanly.
        let update = update_line(&Update::Moved {
            session: 7,
            peer: "127.0.0.1:7002".to_string(),
        });
        let parsed: Json = serde_json::from_str(&update).unwrap();
        assert_eq!(parsed.get("update").and_then(Json::as_str), Some("closed"));
        assert_eq!(parsed.get("reason").and_then(Json::as_str), Some("moved"));
        assert_eq!(
            parsed.get("peer").and_then(Json::as_str),
            Some("127.0.0.1:7002")
        );
    }

    #[test]
    fn place_and_query_lines_carry_cluster_fields() {
        let parsed: Json = serde_json::from_str(&place_line(
            12,
            (0, "127.0.0.1:7000"),
            (2, "127.0.0.1:7002"),
        ))
        .unwrap();
        assert_eq!(parsed.get("key"), Some(&Json::I64(12)));
        let primary = parsed.get("primary").unwrap();
        assert_eq!(primary.get("peer"), Some(&Json::I64(0)));
        assert_eq!(
            primary.get("addr").and_then(Json::as_str),
            Some("127.0.0.1:7000")
        );

        let q = query_line(&QueryInfo {
            session: 3,
            program: "counter".to_string(),
            value: PlainValue::Int(17),
            queue_len: 0,
            last_seq: 17,
            poisoned: false,
            epoch: 2,
        });
        let parsed: Json = serde_json::from_str(&q).unwrap();
        assert_eq!(parsed.get("last_seq"), Some(&Json::I64(17)));
        assert_eq!(parsed.get("epoch"), Some(&Json::I64(2)));
    }

    #[test]
    fn trap_stats_record_and_merge() {
        let mut t = TrapStats::default();
        t.record(TrapKind::OutOfFuel);
        t.record(TrapKind::OutOfFuel);
        t.record(TrapKind::DeadlineExceeded);
        assert_eq!(t.total(), 3);
        assert_eq!(t.count(TrapKind::OutOfFuel), 2);
        let merged = t.merged(&TrapStats {
            out_of_memory: 4,
            ..TrapStats::default()
        });
        assert_eq!(merged.total(), 7);
        assert_eq!(merged.out_of_memory, 4);
    }
}
