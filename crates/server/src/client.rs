//! Minimal blocking NDJSON client with overload-aware retry.
//!
//! Speaks the same wire protocol as [`crate::net`]: one JSON request per
//! line, one JSON reply per line. The retry layer understands the typed
//! `{"ok":false,"error":"overloaded","retry_after_ms":N}` shed reply and
//! backs off with jittered exponential delays, honouring the server's
//! `retry_after_ms` hint as a floor — the cooperating half of the
//! admission-control contract.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value as Json;

/// Numeric accessor over the vendored JSON value.
fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::U64(n) => Some(*n),
        Json::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Retry/backoff tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First retry delay, before the server hint and jitter.
    pub base_ms: u64,
    /// Ceiling on any single delay.
    pub max_ms: u64,
    /// How many retries before giving up and returning the shed reply.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 5,
            max_ms: 2_000,
            max_retries: 64,
        }
    }
}

/// What the retry layer has seen so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests handed to [`Client::request_with_retry`].
    pub requests: u64,
    /// `overloaded` replies received (one per shed attempt).
    pub sheds: u64,
    /// Attempts replayed after backoff.
    pub retries: u64,
    /// Requests that exhausted `max_retries` still shed.
    pub gave_up: u64,
}

/// One connection to the server's TCP front end.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    rng: StdRng,
    policy: RetryPolicy,
    stats: RetryStats,
}

/// Next backoff delay: exponential in the attempt number, floored by the
/// server's `retry_after_ms` hint, capped at `policy.max_ms`, and
/// jittered to the upper half of the window so synchronized clients
/// de-correlate.
fn backoff_ms(policy: RetryPolicy, attempt: u32, hint_ms: u64, rng: &mut StdRng) -> u64 {
    let exp = policy
        .base_ms
        .saturating_mul(1u64 << attempt.min(20))
        .min(policy.max_ms);
    let target = exp.max(hint_ms).min(policy.max_ms.max(hint_ms));
    if target <= 1 {
        return target;
    }
    rng.gen_range(target / 2 + 1..=target)
}

impl Client {
    /// Connects with the default policy, seeding jitter from `seed` so
    /// load-generation runs stay reproducible.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn connect(addr: SocketAddr, seed: u64) -> io::Result<Client> {
        Client::connect_with(addr, seed, RetryPolicy::default())
    }

    /// [`Client::connect`] with explicit retry tuning.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn connect_with(addr: SocketAddr, seed: u64, policy: RetryPolicy) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            rng: StdRng::seed_from_u64(seed),
            policy,
            stats: RetryStats::default(),
        })
    }

    /// Retry counters so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Sends one request line and returns the next reply object,
    /// skipping blank keepalives and subscription pushes.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, EOF, or an unparseable reply line.
    pub fn request(&mut self, line: &str) -> io::Result<Json> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let mut reply = String::new();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let reply = reply.trim();
            if reply.is_empty() {
                continue; // trace keepalive
            }
            let json: Json = serde_json::from_str(reply).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}"))
            })?;
            if json.get("update").is_some() {
                continue; // interleaved subscription push
            }
            return Ok(json);
        }
    }

    /// [`Client::request`], but when the server sheds the request with
    /// `overloaded` it sleeps (jittered exponential backoff, floored at
    /// the server's `retry_after_ms` hint) and resends, up to
    /// `max_retries` times. The final shed reply is returned verbatim if
    /// the budget runs out, so callers can still see the refusal.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, EOF, or an unparseable reply line.
    pub fn request_with_retry(&mut self, line: &str) -> io::Result<Json> {
        self.stats.requests += 1;
        let mut attempt = 0u32;
        loop {
            let reply = self.request(line)?;
            let overloaded = reply.get("error").and_then(Json::as_str) == Some("overloaded");
            if !overloaded {
                return Ok(reply);
            }
            self.stats.sheds += 1;
            if attempt >= self.policy.max_retries {
                self.stats.gave_up += 1;
                return Ok(reply);
            }
            let hint = reply.get("retry_after_ms").and_then(as_u64).unwrap_or(0);
            let delay = backoff_ms(self.policy, attempt, hint, &mut self.rng);
            thread::sleep(Duration::from_millis(delay));
            attempt += 1;
            self.stats.retries += 1;
        }
    }

    /// Opens a builtin program; returns the new session id.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an error reply.
    pub fn open_builtin(&mut self, program: &str) -> io::Result<u64> {
        let reply = self.request(&format!("{{\"cmd\":\"open\",\"program\":\"{program}\"}}"))?;
        expect_ok(&reply)?;
        reply
            .get("session")
            .and_then(as_u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "open reply lacks session"))
    }

    /// Sends one event (with retry); `value` must already be the JSON
    /// encoding of a plain value, e.g. `{"Int":3}`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn event(&mut self, session: u64, input: &str, value: &str) -> io::Result<Json> {
        self.request_with_retry(&format!(
            "{{\"cmd\":\"event\",\"session\":{session},\"input\":\"{input}\",\"value\":{value}}}"
        ))
    }

    /// Queries the session's current output value.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn query(&mut self, session: u64) -> io::Result<Json> {
        self.request(&format!("{{\"cmd\":\"query\",\"session\":{session}}}"))
    }

    /// Fetches the Prometheus exposition text via the `metrics` verb.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a malformed reply.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        let reply = self.request("{\"cmd\":\"metrics\"}")?;
        reply
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "metrics reply lacks text"))
    }

    /// Fetches the cluster-federated exposition: the receiving peer fans
    /// out to the whole group and merges the scrapes with `peer` labels.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a malformed reply.
    pub fn metrics_text_cluster(&mut self) -> io::Result<String> {
        let reply = self.request("{\"cmd\":\"metrics\",\"scope\":\"cluster\"}")?;
        reply
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "metrics reply lacks text"))
    }

    /// Fetches the server's flight-recorder contents as NDJSON via the
    /// `blackbox` verb.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a malformed reply.
    pub fn blackbox_text(&mut self) -> io::Result<String> {
        let reply = self.request("{\"cmd\":\"blackbox\"}")?;
        reply
            .get("blackbox")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "blackbox reply lacks text"))
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn close(&mut self, session: u64) -> io::Result<Json> {
        self.request(&format!("{{\"cmd\":\"close\",\"session\":{session}}}"))
    }
}

/// How many consecutive `moved` redirects a single request may follow
/// before the client declares a routing loop. During a partition two
/// peers can each believe the other owns a session; an uncapped client
/// would bounce between them forever.
const MAX_REDIRECT_HOPS: usize = 8;

/// A cluster-aware client: connects to any peer of the group, follows
/// typed `{"error":"moved","peer":...}` redirects to a session's new
/// home, and rides out a failover window by rotating peers with
/// jittered backoff until the takeover lands (or the deadline passes).
///
/// The client is also epoch-aware: every successful reply that carries a
/// `session`/`epoch` pair records the highest ownership epoch witnessed
/// for that session, and a later reply at a *lower* epoch — a zombie
/// primary still serving pre-takeover state — is refused and retried on
/// another peer instead of being returned to the caller.
pub struct ClusterClient {
    peers: Vec<SocketAddr>,
    current: usize,
    client: Option<Client>,
    rng: StdRng,
    policy: RetryPolicy,
    seed: u64,
    moves: u64,
    reconnects: u64,
    epochs: std::collections::HashMap<u64, u64>,
    stale_epochs: u64,
}

impl ClusterClient {
    /// Builds a client over the peer group; nothing connects until the
    /// first request.
    pub fn new(peers: Vec<SocketAddr>, seed: u64) -> ClusterClient {
        assert!(!peers.is_empty(), "a cluster has at least one peer");
        ClusterClient {
            peers,
            current: 0,
            client: None,
            rng: StdRng::seed_from_u64(seed ^ 0x636c_7573),
            policy: RetryPolicy::default(),
            seed,
            moves: 0,
            reconnects: 0,
            epochs: std::collections::HashMap::new(),
            stale_epochs: 0,
        }
    }

    /// `moved` redirects followed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Replies refused because they reported a session epoch below the
    /// highest this client has witnessed (zombie-primary reads).
    pub fn stale_epochs(&self) -> u64 {
        self.stale_epochs
    }

    /// Reconnects performed so far (peer rotation + redirect targets).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The peer the client currently talks to.
    pub fn current_peer(&self) -> SocketAddr {
        self.peers[self.current]
    }

    /// Points the client at `peer` (following a redirect), registering
    /// the address if placement never listed it.
    fn point_at(&mut self, peer: SocketAddr) {
        match self.peers.iter().position(|p| *p == peer) {
            Some(i) => self.current = i,
            None => {
                self.peers.push(peer);
                self.current = self.peers.len() - 1;
            }
        }
        self.client = None;
    }

    fn rotate(&mut self) {
        self.current = (self.current + 1) % self.peers.len();
        self.client = None;
    }

    /// Compares a successful reply's `session`/`epoch` pair against the
    /// highest epoch witnessed so far. Returns a description when the
    /// reply is stale (served below a known-higher epoch); otherwise
    /// records the epoch as the new high-water mark and returns `None`.
    /// Replies without both fields (or with the pre-epoch value 0) pass
    /// through untouched.
    fn observe_epoch(&mut self, reply: &Json) -> Option<String> {
        let session = reply.get("session").and_then(as_u64)?;
        let epoch = reply.get("epoch").and_then(as_u64)?;
        if epoch == 0 {
            return None;
        }
        let known = self.epochs.entry(session).or_insert(0);
        if epoch < *known {
            return Some(format!(
                "session {session} served at stale epoch {epoch} < {known}"
            ));
        }
        *known = epoch;
        None
    }

    /// Records the owner epoch carried on a `moved` redirect and reports
    /// whether the redirect reveals an ownership *handoff*: an epoch
    /// above the one this client last witnessed for the session. A plain
    /// wrong-peer bounce (same epoch, or no epoch witnessed yet) returns
    /// `None`.
    fn moved_epoch_advanced(&mut self, reply: &Json) -> Option<(u64, u64)> {
        let session = reply.get("session").and_then(as_u64)?;
        let epoch = reply.get("epoch").and_then(as_u64)?;
        if epoch == 0 {
            return None;
        }
        let known = self.epochs.entry(session).or_insert(0);
        let witnessed = *known;
        *known = witnessed.max(epoch);
        (witnessed > 0 && epoch > witnessed).then_some((witnessed, epoch))
    }

    fn try_once(&mut self, line: &str) -> io::Result<Json> {
        if self.client.is_none() {
            let addr = self.peers[self.current];
            self.client = Some(Client::connect_with(
                addr,
                self.seed ^ self.reconnects,
                self.policy,
            )?);
            self.reconnects += 1;
        }
        let res = self
            .client
            .as_mut()
            .expect("connected above")
            .request_with_retry(line);
        if res.is_err() {
            self.client = None;
        }
        res
    }

    /// Sends one request, following `moved` redirects and riding out a
    /// failover window: a dead peer rotates to the next one, an
    /// `unknown session` reply polls again (the takeover may still be
    /// replaying), both with jittered backoff, until `deadline` expires.
    ///
    /// # Errors
    ///
    /// Fails when no peer serves the request within the deadline, or
    /// with a typed `route_loop` error when [`MAX_REDIRECT_HOPS`]
    /// consecutive `moved` redirects never reach an owner.
    pub fn request_routed(&mut self, line: &str, deadline: Duration) -> io::Result<Json> {
        let until = std::time::Instant::now() + deadline;
        let mut attempt = 0u32;
        let mut hops = 0usize;
        let mut last: Option<String> = None;
        loop {
            match self.try_once(line) {
                Ok(reply) => {
                    let err = reply.get("error").and_then(Json::as_str);
                    if err == Some("moved") {
                        self.moves += 1;
                        hops += 1;
                        if hops >= MAX_REDIRECT_HOPS {
                            return Err(io::Error::other(format!(
                                "route_loop: {hops} consecutive moved redirects \
                                 never reached an owner: {line}"
                            )));
                        }
                        // Queries are idempotent: record any handoff the
                        // redirect reveals, then follow it regardless.
                        self.moved_epoch_advanced(&reply);
                        if let Some(peer) = reply
                            .get("peer")
                            .and_then(Json::as_str)
                            .and_then(|p| p.parse::<SocketAddr>().ok())
                        {
                            self.point_at(peer);
                        } else {
                            self.rotate();
                        }
                    } else if err.is_some_and(|e| e.starts_with("unknown session")) {
                        // Failover in flight: the new primary has not
                        // finished (or begun) the takeover replay yet.
                        hops = 0;
                        last = Some(format!("{reply:?}"));
                        self.rotate();
                    } else if let Some(stale) = self.observe_epoch(&reply) {
                        // A zombie primary answered from pre-takeover
                        // state; rotate toward the real owner.
                        self.stale_epochs += 1;
                        hops = 0;
                        last = Some(stale);
                        self.rotate();
                    } else {
                        return Ok(reply);
                    }
                }
                Err(e) => {
                    hops = 0;
                    last = Some(e.to_string());
                    self.rotate();
                }
            }
            if std::time::Instant::now() >= until {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "no peer served the request within the deadline \
                         (last: {}): {line}",
                        last.unwrap_or_else(|| "no attempt completed".to_string())
                    ),
                ));
            }
            let delay = backoff_ms(self.policy, attempt.min(6), 0, &mut self.rng);
            thread::sleep(Duration::from_millis(delay));
            attempt += 1;
        }
    }

    /// [`ClusterClient::request_routed`] for non-idempotent verbs like
    /// `event`: a transport error after the request was written leaves
    /// it ambiguous whether the server applied it, so instead of blindly
    /// resending, the client rotates to the next peer and surfaces the
    /// error. Unambiguous refusals — `moved` redirects, `unknown
    /// session` polls, and connect failures, where the request was
    /// definitely *not* applied — are still retried internally until
    /// `deadline`. Callers riding a failover resynchronize after an
    /// error via an idempotent `query` of the session's `last_seq`
    /// high-water mark and resume sending from there.
    ///
    /// # Errors
    ///
    /// Fails on the first ambiguous transport error, when no peer
    /// serves the request within the deadline, or with a typed
    /// `route_loop` error when [`MAX_REDIRECT_HOPS`] consecutive
    /// `moved` redirects never reach an owner.
    pub fn request_exact(&mut self, line: &str, deadline: Duration) -> io::Result<Json> {
        let until = std::time::Instant::now() + deadline;
        let mut attempt = 0u32;
        let mut hops = 0usize;
        let mut last: Option<String> = None;
        loop {
            let fresh = self.client.is_none();
            let before = self.reconnects;
            match self.try_once(line) {
                Ok(reply) => {
                    let err = reply.get("error").and_then(Json::as_str);
                    if err == Some("moved") {
                        self.moves += 1;
                        hops += 1;
                        if hops >= MAX_REDIRECT_HOPS {
                            return Err(io::Error::other(format!(
                                "route_loop: {hops} consecutive moved redirects \
                                 never reached an owner: {line}"
                            )));
                        }
                        let handoff = self.moved_epoch_advanced(&reply);
                        // Point at the redirect target either way, so an
                        // epoch-advance caller's resync query lands at
                        // the new owner directly.
                        if let Some(peer) = reply
                            .get("peer")
                            .and_then(Json::as_str)
                            .and_then(|p| p.parse::<SocketAddr>().ok())
                        {
                            self.point_at(peer);
                        } else {
                            self.rotate();
                        }
                        if let Some((witnessed, epoch)) = handoff {
                            // Ownership moved *under* this request stream
                            // (a demoted zombie redirected us to a
                            // higher-epoch adopter). The new owner's
                            // high-water mark may be behind what this
                            // client already sent, so transparently
                            // resending a non-idempotent request would
                            // apply it out of order. Surface a typed
                            // error; the caller resynchronizes from the
                            // owner's `last_seq` and resumes from there.
                            return Err(io::Error::other(format!(
                                "epoch_advanced: ownership moved from epoch \
                                 {witnessed} to {epoch}; resynchronize \
                                 before resending: {line}"
                            )));
                        }
                    } else if err.is_some_and(|e| e.starts_with("unknown session")) {
                        hops = 0;
                        last = Some(format!("{reply:?}"));
                        self.rotate();
                    } else if let Some(stale) = self.observe_epoch(&reply) {
                        self.stale_epochs += 1;
                        hops = 0;
                        last = Some(stale);
                        self.rotate();
                    } else {
                        return Ok(reply);
                    }
                }
                Err(e) => {
                    // A failed *connect* (no bytes sent) is safe to retry;
                    // anything past that point is ambiguous.
                    let connect_failed = fresh && self.reconnects == before;
                    self.rotate();
                    if !connect_failed {
                        return Err(e);
                    }
                    hops = 0;
                    last = Some(e.to_string());
                }
            }
            if std::time::Instant::now() >= until {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "no peer served the request within the deadline \
                         (last: {}): {line}",
                        last.unwrap_or_else(|| "no attempt completed".to_string())
                    ),
                ));
            }
            let delay = backoff_ms(self.policy, attempt.min(6), 0, &mut self.rng);
            thread::sleep(Duration::from_millis(delay));
            attempt += 1;
        }
    }
}

/// Turns an `{"ok":false,...}` reply into an `io::Error`.
///
/// # Errors
///
/// Fails when the reply is not `ok`.
pub fn expect_ok(reply: &Json) -> io::Result<()> {
    if matches!(reply.get("ok"), Some(Json::Bool(true))) {
        Ok(())
    } else {
        Err(io::Error::other(format!("server refused: {reply:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::net::{serve_with, NetConfig};
    use crate::server::{Server, ServerConfig};
    use std::net::TcpListener;
    use std::sync::Arc;

    #[test]
    fn backoff_grows_honours_hint_and_stays_capped() {
        let policy = RetryPolicy {
            base_ms: 4,
            max_ms: 100,
            max_retries: 8,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let d0 = backoff_ms(policy, 0, 0, &mut rng);
        assert!(d0 >= 3 && d0 <= 4, "{d0}");
        // The server hint floors the delay.
        let hinted = backoff_ms(policy, 0, 40, &mut rng);
        assert!(hinted > 20 && hinted <= 40, "{hinted}");
        // Large attempts saturate at the cap, never overflow.
        let late = backoff_ms(policy, 31, 0, &mut rng);
        assert!(late > 50 && late <= 100, "{late}");
    }

    #[test]
    fn retrying_client_rides_out_admission_sheds() {
        let server = Arc::new(Server::start(ServerConfig {
            shards: 1,
            admission: AdmissionConfig {
                enabled: true,
                session_events_per_sec: 50.0,
                session_burst: 2.0,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || serve_with(server, listener, NetConfig::default()));

        let mut client = Client::connect(addr, 7).unwrap();
        let sid = client.open_builtin("counter").unwrap();
        // Far more than the burst allows at once: only retries get these
        // through.
        for _ in 0..16 {
            let reply = client.event(sid, "Mouse.clicks", "\"Unit\"").unwrap();
            expect_ok(&reply).unwrap();
        }
        let stats = client.stats();
        assert_eq!(stats.requests, 16);
        assert!(stats.sheds > 0, "quota never triggered: {stats:?}");
        assert_eq!(stats.gave_up, 0, "{stats:?}");
        client.close(sid).unwrap();
    }

    #[test]
    fn cluster_client_follows_moved_redirects() {
        // The real home of the session.
        let server = Arc::new(Server::start(ServerConfig {
            shards: 1,
            ..ServerConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let home = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        thread::spawn(move || serve_with(srv, listener, NetConfig::default()));
        let sid = server
            .open(
                crate::registry::ProgramSpec::Builtin("counter"),
                None,
                None,
                false,
            )
            .unwrap()
            .session;

        // A fake stale peer that answers every line with a typed redirect.
        let stale = TcpListener::bind("127.0.0.1:0").unwrap();
        let stale_addr = stale.local_addr().unwrap();
        thread::spawn(move || {
            for stream in stale.incoming() {
                let Ok(stream) = stream else { break };
                let home = home;
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            break;
                        }
                        let reply = format!(
                            "{{\"ok\":false,\"error\":\"moved\",\"session\":0,\"peer\":\"{home}\"}}\n"
                        );
                        if writer.write_all(reply.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });

        // The client starts on the stale peer and must end up at home.
        let mut client = ClusterClient::new(vec![stale_addr, home], 11);
        let reply = client
            .request_routed(
                &format!("{{\"cmd\":\"query\",\"session\":{sid}}}"),
                Duration::from_secs(10),
            )
            .unwrap();
        expect_ok(&reply).unwrap();
        assert!(client.moves() >= 1, "redirect was never followed");
        assert_eq!(client.current_peer(), home);
    }

    /// Spawns a fake peer that answers every request line with `reply`
    /// (a closure over the connection count is overkill here — the reply
    /// is static per peer).
    fn spawn_static_peer(reply: String) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let reply = reply.clone();
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            break;
                        }
                        if writer.write_all(reply.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn mutually_redirecting_peers_trip_the_route_loop_cap() {
        // Two fake peers that each insist the *other* owns the session —
        // the split-brain routing state a partitioned cluster can reach.
        // Bind both listeners first so each knows the other's address.
        let la = TcpListener::bind("127.0.0.1:0").unwrap();
        let lb = TcpListener::bind("127.0.0.1:0").unwrap();
        let (aa, ab) = (la.local_addr().unwrap(), lb.local_addr().unwrap());
        for (listener, peer) in [(la, ab), (lb, aa)] {
            thread::spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { break };
                    thread::spawn(move || {
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = stream;
                        let mut line = String::new();
                        while let Ok(n) = reader.read_line(&mut line) {
                            if n == 0 {
                                break;
                            }
                            let reply = format!(
                                "{{\"ok\":false,\"error\":\"moved\",\"session\":1,\"peer\":\"{peer}\"}}\n"
                            );
                            if writer.write_all(reply.as_bytes()).is_err() {
                                break;
                            }
                            line.clear();
                        }
                    });
                }
            });
        }

        let mut client = ClusterClient::new(vec![aa, ab], 13);
        let err = client
            .request_routed("{\"cmd\":\"query\",\"session\":1}", Duration::from_secs(30))
            .expect_err("an endless redirect chain must fail, not hang");
        assert!(
            err.to_string().contains("route_loop"),
            "expected a typed route_loop error, got: {err}"
        );
        assert!(client.moves() >= MAX_REDIRECT_HOPS as u64);
    }

    #[test]
    fn replies_below_a_witnessed_epoch_are_refused_as_stale() {
        // A fresh owner serving epoch 2 and a zombie stuck at epoch 1.
        let fresh = spawn_static_peer(
            "{\"ok\":true,\"session\":9,\"value\":{\"Int\":4},\"last_seq\":4,\"epoch\":2}\n"
                .to_string(),
        );
        let zombie = spawn_static_peer(
            "{\"ok\":true,\"session\":9,\"value\":{\"Int\":1},\"last_seq\":1,\"epoch\":1}\n"
                .to_string(),
        );

        let mut client = ClusterClient::new(vec![fresh, zombie], 17);
        // First request lands on the fresh owner and records epoch 2.
        let reply = client
            .request_routed("{\"cmd\":\"query\",\"session\":9}", Duration::from_secs(10))
            .unwrap();
        assert_eq!(reply.get("epoch").and_then(as_u64), Some(2));

        // Force the next attempt onto the zombie: its epoch-1 reply must
        // be refused and retried, never surfaced, so the request still
        // resolves at epoch 2 once rotation comes back around.
        client.point_at(zombie);
        let reply = client
            .request_routed("{\"cmd\":\"query\",\"session\":9}", Duration::from_secs(10))
            .unwrap();
        assert_eq!(reply.get("epoch").and_then(as_u64), Some(2));
        assert!(
            client.stale_epochs() >= 1,
            "the zombie's epoch-1 reply was never flagged"
        );
    }
}
