//! Minimal blocking NDJSON client with overload-aware retry.
//!
//! Speaks the same wire protocol as [`crate::net`]: one JSON request per
//! line, one JSON reply per line. The retry layer understands the typed
//! `{"ok":false,"error":"overloaded","retry_after_ms":N}` shed reply and
//! backs off with jittered exponential delays, honouring the server's
//! `retry_after_ms` hint as a floor — the cooperating half of the
//! admission-control contract.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value as Json;

/// Numeric accessor over the vendored JSON value.
fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::U64(n) => Some(*n),
        Json::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Retry/backoff tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First retry delay, before the server hint and jitter.
    pub base_ms: u64,
    /// Ceiling on any single delay.
    pub max_ms: u64,
    /// How many retries before giving up and returning the shed reply.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 5,
            max_ms: 2_000,
            max_retries: 64,
        }
    }
}

/// What the retry layer has seen so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests handed to [`Client::request_with_retry`].
    pub requests: u64,
    /// `overloaded` replies received (one per shed attempt).
    pub sheds: u64,
    /// Attempts replayed after backoff.
    pub retries: u64,
    /// Requests that exhausted `max_retries` still shed.
    pub gave_up: u64,
}

/// One connection to the server's TCP front end.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    rng: StdRng,
    policy: RetryPolicy,
    stats: RetryStats,
}

/// Next backoff delay: exponential in the attempt number, floored by the
/// server's `retry_after_ms` hint, capped at `policy.max_ms`, and
/// jittered to the upper half of the window so synchronized clients
/// de-correlate.
fn backoff_ms(policy: RetryPolicy, attempt: u32, hint_ms: u64, rng: &mut StdRng) -> u64 {
    let exp = policy
        .base_ms
        .saturating_mul(1u64 << attempt.min(20))
        .min(policy.max_ms);
    let target = exp.max(hint_ms).min(policy.max_ms.max(hint_ms));
    if target <= 1 {
        return target;
    }
    rng.gen_range(target / 2 + 1..=target)
}

impl Client {
    /// Connects with the default policy, seeding jitter from `seed` so
    /// load-generation runs stay reproducible.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn connect(addr: SocketAddr, seed: u64) -> io::Result<Client> {
        Client::connect_with(addr, seed, RetryPolicy::default())
    }

    /// [`Client::connect`] with explicit retry tuning.
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket error.
    pub fn connect_with(addr: SocketAddr, seed: u64, policy: RetryPolicy) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            rng: StdRng::seed_from_u64(seed),
            policy,
            stats: RetryStats::default(),
        })
    }

    /// Retry counters so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Sends one request line and returns the next reply object,
    /// skipping blank keepalives and subscription pushes.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, EOF, or an unparseable reply line.
    pub fn request(&mut self, line: &str) -> io::Result<Json> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let mut reply = String::new();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let reply = reply.trim();
            if reply.is_empty() {
                continue; // trace keepalive
            }
            let json: Json = serde_json::from_str(reply).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad reply: {e}"))
            })?;
            if json.get("update").is_some() {
                continue; // interleaved subscription push
            }
            return Ok(json);
        }
    }

    /// [`Client::request`], but when the server sheds the request with
    /// `overloaded` it sleeps (jittered exponential backoff, floored at
    /// the server's `retry_after_ms` hint) and resends, up to
    /// `max_retries` times. The final shed reply is returned verbatim if
    /// the budget runs out, so callers can still see the refusal.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, EOF, or an unparseable reply line.
    pub fn request_with_retry(&mut self, line: &str) -> io::Result<Json> {
        self.stats.requests += 1;
        let mut attempt = 0u32;
        loop {
            let reply = self.request(line)?;
            let overloaded = reply.get("error").and_then(Json::as_str) == Some("overloaded");
            if !overloaded {
                return Ok(reply);
            }
            self.stats.sheds += 1;
            if attempt >= self.policy.max_retries {
                self.stats.gave_up += 1;
                return Ok(reply);
            }
            let hint = reply.get("retry_after_ms").and_then(as_u64).unwrap_or(0);
            let delay = backoff_ms(self.policy, attempt, hint, &mut self.rng);
            thread::sleep(Duration::from_millis(delay));
            attempt += 1;
            self.stats.retries += 1;
        }
    }

    /// Opens a builtin program; returns the new session id.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or an error reply.
    pub fn open_builtin(&mut self, program: &str) -> io::Result<u64> {
        let reply = self.request(&format!("{{\"cmd\":\"open\",\"program\":\"{program}\"}}"))?;
        expect_ok(&reply)?;
        reply
            .get("session")
            .and_then(as_u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "open reply lacks session"))
    }

    /// Sends one event (with retry); `value` must already be the JSON
    /// encoding of a plain value, e.g. `{"Int":3}`.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn event(&mut self, session: u64, input: &str, value: &str) -> io::Result<Json> {
        self.request_with_retry(&format!(
            "{{\"cmd\":\"event\",\"session\":{session},\"input\":\"{input}\",\"value\":{value}}}"
        ))
    }

    /// Queries the session's current output value.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn query(&mut self, session: u64) -> io::Result<Json> {
        self.request(&format!("{{\"cmd\":\"query\",\"session\":{session}}}"))
    }

    /// Fetches the Prometheus exposition text via the `metrics` verb.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a malformed reply.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        let reply = self.request("{\"cmd\":\"metrics\"}")?;
        reply
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "metrics reply lacks text"))
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Fails on transport errors.
    pub fn close(&mut self, session: u64) -> io::Result<Json> {
        self.request(&format!("{{\"cmd\":\"close\",\"session\":{session}}}"))
    }
}

/// Turns an `{"ok":false,...}` reply into an `io::Error`.
///
/// # Errors
///
/// Fails when the reply is not `ok`.
pub fn expect_ok(reply: &Json) -> io::Result<()> {
    if matches!(reply.get("ok"), Some(Json::Bool(true))) {
        Ok(())
    } else {
        Err(io::Error::other(format!("server refused: {reply:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::net::{serve_with, NetConfig};
    use crate::server::{Server, ServerConfig};
    use std::net::TcpListener;
    use std::sync::Arc;

    #[test]
    fn backoff_grows_honours_hint_and_stays_capped() {
        let policy = RetryPolicy {
            base_ms: 4,
            max_ms: 100,
            max_retries: 8,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let d0 = backoff_ms(policy, 0, 0, &mut rng);
        assert!(d0 >= 3 && d0 <= 4, "{d0}");
        // The server hint floors the delay.
        let hinted = backoff_ms(policy, 0, 40, &mut rng);
        assert!(hinted > 20 && hinted <= 40, "{hinted}");
        // Large attempts saturate at the cap, never overflow.
        let late = backoff_ms(policy, 31, 0, &mut rng);
        assert!(late > 50 && late <= 100, "{late}");
    }

    #[test]
    fn retrying_client_rides_out_admission_sheds() {
        let server = Arc::new(Server::start(ServerConfig {
            shards: 1,
            admission: AdmissionConfig {
                enabled: true,
                session_events_per_sec: 50.0,
                session_burst: 2.0,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || serve_with(server, listener, NetConfig::default()));

        let mut client = Client::connect(addr, 7).unwrap();
        let sid = client.open_builtin("counter").unwrap();
        // Far more than the burst allows at once: only retries get these
        // through.
        for _ in 0..16 {
            let reply = client.event(sid, "Mouse.clicks", "\"Unit\"").unwrap();
            expect_ok(&reply).unwrap();
        }
        let stats = client.stats();
        assert_eq!(stats.requests, 16);
        assert!(stats.sheds > 0, "quota never triggered: {stats:?}");
        assert_eq!(stats.gave_up, 0, "{stats:?}");
        client.close(sid).unwrap();
    }
}
