//! Named programs a client can instantiate without shipping source.
//!
//! Builtins are FElm sources compiled on demand through the full `felm`
//! pipeline against the paper's standard input environment, plus two
//! native graphs: `crashy` (panics on negative `Mouse.x`, exercising
//! node poisoning and supervised recovery) and `chaos` (the chaos-mode
//! workload program, a fold that keeps changing after poisoning).
//! Clients can also `open` with ad-hoc FElm source, which goes through
//! the same pipeline.

use elm_runtime::{GraphBuilder, SignalGraph, Value};
use felm::env::InputEnv;
use felm::pipeline::compile_source;

/// How a client names the program to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramSpec<'a> {
    /// A registry builtin, by name.
    Builtin(&'a str),
    /// Ad-hoc FElm source (`main = …`).
    Source(&'a str),
}

enum Builtin {
    Felm(String),
    Native(fn() -> SignalGraph),
}

/// The server's program table.
pub struct Registry {
    env: InputEnv,
    builtins: Vec<(&'static str, Builtin)>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

const COUNTER: &str = "main = foldp (\\e n -> n + 1) 0 Mouse.clicks";
const MOUSE_SUM: &str = "main = lift2 (\\x y -> x + y) Mouse.x Mouse.y";
const MOUSE_LATEST: &str = "main = lift (\\x -> x) Mouse.x";
const WINDOW_AREA: &str = "main = lift2 (\\w h -> w * h) Window.width Window.height";
const LATEST_WORD: &str = "main = lift (\\w -> w) Words.input";
const DASHBOARD: &str = "count s = foldp (\\e n -> n + 1) 0 s\n\
                         clicks = count Mouse.clicks\n\
                         keys = count Keyboard.lastPressed\n\
                         main = lift2 (\\a b -> a * 1000 + b) clicks (lift2 (\\k x -> k + x) keys Mouse.x)";

/// A `2^k`-step Church-style iteration tower — `(tower k)` normalizes to
/// an expression that takes about `2^k` evaluation steps, far beyond any
/// sane fuel budget for `k ≳ 30`.
fn tower(k: usize) -> String {
    let mut body = String::from("(\\n -> n + 1)");
    for _ in 0..k {
        body = format!("(t {body})");
    }
    format!("(let t = \\f y -> f (f y) in {body} 0)")
}

/// A `2^k`-fold string doubling — each step doubles an 8-byte seed, so
/// allocation explodes long before the step count does.
fn doubling_bomb(k: usize) -> String {
    let mut body = String::from("\"88888888\"");
    for _ in 0..k {
        body = format!("(d {body})");
    }
    format!("(let d = \\s -> s ++ s in length [{body}])")
}

/// A well-typed counter that runs away the moment a `Keyboard.lastPressed`
/// event carries a truthy value: evaluation enters a `2^40`-step tower
/// that only a fuel budget can stop. Negative/zero keys count normally,
/// so the session stays useful for control-plane probes either way.
fn runaway_source() -> String {
    format!(
        "main = foldp (\\k acc -> if k then {} else acc + 1) 0 Keyboard.lastPressed",
        tower(40)
    )
}

/// Like `runaway`, but the hostile branch allocates instead of looping:
/// a `2^40`-fold string doubling that only an allocation budget can stop.
fn membomb_source() -> String {
    format!(
        "main = foldp (\\k acc -> if k then {} else acc + 1) 0 Keyboard.lastPressed",
        doubling_bomb(40)
    )
}

/// `Mouse.x` doubled — but any negative input panics the node, poisoning
/// it (paper §3.3.2's `NoChange` thereafter) so crash recovery can be
/// tested.
fn crashy_graph() -> SignalGraph {
    let mut g = GraphBuilder::new();
    let x = g.input("Mouse.x", 0i64);
    let out = g.lift1(
        "crashy",
        |v| match v {
            Value::Int(n) if *n < 0 => panic!("crashy: negative input"),
            Value::Int(n) => Value::Int(n * 2),
            other => other.clone(),
        },
        x,
    );
    g.finish(out).expect("crashy graph is well-formed")
}

/// The chaos-mode workhorse: a click counter combined with a panic-prone
/// `Mouse.x` path. The counter keeps the output changing after the risky
/// node is poisoned (so recovery correctness stays observable), and the
/// fold makes any lost or duplicated replay event visible in the final
/// value.
fn chaos_graph() -> SignalGraph {
    let mut g = GraphBuilder::new();
    let clicks = g.input("Mouse.clicks", Value::Unit);
    let x = g.input("Mouse.x", 0i64);
    let count = g.foldp(
        "count",
        |_e, acc| Value::Int(acc.as_int().unwrap_or(0) + 1),
        0i64,
        clicks,
    );
    let risky = g.lift1(
        "risky",
        |v| match v {
            Value::Int(n) if *n < 0 => panic!("chaos: negative input"),
            Value::Int(n) => Value::Int(n * 2),
            other => other.clone(),
        },
        x,
    );
    let out = g.lift2(
        "board",
        |c, r| Value::Int(c.as_int().unwrap_or(0) * 100_000 + r.as_int().unwrap_or(0)),
        count,
        risky,
    );
    g.finish(out).expect("chaos graph is well-formed")
}

impl Registry {
    /// The standard table: the FElm builtins plus the native `crashy` and
    /// `chaos` graphs.
    pub fn standard() -> Registry {
        Registry {
            env: InputEnv::standard(),
            builtins: vec![
                ("counter", Builtin::Felm(COUNTER.to_string())),
                ("mouse-sum", Builtin::Felm(MOUSE_SUM.to_string())),
                ("mouse-latest", Builtin::Felm(MOUSE_LATEST.to_string())),
                ("window-area", Builtin::Felm(WINDOW_AREA.to_string())),
                ("latest-word", Builtin::Felm(LATEST_WORD.to_string())),
                ("dashboard", Builtin::Felm(DASHBOARD.to_string())),
                ("runaway", Builtin::Felm(runaway_source())),
                ("membomb", Builtin::Felm(membomb_source())),
                ("crashy", Builtin::Native(crashy_graph)),
                ("chaos", Builtin::Native(chaos_graph)),
            ],
        }
    }

    /// Builtin names, for discovery / error messages.
    pub fn names(&self) -> Vec<&'static str> {
        self.builtins.iter().map(|(n, _)| *n).collect()
    }

    fn compile(&self, src: &str) -> Result<SignalGraph, String> {
        let compiled = compile_source(src, &self.env).map_err(|e| format!("compile error: {e}"))?;
        compiled
            .graph()
            .cloned()
            .ok_or_else(|| "program is not reactive: `main` is not a signal".to_string())
    }

    /// Resolves a spec to `(display name, signal graph)`.
    ///
    /// # Errors
    ///
    /// Fails on an unknown builtin name or a source that does not compile
    /// to a signal program.
    pub fn resolve(&self, spec: ProgramSpec<'_>) -> Result<(String, SignalGraph), String> {
        let (name, graph, _) = self.resolve_with_source(spec)?;
        Ok((name, graph))
    }

    /// [`Registry::resolve`], additionally returning the FElm source the
    /// graph was compiled from — `None` only for native-built graphs,
    /// which have no textual form. This is what the `describe` wire verb
    /// surfaces, so failures on ad-hoc fleet programs are reproducible
    /// from wire output alone.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Registry::resolve`].
    pub fn resolve_with_source(
        &self,
        spec: ProgramSpec<'_>,
    ) -> Result<(String, SignalGraph, Option<String>), String> {
        match spec {
            ProgramSpec::Builtin(name) => {
                let builtin = self
                    .builtins
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, b)| b)
                    .ok_or_else(|| {
                        format!("unknown program '{name}' (try one of {:?})", self.names())
                    })?;
                let (graph, source) = match builtin {
                    Builtin::Felm(src) => (self.compile(src)?, Some(src.clone())),
                    Builtin::Native(f) => (f(), None),
                };
                Ok((name.to_string(), graph, source))
            }
            ProgramSpec::Source(src) => Ok((
                "<source>".to_string(),
                self.compile(src)?,
                Some(src.to_string()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_compiles_to_a_graph() {
        let r = Registry::standard();
        for name in r.names() {
            let (resolved, graph) = r.resolve(ProgramSpec::Builtin(name)).unwrap();
            assert_eq!(resolved, name);
            assert!(!graph.is_empty(), "{name}");
        }
    }

    #[test]
    fn ad_hoc_source_and_errors() {
        let r = Registry::standard();
        let (name, graph) = r
            .resolve(ProgramSpec::Source(
                "main = lift (\\k -> k) Keyboard.lastPressed",
            ))
            .unwrap();
        assert_eq!(name, "<source>");
        assert!(graph.input_named("Keyboard.lastPressed").is_some());

        assert!(r.resolve(ProgramSpec::Builtin("nope")).is_err());
        assert!(r.resolve(ProgramSpec::Source("main = 1 +")).is_err());
        // A non-reactive program compiles but is rejected here.
        assert!(r.resolve(ProgramSpec::Source("main = 1 + 2")).is_err());
    }
}
