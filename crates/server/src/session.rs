//! One hosted FRP program: its runtime, bounded ingress queue, event
//! journal, snapshots, and subscriber fan-out.
//!
//! A session runs on the deterministic synchronous engine, owned by
//! exactly one shard worker thread — actor-style, so no session state is
//! ever shared across threads. Events arrive through [`Session::enqueue`]
//! (applying the configured [`BackpressurePolicy`] when the queue is
//! full) and are applied in FIFO order by [`Session::pump`].
//!
//! # Crash recovery
//!
//! The pump write-ahead-journals every event *at dispatch time*,
//! immediately before feeding it to the runtime — never at enqueue time,
//! so events dropped or coalesced under backpressure are never journaled
//! and the journal is the exact applied-event log. Every
//! `snapshot_interval` applied events the session snapshots its runtime
//! ([`elm_runtime::RuntimeSnapshot`]) and truncates the journal behind
//! it, bounding any recovery replay below the interval. When the runtime
//! dies — a node panic, an injected crash from the [`FaultPlan`], or an
//! engine error — the session asks its [`RestartBudget`] for a restart
//! slot, rebuilds a fresh runtime, restores the snapshot, and silently
//! replays the journal suffix (outputs were already delivered, so replay
//! drains them without re-publishing). Theorem 1 of the paper makes this
//! sound: the synchronous engine is a deterministic function of the
//! applied event sequence. Once the budget is exhausted the session is
//! marked `recovery_failed` and the shard evicts it.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use elm_environment::fault::{self, FaultPlan};
use elm_runtime::{
    Counter, EventJournal, EventLimits, Gauge, Histogram, JournalEntry, JournalError,
    NodeTimingSnapshot, PlainValue, RuntimeSnapshot, SignalGraph, StatsSnapshot, Tracer, Value,
};
use elm_signals::{Engine, Program, Running};
use rand::rngs::StdRng;
use rand::Rng;

use crate::admission::MemoryGauge;
use crate::protocol::{
    BackpressurePolicy, EnqueueOutcome, IngressStats, LatencySummary, QueryInfo, RecoveryStats,
    SessionStats, TrapStats, Update,
};
use crate::supervisor::{RestartBudget, RestartDecision, RestartPolicy};

/// Session identifier, unique for the server's lifetime.
pub type SessionId = u64;

/// Per-session ingress and recovery configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionConfig {
    /// Maximum events waiting between pumps.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: BackpressurePolicy,
    /// Applied events between runtime snapshots — the bound on how many
    /// journal entries any single recovery replays.
    pub snapshot_interval: u64,
    /// Journal segment capacity (entries per in-memory segment).
    pub journal_segment: usize,
    /// Restart budget for crash recovery.
    pub restart: RestartPolicy,
    /// Injected faults (disabled by default).
    pub faults: FaultPlan,
    /// Attach a causal [`Tracer`] (per-event span trees + per-node timing
    /// histograms). Off by default so untraced sessions pay no
    /// observability overhead.
    pub observe: bool,
    /// Per-event resource budget (fuel / allocation / depth) enforced by
    /// the runtime governor. `None` leaves evaluation ungoverned. On by
    /// default: a server hosts untrusted programs, and the default
    /// budget is far above anything an honest event needs.
    pub limits: Option<EventLimits>,
    /// Wall-clock deadline per event. A blown deadline traps and rolls
    /// back just that event; the session stays healthy. Disabled during
    /// recovery replay (wall time is not deterministic).
    pub event_timeout: Option<Duration>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            queue_capacity: 1024,
            policy: BackpressurePolicy::Block,
            snapshot_interval: 256,
            journal_segment: 1024,
            restart: RestartPolicy::default(),
            faults: FaultPlan::disabled(),
            observe: false,
            limits: Some(EventLimits::default()),
            event_timeout: None,
        }
    }
}

/// Latency sample cap per session — enough for any realistic stats window
/// while bounding memory for immortal sessions.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

/// Rendered trace lines queued per `trace` subscriber, drop-oldest.
pub const TRACE_SUBSCRIBER_CAPACITY: usize = 256;

/// A bounded drop-oldest mailbox of rendered trace lines, shared between a
/// session (producer, on its shard thread) and one `trace` forwarder
/// thread (consumer, owned by the subscriber's connection).
///
/// The pump must never block on a slow subscriber, so a full mailbox
/// evicts its oldest line instead of waiting. Either side may [`close`]
/// the mailbox: the consumer when its connection dies (the session then
/// prunes it), the session when it shuts down (the forwarder then exits).
///
/// [`close`]: TraceMailbox::close
#[derive(Debug, Default)]
pub struct TraceMailbox {
    inner: std::sync::Mutex<MailboxState>,
    ready: std::sync::Condvar,
}

#[derive(Debug, Default)]
struct MailboxState {
    lines: VecDeque<String>,
    dropped: u64,
    closed: bool,
}

/// Outcome of one [`TraceMailbox::recv_timeout`] wait.
#[derive(Debug, PartialEq, Eq)]
pub enum TracePop {
    /// The next queued line.
    Line(String),
    /// Nothing arrived within the timeout; the mailbox is still open.
    Empty,
    /// The mailbox is closed and drained; no more lines will ever arrive.
    Closed,
}

impl TraceMailbox {
    /// Creates an open, empty, shareable mailbox.
    pub fn new() -> Arc<TraceMailbox> {
        Arc::new(TraceMailbox::default())
    }

    /// Producer side: stores `line`, evicting the oldest queued line when
    /// full. Returns `None` when the mailbox is closed (the producer
    /// should forget it), otherwise whether an eviction happened.
    fn push(&self, line: String) -> Option<bool> {
        let mut st = self.inner.lock().expect("mailbox lock");
        if st.closed {
            return None;
        }
        let evicted = st.lines.len() >= TRACE_SUBSCRIBER_CAPACITY;
        if evicted {
            st.lines.pop_front();
            st.dropped += 1;
        }
        st.lines.push_back(line);
        drop(st);
        self.ready.notify_one();
        Some(evicted)
    }

    /// Consumer side: waits up to `timeout` for the next line. Queued
    /// lines are still delivered after [`TraceMailbox::close`];
    /// [`TracePop::Closed`] only once the backlog is drained.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> TracePop {
        let mut st = self.inner.lock().expect("mailbox lock");
        if st.lines.is_empty() && !st.closed {
            let (guard, _timeout) = self.ready.wait_timeout(st, timeout).expect("mailbox lock");
            st = guard;
        }
        match st.lines.pop_front() {
            Some(line) => TracePop::Line(line),
            None if st.closed => TracePop::Closed,
            None => TracePop::Empty,
        }
    }

    /// Closes the mailbox from either side and wakes a waiting consumer.
    pub fn close(&self) {
        self.inner.lock().expect("mailbox lock").closed = true;
        self.ready.notify_one();
    }

    /// Lines evicted because the consumer fell behind.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("mailbox lock").dropped
    }
}

struct Queued {
    input: String,
    value: Value,
    at: Instant,
    /// Client-supplied causal trace id (0 = untraced), journaled and
    /// replicated with the event.
    trace: u64,
}

/// Crash-recovery and journal activity, kept as [`Counter`]s/[`Gauge`]s so
/// the same accounting feeds both [`RecoveryStats`] and the metrics
/// exposition surface (no parallel ad-hoc `u64` bookkeeping).
#[derive(Debug, Default)]
struct RecoveryCounters {
    restarts: Counter,
    replayed_events: Counter,
    max_replay: Gauge,
    snapshots: Counter,
    journal_appends: Counter,
    journal_truncations: Counter,
    journal_failures: Counter,
}

/// A hosted program instance (see module docs).
pub struct Session {
    id: SessionId,
    program_name: String,
    // The FElm source the graph was compiled from (None for native
    // graphs); surfaced by the `describe` wire verb.
    source: Option<String>,
    graph: SignalGraph,
    running: Running<Value>,
    queue: VecDeque<Queued>,
    config: SessionConfig,
    subscribers: Vec<Sender<Update>>,
    enqueued: u64,
    dropped: u64,
    coalesced: u64,
    ignored: u64,
    pumps: u64,
    events_out: u64,
    seq: u64,
    latencies: Vec<u64>,
    last_activity: Instant,
    // --- crash recovery ---
    journal: EventJournal,
    snapshot: Option<(u64, RuntimeSnapshot)>,
    applied_seq: u64,
    recovery: RecoveryCounters,
    recovery_failed: bool,
    budget: RestartBudget,
    // Panics seen in the *current* runtime incarnation; replayed panics
    // during recovery are folded in here so they don't recrash.
    panic_baseline: u64,
    ever_panicked: bool,
    pending_recovery: Option<Instant>,
    crash_rng: Option<StdRng>,
    // Runtime counters accumulated from previous incarnations.
    stats_base: StatsSnapshot,
    // Last applied output value, served to queries even mid-recovery.
    last_output: Value,
    // Causal tracer shared with every runtime incarnation (histograms
    // accumulate across recoveries). None unless `config.observe`.
    tracer: Option<Arc<Tracer>>,
    // `trace` subscribers: bounded drop-oldest mailboxes of NDJSON lines.
    trace_subscribers: Vec<Arc<TraceMailbox>>,
    trace_lines_dropped: u64,
    // Governor traps by kind (trapped events are rolled back, not
    // poisoning — see crate::protocol::TrapStats).
    traps: TrapStats,
    // Server-wide memory gauge this session reports its retained cells
    // into, and the last figure it reported (for delta accounting).
    memory: Option<Arc<MemoryGauge>>,
    reported_cells: i64,
    // Cluster replication tap: applied events and snapshots stream to
    // the session's replica peer through it. None outside cluster mode.
    replication: Option<Arc<crate::cluster::ReplicationTap>>,
    // Mergeable log2 histogram of ingest-to-output latency (µs). The
    // `latencies` sample vector serves exact percentile summaries; this
    // serves cross-peer federation and SLO burn rates, which need
    // bucket-wise addition.
    ingest_hist: Histogram,
    // Trace id of the last applied event (0 = untraced): stamped on
    // shipped snapshots and takeover broadcasts so the failover path can
    // join the same causal story.
    last_trace: u64,
    // Ownership epoch: 1 at open, bumped by adoption. Stamped on every
    // journal append (through the journal's fence), every replication
    // message, and every query reply, so stale owners are detectable
    // everywhere the session's history can leak.
    epoch: u64,
}

impl Session {
    /// Instantiates `graph` on the synchronous engine.
    pub fn new(
        id: SessionId,
        program_name: String,
        graph: SignalGraph,
        config: SessionConfig,
    ) -> Session {
        let tracer = config.observe.then(|| {
            let t = Tracer::for_graph(&graph);
            t.set_enabled(true);
            t
        });
        let mut running = Program::from_dynamic_graph(graph.clone())
            .start_observed(Engine::Synchronous, tracer.clone());
        running.set_governor(config.limits, config.event_timeout);
        let mut journal = EventJournal::new(config.journal_segment.max(1));
        if config.faults.journal_fail > 0.0 {
            let mut rng = config.faults.rng(fault::STREAM_JOURNAL, id);
            let p = config.faults.journal_fail;
            journal.set_failure_hook(Box::new(move |_| rng.gen_bool(p)));
        }
        let crash_rng =
            (config.faults.crash > 0.0).then(|| config.faults.rng(fault::STREAM_CRASH, id));
        let last_output = running.current().clone();
        Session {
            id,
            program_name,
            source: None,
            graph,
            running,
            queue: VecDeque::new(),
            config,
            subscribers: Vec::new(),
            enqueued: 0,
            dropped: 0,
            coalesced: 0,
            ignored: 0,
            pumps: 0,
            events_out: 0,
            seq: 0,
            latencies: Vec::new(),
            last_activity: Instant::now(),
            journal,
            snapshot: None,
            applied_seq: 0,
            recovery: RecoveryCounters::default(),
            recovery_failed: false,
            budget: RestartBudget::new(config.restart),
            panic_baseline: 0,
            ever_panicked: false,
            pending_recovery: None,
            crash_rng,
            stats_base: StatsSnapshot::default(),
            last_output,
            tracer,
            trace_subscribers: Vec::new(),
            trace_lines_dropped: 0,
            traps: TrapStats::default(),
            memory: None,
            reported_cells: 0,
            replication: None,
            ingest_hist: Histogram::new(),
            last_trace: 0,
            epoch: 1,
        }
    }

    /// The session's ownership epoch (1 at open, bumped by adoption).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Installs the ownership epoch a takeover assigned and fences the
    /// journal at it, so an append stamped by any older incarnation is
    /// rejected with a typed [`JournalError::Fenced`].
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch.max(1));
        self.journal.fence(self.epoch);
    }

    /// Attaches the cluster replication tap: from now on every applied
    /// event and every snapshot also streams to the session's replica
    /// peer. Set *after* [`Session::restore_shipped`] on adoption, so
    /// the restore itself is not re-replicated.
    pub fn set_replication(&mut self, tap: Arc<crate::cluster::ReplicationTap>) {
        self.replication = Some(tap);
    }

    /// Takes (and ships, when a tap is attached) a snapshot right now.
    /// Called on adoption: the new primary's replica stream starts at the
    /// adoption high-water mark, so a snapshot re-bases the new replica
    /// there and keeps the append stream that follows contiguous.
    pub fn snapshot_now(&mut self) {
        self.take_snapshot();
    }

    /// The metadata a replica needs to re-instantiate this session on
    /// takeover; shipped by the shard when the session opens.
    pub fn replica_meta(&self) -> crate::protocol::SessionMeta {
        crate::protocol::SessionMeta {
            program: self.program_name.clone(),
            source: self.source.clone(),
            queue: self.config.queue_capacity,
            policy: self.config.policy,
        }
    }

    /// Rebuilds this (fresh, eventless) session from a peer's shipped
    /// snapshot and journal suffix — failover's recovery path. The
    /// restored state equals the dead primary's at its last replicated
    /// event (Theorem 1 across the wire: state is a function of the
    /// applied sequence). Replayed outputs are drained silently; the
    /// primary already delivered them. Returns the applied high-water
    /// mark, which clients read back as `last_seq` to resume exactly
    /// once.
    pub fn restore_shipped(
        &mut self,
        snapshot: Option<(u64, elm_runtime::WireSnapshot)>,
        entries: Vec<JournalEntry>,
    ) -> Result<u64, String> {
        // Replay under deterministic budgets but no wall-clock deadline,
        // exactly like crash recovery.
        self.running.set_governor(self.config.limits, None);
        if let Some((through, wire)) = snapshot {
            if wire.fingerprint != self.graph.fingerprint() {
                return Err(format!(
                    "shipped snapshot fingerprint {} does not match graph {}",
                    wire.fingerprint,
                    self.graph.fingerprint()
                ));
            }
            let snap = elm_runtime::RuntimeSnapshot::from_wire(&wire);
            self.running
                .restore(&snap)
                .map_err(|e| format!("snapshot restore: {e}"))?;
            self.applied_seq = through;
            self.snapshot = Some((through, snap));
        }
        let mut replayed = 0u64;
        for entry in entries {
            if entry.seq <= self.applied_seq {
                continue; // covered by the shipped snapshot
            }
            // Write-ahead into our own journal, then silent replay: from
            // here on the adopted session recovers like a native one.
            let _ = self.journal.append(entry.clone());
            self.recovery.journal_appends.inc();
            self.running
                .send_named(&entry.input, entry.value.to_value())
                .and_then(|()| self.running.drain_raw())
                .map_err(|e| format!("replay of shipped seq {}: {e}", entry.seq))?;
            self.applied_seq = entry.seq;
            // Replayed events keep the trace ids they were ingested with
            // on the dead primary: the adopter continues those traces
            // rather than starting fresh ones.
            self.last_trace = entry.trace;
            replayed += 1;
        }
        crate::blackbox::blackbox().record(
            "resume",
            self.id,
            self.applied_seq,
            self.last_trace,
            -1,
            &format!("replayed {replayed}"),
        );
        // Deterministic traps replayed here were already tallied by the
        // primary; discard the duplicates and restore the live deadline.
        let _ = self.running.take_traps();
        self.running
            .set_governor(self.config.limits, self.config.event_timeout);
        self.recovery.replayed_events.add(replayed);
        self.recovery.max_replay.set_max(replayed as i64);
        self.panic_baseline = self.running.stats().node_panics;
        self.ever_panicked = self.panic_baseline > 0;
        self.last_output = self.running.current().clone();
        Ok(self.applied_seq)
    }

    /// Attaches the server-wide memory gauge; the session reports its
    /// approximate retained cells (queue + journal + output) into it
    /// after every pump, and withdraws them when stopped.
    pub fn set_memory_gauge(&mut self, gauge: Arc<MemoryGauge>) {
        self.memory = Some(gauge);
        self.report_memory();
    }

    /// Re-estimates retained cells and reports the delta to the gauge.
    fn report_memory(&mut self) {
        let Some(gauge) = self.memory.as_ref() else {
            return;
        };
        let queued: u64 = self
            .queue
            .iter()
            .map(|q| q.value.approx_cells() + q.input.len() as u64)
            .sum();
        // Journal entries retain a PlainValue each; a flat per-entry
        // charge keeps this O(journal length) without re-walking values.
        let cells =
            (queued + self.journal.len() as u64 * 8 + self.last_output.approx_cells()) as i64;
        gauge.add(cells - self.reported_cells);
        self.reported_cells = cells;
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Resolved program name.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// Records the FElm source this session's graph was compiled from.
    pub fn set_source(&mut self, source: Option<String>) {
        self.source = source;
    }

    /// What `describe` returns: program name, compile source (if any),
    /// the graph's structural fingerprint, and declared inputs.
    pub fn describe(&self) -> crate::protocol::DescribeInfo {
        crate::protocol::DescribeInfo {
            session: self.id,
            program: self.program_name.clone(),
            source: self.source.clone(),
            fingerprint: self.graph.fingerprint(),
            inputs: crate::shard::input_names(&self.graph),
        }
    }

    /// Events currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True once a node ever panicked in this session. Unlike the
    /// pre-recovery server this is *not* a death sentence: the session
    /// recovers in place and the poisoned node emits `NoChange` forever
    /// (paper §3.3.2).
    pub fn is_poisoned(&self) -> bool {
        self.ever_panicked
    }

    /// True once the restart budget is exhausted; the shard evicts such
    /// sessions with the `recovery_failed` close reason.
    pub fn recovery_failed(&self) -> bool {
        self.recovery_failed
    }

    /// Supervised restarts performed so far.
    pub fn restarts(&self) -> u64 {
        self.recovery.restarts.get()
    }

    /// True when the session was opened with `observe:true` and thus has a
    /// tracer attached.
    pub fn is_observed(&self) -> bool {
        self.tracer.is_some()
    }

    /// The session's causal tracer, if observed.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// Per-node compute / queue-wait timings (empty when not observed).
    pub fn node_timings(&self) -> Vec<NodeTimingSnapshot> {
        self.tracer
            .as_ref()
            .map(|t| t.node_timings())
            .unwrap_or_default()
    }

    /// Registers a span-tree subscriber. Fails (returns `false`) when the
    /// session was not opened with `observe:true`. The mailbox is bounded
    /// to [`TRACE_SUBSCRIBER_CAPACITY`] lines and drops its oldest line
    /// rather than blocking the pump.
    pub fn subscribe_trace(&mut self, sink: Arc<TraceMailbox>) -> bool {
        self.last_activity = Instant::now();
        if self.tracer.is_none() {
            sink.close();
            return false;
        }
        self.trace_subscribers.push(sink);
        true
    }

    /// Last time a client touched this session.
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Registers an output-change subscriber.
    pub fn subscribe(&mut self, sink: Sender<Update>) {
        self.last_activity = Instant::now();
        self.subscribers.push(sink);
    }

    /// Admits one event, applying the backpressure policy when full.
    pub fn enqueue(&mut self, input: &str, value: Value) -> EnqueueOutcome {
        self.enqueue_traced(input, value, 0)
    }

    /// [`Session::enqueue`] with a client-supplied causal trace id (0 =
    /// untraced). The id rides the event through the journal, the
    /// replication stream, and any failover.
    pub fn enqueue_traced(&mut self, input: &str, value: Value, trace: u64) -> EnqueueOutcome {
        self.last_activity = Instant::now();
        if self.recovery_failed || self.graph.input_named(input).is_none() {
            self.ignored += 1;
            return EnqueueOutcome::Ignored;
        }
        let mut outcome = EnqueueOutcome::Accepted;
        if self.queue.len() >= self.config.queue_capacity {
            match self.config.policy {
                // Drain synchronously: the producer's request completes
                // only after the backlog is applied, so pressure flows
                // back to the client instead of losing events. A recovery
                // backoff defers the drain; Block waits it out (never
                // drops), stopping only if recovery gives the session up.
                BackpressurePolicy::Block => {
                    self.pump();
                    while self.queue.len() >= self.config.queue_capacity.max(1)
                        && !self.recovery_failed
                    {
                        if let Some(deadline) = self.pending_recovery {
                            let now = Instant::now();
                            if deadline > now {
                                std::thread::sleep(deadline - now);
                            }
                        }
                        self.pump();
                    }
                }
                BackpressurePolicy::DropOldest => {
                    self.queue.pop_front();
                    self.dropped += 1;
                    outcome = EnqueueOutcome::DroppedOldest;
                }
                BackpressurePolicy::Coalesce => {
                    if let Some(q) = self.queue.iter_mut().rev().find(|q| q.input == input) {
                        // Keep the original enqueue time: latency then
                        // honestly reports how stale the merged slot is.
                        // The trace follows the surviving value.
                        q.value = value;
                        q.trace = trace;
                        self.coalesced += 1;
                        return EnqueueOutcome::Coalesced;
                    }
                    self.queue.pop_front();
                    self.dropped += 1;
                    outcome = EnqueueOutcome::DroppedOldest;
                }
            }
        }
        // The pumps above may have exhausted the restart budget; nothing
        // enqueued now would ever be applied.
        if self.recovery_failed {
            self.ignored += 1;
            return EnqueueOutcome::Ignored;
        }
        self.queue.push_back(Queued {
            input: input.to_string(),
            value,
            at: Instant::now(),
            trace,
        });
        self.enqueued += 1;
        outcome
    }

    /// Applies every queued event in order — journaling each immediately
    /// before dispatch, snapshotting on the configured cadence — and
    /// streams resulting output changes to subscribers. Crashes (real or
    /// injected) leave the unapplied tail queued and trigger supervised
    /// recovery.
    pub fn pump(&mut self) {
        self.maybe_recover();
        if self.recovery_failed || self.pending_recovery.is_some() || self.queue.is_empty() {
            return;
        }
        let mut batch: VecDeque<Queued> = std::mem::take(&mut self.queue);
        let mut crashed = false;
        while let Some(q) = batch.pop_front() {
            let seq = self.applied_seq + 1;
            // Write-ahead append: the entry hits the journal before the
            // runtime sees the event, so a crash can never lose an
            // applied-but-unjournaled event.
            let plain = PlainValue::from_value(&q.value);
            let journal_ok = match plain.clone() {
                Some(pv) => match self.journal.append_owned(
                    self.epoch,
                    JournalEntry {
                        seq,
                        input: q.input.clone(),
                        value: pv,
                        trace: q.trace,
                    },
                ) {
                    Ok(_) => true,
                    Err(JournalError::Fenced { writer, fence }) => {
                        // Ownership moved under us (a takeover at a
                        // higher epoch fenced the journal): this
                        // incarnation must not extend history. Skip the
                        // event entirely — the new owner serves it.
                        crate::blackbox::blackbox().record(
                            "fenced",
                            self.id,
                            seq,
                            q.trace,
                            -1,
                            &format!("local append at stale epoch {writer} < {fence}"),
                        );
                        self.ignored += 1;
                        continue;
                    }
                    Err(_) => false,
                },
                None => false,
            };
            if journal_ok {
                self.recovery.journal_appends.inc();
            }
            let applied = self
                .running
                .send_named(&q.input, q.value.clone())
                .and_then(|()| self.running.drain_raw());
            let outs = match applied {
                Ok(outs) => outs,
                Err(_) => {
                    // The engine itself died mid-event; the event may or
                    // may not have taken effect. Re-deliver it after
                    // recovery: the journal entry is superseded because
                    // recovery replays only seqs <= applied_seq.
                    batch.push_front(q);
                    crashed = true;
                    break;
                }
            };
            self.applied_seq = seq;
            self.last_trace = q.trace;
            crate::blackbox::blackbox().record("applied", self.id, seq, q.trace, -1, &q.input);
            // Replicate exactly once, only after the event demonstrably
            // applied: the engine-error branch above never reaches here.
            if let (Some(tap), Some(pv)) = (self.replication.as_ref(), plain) {
                tap.send(crate::cluster::RepMsg::Append {
                    session: self.id,
                    entry: JournalEntry {
                        seq,
                        input: q.input.clone(),
                        value: pv,
                        trace: q.trace,
                    },
                    epoch: self.epoch,
                });
            }
            for ev in &outs {
                let Some(v) = ev.value() else { continue };
                self.seq += 1;
                self.events_out += 1;
                self.last_output = v.clone();
                if self.subscribers.is_empty() {
                    continue;
                }
                if let Some(pv) = PlainValue::from_value(v) {
                    let update = Update::Changed {
                        session: self.id,
                        seq: self.seq,
                        value: pv,
                    };
                    self.subscribers.retain(|s| s.send(update.clone()).is_ok());
                }
            }
            let latency_us = Instant::now().duration_since(q.at).as_micros() as u64;
            self.ingest_hist.observe(latency_us);
            if self.latencies.len() < MAX_LATENCY_SAMPLES {
                self.latencies.push(latency_us);
            }
            if !journal_ok {
                // The applied event is missing from the journal; snapshot
                // immediately so no recovery ever needs the hole.
                self.recovery.journal_failures.inc();
                self.take_snapshot();
            } else if self.applied_seq - self.snapshot_seq() >= self.config.snapshot_interval {
                self.take_snapshot();
            }
            let panics = self.running.stats().node_panics;
            if panics > self.panic_baseline {
                self.panic_baseline = panics;
                self.ever_panicked = true;
                crashed = true;
            }
            if !crashed {
                if let Some(rng) = self.crash_rng.as_mut() {
                    crashed = rng.gen_bool(self.config.faults.crash);
                }
            }
            if crashed {
                break;
            }
        }
        // Anything unapplied goes back to the queue head, order intact.
        while let Some(q) = batch.pop_back() {
            self.queue.push_front(q);
        }
        self.pumps += 1;
        if self.collect_traps() {
            // A trapped event was journaled but applied as a rolled-back
            // no-op. Fuel/alloc/depth traps replay deterministically, but
            // a deadline trap is wall-clock-dependent; snapshot now so no
            // recovery ever replays across a trapped event.
            self.take_snapshot();
        }
        if crashed {
            self.supervise();
            self.maybe_recover();
        }
        self.flush_traces();
        self.report_memory();
    }

    /// Drains the runtime's governor-trap log into the per-kind tally.
    fn collect_traps(&mut self) -> bool {
        let trapped = self.running.take_traps();
        for (seq, kind) in &trapped {
            self.traps.record(*kind);
            crate::blackbox::blackbox().record(
                "trap",
                self.id,
                *seq,
                self.last_trace,
                -1,
                &format!("{kind:?}"),
            );
        }
        !trapped.is_empty()
    }

    /// Drains completed spans from the tracer's ring, reassembles them
    /// into span trees, and fans rendered lines out to `trace`
    /// subscribers. Full subscriber channels drop their oldest line
    /// (bounded, non-blocking); disconnected subscribers are pruned.
    fn flush_traces(&mut self) {
        let Some(tracer) = self.tracer.as_ref() else {
            return;
        };
        if self.trace_subscribers.is_empty() {
            // Nobody listening: leave spans in the (bounded, drop-oldest)
            // ring so a late subscriber still sees recent history.
            return;
        }
        let spans = tracer.drain_spans();
        if spans.is_empty() {
            return;
        }
        for tree in elm_runtime::assemble(&spans, &self.graph) {
            let line = crate::protocol::trace_line(self.id, &tree.to_plain(&self.graph));
            let mut dropped = 0u64;
            self.trace_subscribers
                .retain(|mb| match mb.push(line.clone()) {
                    Some(evicted) => {
                        dropped += u64::from(evicted);
                        true
                    }
                    None => false,
                });
            self.trace_lines_dropped += dropped;
        }
    }

    fn snapshot_seq(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |(seq, _)| *seq)
    }

    fn take_snapshot(&mut self) {
        if let Some(snap) = self.running.snapshot() {
            if let Some(tap) = self.replication.as_ref() {
                // Ship the snapshot so the replica can truncate its copy
                // of the journal the same way we truncate ours below.
                tap.send(crate::cluster::RepMsg::Snapshot {
                    session: self.id,
                    through: self.applied_seq,
                    wire: snap.to_wire().map(Box::new),
                    trace: self.last_trace,
                    epoch: self.epoch,
                });
                crate::blackbox::blackbox().record(
                    "snapshot",
                    self.id,
                    self.applied_seq,
                    self.last_trace,
                    -1,
                    "shipped",
                );
            }
            self.snapshot = Some((self.applied_seq, snap));
            self.recovery.snapshots.inc();
            self.journal.truncate_through(self.applied_seq);
            self.recovery.journal_truncations.inc();
        }
    }

    /// Books a restart slot for a crash that just happened, or gives the
    /// session up when the budget is exhausted.
    fn supervise(&mut self) {
        match self.budget.on_crash(Instant::now()) {
            RestartDecision::Restart { after } => {
                self.pending_recovery = Some(Instant::now() + after);
            }
            RestartDecision::GiveUp => {
                self.recovery_failed = true;
                self.pending_recovery = None;
                self.queue.clear();
            }
        }
    }

    fn maybe_recover(&mut self) {
        if let Some(deadline) = self.pending_recovery {
            if Instant::now() >= deadline {
                self.perform_recovery();
            }
        }
    }

    /// Rebuilds the runtime from snapshot + journal suffix. Replayed
    /// events are drained silently: their outputs were already delivered
    /// before the crash.
    fn perform_recovery(&mut self) {
        // Re-attach the same tracer: per-node histograms accumulate across
        // incarnations, like the runtime counters below.
        let mut fresh = Program::from_dynamic_graph(self.graph.clone())
            .start_observed(Engine::Synchronous, self.tracer.clone());
        // Replay runs under the same deterministic budgets but *no*
        // wall-clock deadline: elapsed time differs between the original
        // run and the replay, and a deadline trap here would diverge
        // recovered state from history.
        fresh.set_governor(self.config.limits, None);
        let dead = std::mem::replace(&mut self.running, fresh);
        self.stats_base = self.stats_base.merged(&dead.stats());
        dead.stop();
        let from = match &self.snapshot {
            Some((seq, snap)) => {
                self.running
                    .restore(snap)
                    .expect("a session snapshot always matches its own graph");
                *seq
            }
            None => 0,
        };
        let mut replayed = 0u64;
        for entry in self.journal.suffix_after(from) {
            if entry.seq > self.applied_seq {
                break;
            }
            // Replay errors would mean the deterministic engine diverged
            // from its own history; nothing smarter to do than continue —
            // the proptest suite guards this path.
            let _ = self
                .running
                .send_named(&entry.input, entry.value.to_value())
                .and_then(|()| self.running.drain_raw());
            replayed += 1;
        }
        self.recovery.replayed_events.add(replayed);
        self.recovery.max_replay.set_max(replayed as i64);
        // Replay reproduced any deterministic traps; they were already
        // tallied the first time, so discard the duplicates and restore
        // the live deadline.
        let _ = self.running.take_traps();
        self.running
            .set_governor(self.config.limits, self.config.event_timeout);
        self.panic_baseline = self.running.stats().node_panics;
        self.last_output = self.running.current().clone();
        self.pending_recovery = None;
        self.recovery.restarts.inc();
        crate::blackbox::blackbox().record(
            "restart",
            self.id,
            self.applied_seq,
            self.last_trace,
            -1,
            &format!("replayed {replayed}"),
        );
        if let Some(tracer) = self.tracer.as_ref() {
            // Replayed events re-recorded spans for outputs that were
            // already delivered; discard them so subscribers never see a
            // duplicate span tree.
            let _ = tracer.drain_spans();
        }
    }

    /// The current output value and queue state. Served from the last
    /// applied output, so it stays answerable mid-recovery.
    pub fn query(&self) -> QueryInfo {
        let value = PlainValue::from_value(&self.last_output)
            .unwrap_or_else(|| PlainValue::Str("<opaque>".to_string()));
        QueryInfo {
            session: self.id,
            program: self.program_name.clone(),
            value,
            queue_len: self.queue.len() as u64,
            poisoned: self.ever_panicked,
            last_seq: self.applied_seq,
            epoch: self.epoch,
        }
    }

    /// The applied-event high-water mark — the journal seq of the last
    /// event the runtime demonstrably applied.
    pub fn last_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Trace id of the last applied event (0 = untraced).
    pub fn last_trace(&self) -> u64 {
        self.last_trace
    }

    /// Ingress counters.
    pub fn ingress_stats(&self) -> IngressStats {
        IngressStats {
            enqueued: self.enqueued,
            dropped: self.dropped,
            coalesced: self.coalesced,
            ignored: self.ignored,
            pumps: self.pumps,
            events_out: self.events_out,
            queue_len: self.queue.len() as u64,
            subscribers: self.subscribers.len() as u64,
        }
    }

    /// Crash-recovery counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            restarts: self.recovery.restarts.get(),
            replayed_events: self.recovery.replayed_events.get(),
            max_replay: self.recovery.max_replay.get().max(0) as u64,
            snapshot_count: self.recovery.snapshots.get(),
            journal_len: self.journal.len() as u64,
            journal_appends: self.recovery.journal_appends.get(),
            journal_truncations: self.recovery.journal_truncations.get(),
            journal_failures: self.recovery.journal_failures.get(),
        }
    }

    /// Raw ingest-to-output latency samples, in microseconds.
    pub fn latency_samples(&self) -> &[u64] {
        &self.latencies
    }

    /// Full per-session statistics. Runtime counters accumulate across
    /// restarts (recovery replay is counted again; `replayed_events`
    /// records exactly how much).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            session: self.id,
            program: self.program_name.clone(),
            runtime: self.stats_base.merged(&self.running.stats()),
            ingress: self.ingress_stats(),
            latency: LatencySummary::compute(&mut self.latencies.clone()),
            ingest_hist: self.ingest_hist.snapshot(),
            recovery: self.recovery_stats(),
            poisoned: self.ever_panicked,
            nodes: self.node_timings(),
            spans_dropped: self.tracer.as_ref().map_or(0, |t| t.dropped_spans())
                + self.trace_lines_dropped,
            traps: self.traps,
        }
    }

    /// Governor traps tallied by kind.
    pub fn trap_stats(&self) -> TrapStats {
        self.traps
    }

    /// Tells subscribers the session is gone. Always the final message on
    /// the stream: subscribers are dropped right after.
    pub fn notify_closed(&mut self, reason: &str) {
        let update = Update::Closed {
            session: self.id,
            reason: reason.to_string(),
        };
        self.subscribers.retain(|s| s.send(update.clone()).is_ok());
        self.subscribers.clear();
        for mb in self.trace_subscribers.drain(..) {
            mb.close();
        }
    }

    /// Tells every subscriber the session moved to `peer` (cluster
    /// failover took it over there), then detaches them. Subscribers are
    /// expected to reconnect against the named peer and resume from
    /// `last_seq`.
    pub fn notify_moved(&mut self, peer: &str) {
        let update = Update::Moved {
            session: self.id,
            peer: peer.to_string(),
        };
        self.subscribers.retain(|s| s.send(update.clone()).is_ok());
        self.subscribers.clear();
        for mb in self.trace_subscribers.drain(..) {
            mb.close();
        }
    }

    /// Stops the underlying runtime and withdraws the session's memory
    /// contribution from the gauge.
    pub fn stop(self) {
        if let Some(gauge) = self.memory.as_ref() {
            gauge.add(-self.reported_cells);
        }
        self.running.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ProgramSpec, Registry};
    use std::time::Duration;

    fn session(program: &str, capacity: usize, policy: BackpressurePolicy) -> Session {
        session_with(
            program,
            SessionConfig {
                queue_capacity: capacity,
                policy,
                ..SessionConfig::default()
            },
        )
    }

    fn session_with(program: &str, config: SessionConfig) -> Session {
        let (name, graph) = Registry::standard()
            .resolve(ProgramSpec::Builtin(program))
            .unwrap();
        Session::new(1, name, graph, config)
    }

    #[test]
    fn block_policy_pumps_instead_of_losing_events() {
        let mut s = session("counter", 4, BackpressurePolicy::Block);
        for _ in 0..10 {
            assert_eq!(
                s.enqueue("Mouse.clicks", Value::Unit),
                EnqueueOutcome::Accepted
            );
        }
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(10));
        let ing = s.ingress_stats();
        assert_eq!((ing.dropped, ing.coalesced), (0, 0));
        assert_eq!(ing.enqueued, 10);
    }

    #[test]
    fn drop_oldest_keeps_the_tail() {
        let mut s = session("counter", 4, BackpressurePolicy::DropOldest);
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            outcomes.push(s.enqueue("Mouse.clicks", Value::Unit));
        }
        assert_eq!(outcomes[3], EnqueueOutcome::Accepted);
        assert_eq!(outcomes[9], EnqueueOutcome::DroppedOldest);
        s.pump();
        // Only the 4 surviving events reach the fold.
        assert_eq!(s.query().value, PlainValue::Int(4));
        assert_eq!(s.ingress_stats().dropped, 6);
    }

    #[test]
    fn coalesce_merges_same_signal_events() {
        let mut s = session("mouse-latest", 4, BackpressurePolicy::Coalesce);
        for n in 1..=10 {
            s.enqueue("Mouse.x", Value::Int(n));
        }
        assert_eq!(s.queue_len(), 4);
        s.pump();
        // The newest value survives the merge chain.
        assert_eq!(s.query().value, PlainValue::Int(10));
        assert_eq!(s.ingress_stats().coalesced, 6);
        assert_eq!(s.ingress_stats().dropped, 0);
    }

    #[test]
    fn unknown_inputs_are_ignored_not_fatal() {
        let mut s = session("counter", 16, BackpressurePolicy::Block);
        assert_eq!(
            s.enqueue("No.such.signal", Value::Unit),
            EnqueueOutcome::Ignored
        );
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(1));
        assert_eq!(s.ingress_stats().ignored, 1);
        assert!(!s.is_poisoned());
    }

    #[test]
    fn node_panic_recovers_in_place() {
        let mut s = session("crashy", 16, BackpressurePolicy::Block);
        s.enqueue("Mouse.x", Value::Int(21));
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(42));
        s.enqueue("Mouse.x", Value::Int(-1));
        s.pump();
        // The panic poisons the node but the session restarts from its
        // journal instead of dying: the poisoned node is NoChange forever.
        assert!(s.is_poisoned());
        assert!(!s.recovery_failed());
        assert_eq!(s.restarts(), 1);
        assert_eq!(
            s.enqueue("Mouse.x", Value::Int(5)),
            EnqueueOutcome::Accepted
        );
        s.pump();
        // Output is frozen at the pre-panic value, exactly as an
        // uninterrupted run would freeze it (paper §3.3.2).
        assert_eq!(s.query().value, PlainValue::Int(42));
        let rec = s.recovery_stats();
        assert_eq!(rec.restarts, 1);
        assert_eq!(rec.replayed_events, 2);
    }

    #[test]
    fn snapshots_bound_the_replay() {
        let mut s = session_with(
            "counter",
            SessionConfig {
                snapshot_interval: 4,
                // Segments seal at the snapshot cadence, so truncation
                // actually reclaims them.
                journal_segment: 4,
                ..SessionConfig::default()
            },
        );
        for _ in 0..10 {
            s.enqueue("Mouse.clicks", Value::Unit);
        }
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(10));
        let rec = s.recovery_stats();
        assert_eq!(rec.snapshot_count, 2); // at seq 4 and 8
        assert_eq!(rec.journal_len, 2); // 9 and 10 survive truncation
    }

    #[test]
    fn injected_crashes_recover_without_losing_or_duplicating_events() {
        let faults = FaultPlan {
            crash: 0.2,
            ..FaultPlan::chaos(11)
        };
        let mut s = session_with(
            "counter",
            SessionConfig {
                snapshot_interval: 8,
                // ~40 crashes expected over 200 events; keep the budget
                // far above that so recovery never gives up here.
                restart: RestartPolicy {
                    max_restarts: 1000,
                    ..RestartPolicy::default()
                },
                faults,
                ..SessionConfig::default()
            },
        );
        let (tx, rx) = crossbeam::channel::unbounded();
        s.subscribe(tx);
        for _ in 0..200 {
            s.enqueue("Mouse.clicks", Value::Unit);
            s.pump();
        }
        // Recovery backoff can leave a tail queued; drain it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while s.queue_len() > 0 {
            assert!(Instant::now() < deadline, "queue never drained");
            std::thread::sleep(Duration::from_millis(1));
            s.pump();
        }
        assert!(!s.recovery_failed());
        let rec = s.recovery_stats();
        assert!(rec.restarts > 0, "crash probability 0.2 never fired");
        assert!(rec.max_replay <= 8, "replay exceeded the snapshot interval");
        // Exactly-once delivery: the counter saw all 200 clicks, and the
        // subscriber stream is the uninterrupted 1..=200 fold.
        assert_eq!(s.query().value, PlainValue::Int(200));
        let got: Vec<Update> = rx.try_iter().collect();
        assert_eq!(got.len(), 200);
        assert_eq!(
            got.last(),
            Some(&Update::Changed {
                session: 1,
                seq: 200,
                value: PlainValue::Int(200)
            })
        );
    }

    #[test]
    fn exhausted_restart_budget_fails_recovery() {
        let faults = FaultPlan {
            crash: 1.0,
            ..FaultPlan::chaos(3)
        };
        let mut s = session_with(
            "counter",
            SessionConfig {
                restart: RestartPolicy {
                    max_restarts: 3,
                    window: Duration::from_secs(60),
                    backoff_base: Duration::ZERO,
                    backoff_cap: Duration::ZERO,
                },
                faults,
                ..SessionConfig::default()
            },
        );
        for _ in 0..10 {
            s.enqueue("Mouse.clicks", Value::Unit);
            s.pump();
        }
        assert!(s.recovery_failed());
        assert_eq!(
            s.enqueue("Mouse.clicks", Value::Unit),
            EnqueueOutcome::Ignored
        );
    }

    #[test]
    fn journal_failures_force_a_covering_snapshot() {
        let faults = FaultPlan {
            journal_fail: 1.0,
            ..FaultPlan::chaos(5)
        };
        let mut s = session_with(
            "counter",
            SessionConfig {
                faults,
                ..SessionConfig::default()
            },
        );
        for _ in 0..5 {
            s.enqueue("Mouse.clicks", Value::Unit);
        }
        s.pump();
        let rec = s.recovery_stats();
        assert_eq!(rec.journal_failures, 5);
        // Every failed append snapshots right after the apply, so the
        // journal holes are always behind a snapshot.
        assert_eq!(rec.snapshot_count, 5);
        assert_eq!(rec.journal_len, 0);
        assert_eq!(s.query().value, PlainValue::Int(5));
    }

    #[test]
    fn a_fenced_session_stops_extending_history() {
        let mut s = session("counter", 16, BackpressurePolicy::Block);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        assert_eq!(s.query().epoch, 1);
        assert_eq!(s.query().value, PlainValue::Int(1));

        // A takeover elsewhere fences the journal above this incarnation:
        // the write-ahead append is rejected and the event is skipped, so
        // the zombie cannot fork history.
        s.journal.fence(5);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(1));
        assert_eq!(s.query().last_seq, 1);
        assert_eq!(s.ingress_stats().ignored, 1);

        // Re-adoption at the fence epoch restores ownership.
        s.set_epoch(5);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(2));
        assert_eq!(s.query().epoch, 5);
    }

    #[test]
    fn subscribers_receive_ordered_updates_and_latency_is_recorded() {
        let mut s = session("counter", 16, BackpressurePolicy::Block);
        let (tx, rx) = crossbeam::channel::unbounded();
        s.subscribe(tx);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        let got: Vec<Update> = rx.try_iter().collect();
        assert_eq!(
            got,
            vec![
                Update::Changed {
                    session: 1,
                    seq: 1,
                    value: PlainValue::Int(1)
                },
                Update::Changed {
                    session: 1,
                    seq: 2,
                    value: PlainValue::Int(2)
                },
            ]
        );
        assert_eq!(s.latency_samples().len(), 2);
        s.notify_closed("closed");
        assert_eq!(
            rx.try_iter().collect::<Vec<_>>(),
            vec![Update::Closed {
                session: 1,
                reason: "closed".to_string()
            }]
        );
    }
}
