//! One hosted FRP program: its runtime, bounded ingress queue, and
//! subscriber fan-out.
//!
//! A session runs on the deterministic synchronous engine, owned by
//! exactly one shard worker thread — actor-style, so no session state is
//! ever shared across threads. Events arrive through [`Session::enqueue`]
//! (applying the configured [`BackpressurePolicy`] when the queue is
//! full) and are applied in FIFO order by [`Session::pump`], which feeds
//! the batch to the runtime, drains outputs to subscribers, and records
//! ingest-to-output latency per event.

use std::collections::VecDeque;
use std::time::Instant;

use crossbeam::channel::Sender;
use elm_runtime::{PlainValue, SignalGraph, Value};
use elm_signals::{Engine, Program, Running};

use crate::protocol::{
    BackpressurePolicy, EnqueueOutcome, IngressStats, LatencySummary, QueryInfo, SessionStats,
    Update,
};

/// Session identifier, unique for the server's lifetime.
pub type SessionId = u64;

/// Per-session ingress configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Maximum events waiting between pumps.
    pub queue_capacity: usize,
    /// What to do when the queue is full.
    pub policy: BackpressurePolicy,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            queue_capacity: 1024,
            policy: BackpressurePolicy::Block,
        }
    }
}

/// Latency sample cap per session — enough for any realistic stats window
/// while bounding memory for immortal sessions.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

struct Queued {
    input: String,
    value: Value,
    at: Instant,
}

/// A hosted program instance (see module docs).
pub struct Session {
    id: SessionId,
    program_name: String,
    graph: SignalGraph,
    running: Running<Value>,
    queue: VecDeque<Queued>,
    config: SessionConfig,
    subscribers: Vec<Sender<Update>>,
    enqueued: u64,
    dropped: u64,
    coalesced: u64,
    ignored: u64,
    pumps: u64,
    events_out: u64,
    seq: u64,
    latencies: Vec<u64>,
    last_activity: Instant,
    poisoned: bool,
    seen_panics: u64,
}

impl Session {
    /// Instantiates `graph` on the synchronous engine.
    pub fn new(
        id: SessionId,
        program_name: String,
        graph: SignalGraph,
        config: SessionConfig,
    ) -> Session {
        let running = Program::from_dynamic_graph(graph.clone()).start(Engine::Synchronous);
        Session {
            id,
            program_name,
            graph,
            running,
            queue: VecDeque::new(),
            config,
            subscribers: Vec::new(),
            enqueued: 0,
            dropped: 0,
            coalesced: 0,
            ignored: 0,
            pumps: 0,
            events_out: 0,
            seq: 0,
            latencies: Vec::new(),
            last_activity: Instant::now(),
            poisoned: false,
            seen_panics: 0,
        }
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Resolved program name.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// Events currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True once a node panicked (or the runtime died); the shard evicts
    /// such sessions instead of letting them wedge.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Last time a client touched this session.
    pub fn last_activity(&self) -> Instant {
        self.last_activity
    }

    /// Registers an output-change subscriber.
    pub fn subscribe(&mut self, sink: Sender<Update>) {
        self.last_activity = Instant::now();
        self.subscribers.push(sink);
    }

    /// Admits one event, applying the backpressure policy when full.
    pub fn enqueue(&mut self, input: &str, value: Value) -> EnqueueOutcome {
        self.last_activity = Instant::now();
        if self.poisoned || self.graph.input_named(input).is_none() {
            self.ignored += 1;
            return EnqueueOutcome::Ignored;
        }
        let mut outcome = EnqueueOutcome::Accepted;
        if self.queue.len() >= self.config.queue_capacity {
            match self.config.policy {
                // Drain synchronously: the producer's request completes
                // only after the backlog is applied, so pressure flows
                // back to the client instead of losing events.
                BackpressurePolicy::Block => self.pump(),
                BackpressurePolicy::DropOldest => {
                    self.queue.pop_front();
                    self.dropped += 1;
                    outcome = EnqueueOutcome::DroppedOldest;
                }
                BackpressurePolicy::Coalesce => {
                    if let Some(q) = self.queue.iter_mut().rev().find(|q| q.input == input) {
                        // Keep the original enqueue time: latency then
                        // honestly reports how stale the merged slot is.
                        q.value = value;
                        self.coalesced += 1;
                        return EnqueueOutcome::Coalesced;
                    }
                    self.queue.pop_front();
                    self.dropped += 1;
                    outcome = EnqueueOutcome::DroppedOldest;
                }
            }
        }
        self.queue.push_back(Queued {
            input: input.to_string(),
            value,
            at: Instant::now(),
        });
        self.enqueued += 1;
        outcome
    }

    /// Applies every queued event in order and streams resulting output
    /// changes to subscribers.
    pub fn pump(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let batch: Vec<Queued> = self.queue.drain(..).collect();
        let named: Vec<(&str, Value)> = batch
            .iter()
            .map(|q| (q.input.as_str(), q.value.clone()))
            .collect();
        // Names were validated at enqueue time, so an error here means the
        // runtime itself died — treat it like poisoning.
        let outs = self
            .running
            .feed_batch(&named)
            .and_then(|()| self.running.drain_raw());
        match outs {
            Ok(events) => {
                for ev in &events {
                    let Some(v) = ev.value() else { continue };
                    self.seq += 1;
                    self.events_out += 1;
                    if self.subscribers.is_empty() {
                        continue;
                    }
                    if let Some(pv) = PlainValue::from_value(v) {
                        let update = Update::Changed {
                            session: self.id,
                            seq: self.seq,
                            value: pv,
                        };
                        self.subscribers.retain(|s| s.send(update.clone()).is_ok());
                    }
                }
            }
            Err(_) => self.poisoned = true,
        }
        let done = Instant::now();
        for q in &batch {
            if self.latencies.len() < MAX_LATENCY_SAMPLES {
                self.latencies
                    .push(done.duration_since(q.at).as_micros() as u64);
            }
        }
        self.pumps += 1;
        let panics = self.running.stats().node_panics;
        if panics > self.seen_panics {
            self.seen_panics = panics;
            self.poisoned = true;
        }
    }

    /// The current output value and queue state.
    pub fn query(&self) -> QueryInfo {
        let value = PlainValue::from_value(self.running.current())
            .unwrap_or_else(|| PlainValue::Str("<opaque>".to_string()));
        QueryInfo {
            session: self.id,
            program: self.program_name.clone(),
            value,
            queue_len: self.queue.len() as u64,
            poisoned: self.poisoned,
        }
    }

    /// Ingress counters.
    pub fn ingress_stats(&self) -> IngressStats {
        IngressStats {
            enqueued: self.enqueued,
            dropped: self.dropped,
            coalesced: self.coalesced,
            ignored: self.ignored,
            pumps: self.pumps,
            events_out: self.events_out,
            queue_len: self.queue.len() as u64,
            subscribers: self.subscribers.len() as u64,
        }
    }

    /// Raw ingest-to-output latency samples, in microseconds.
    pub fn latency_samples(&self) -> &[u64] {
        &self.latencies
    }

    /// Full per-session statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            session: self.id,
            program: self.program_name.clone(),
            runtime: self.running.stats(),
            ingress: self.ingress_stats(),
            latency: LatencySummary::compute(&mut self.latencies.clone()),
            poisoned: self.poisoned,
        }
    }

    /// Tells subscribers the session is gone.
    pub fn notify_closed(&mut self, reason: &str) {
        let update = Update::Closed {
            session: self.id,
            reason: reason.to_string(),
        };
        self.subscribers.retain(|s| s.send(update.clone()).is_ok());
        self.subscribers.clear();
    }

    /// Stops the underlying runtime.
    pub fn stop(self) {
        self.running.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ProgramSpec, Registry};

    fn session(program: &str, capacity: usize, policy: BackpressurePolicy) -> Session {
        let (name, graph) = Registry::standard()
            .resolve(ProgramSpec::Builtin(program))
            .unwrap();
        Session::new(
            1,
            name,
            graph,
            SessionConfig {
                queue_capacity: capacity,
                policy,
            },
        )
    }

    #[test]
    fn block_policy_pumps_instead_of_losing_events() {
        let mut s = session("counter", 4, BackpressurePolicy::Block);
        for _ in 0..10 {
            assert_eq!(
                s.enqueue("Mouse.clicks", Value::Unit),
                EnqueueOutcome::Accepted
            );
        }
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(10));
        let ing = s.ingress_stats();
        assert_eq!((ing.dropped, ing.coalesced), (0, 0));
        assert_eq!(ing.enqueued, 10);
    }

    #[test]
    fn drop_oldest_keeps_the_tail() {
        let mut s = session("counter", 4, BackpressurePolicy::DropOldest);
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            outcomes.push(s.enqueue("Mouse.clicks", Value::Unit));
        }
        assert_eq!(outcomes[3], EnqueueOutcome::Accepted);
        assert_eq!(outcomes[9], EnqueueOutcome::DroppedOldest);
        s.pump();
        // Only the 4 surviving events reach the fold.
        assert_eq!(s.query().value, PlainValue::Int(4));
        assert_eq!(s.ingress_stats().dropped, 6);
    }

    #[test]
    fn coalesce_merges_same_signal_events() {
        let mut s = session("mouse-latest", 4, BackpressurePolicy::Coalesce);
        for n in 1..=10 {
            s.enqueue("Mouse.x", Value::Int(n));
        }
        assert_eq!(s.queue_len(), 4);
        s.pump();
        // The newest value survives the merge chain.
        assert_eq!(s.query().value, PlainValue::Int(10));
        assert_eq!(s.ingress_stats().coalesced, 6);
        assert_eq!(s.ingress_stats().dropped, 0);
    }

    #[test]
    fn unknown_inputs_are_ignored_not_fatal() {
        let mut s = session("counter", 16, BackpressurePolicy::Block);
        assert_eq!(
            s.enqueue("No.such.signal", Value::Unit),
            EnqueueOutcome::Ignored
        );
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(1));
        assert_eq!(s.ingress_stats().ignored, 1);
        assert!(!s.is_poisoned());
    }

    #[test]
    fn node_panic_poisons_the_session() {
        let mut s = session("crashy", 16, BackpressurePolicy::Block);
        s.enqueue("Mouse.x", Value::Int(21));
        s.pump();
        assert_eq!(s.query().value, PlainValue::Int(42));
        s.enqueue("Mouse.x", Value::Int(-1));
        s.pump();
        assert!(s.is_poisoned());
        // Further traffic is ignored rather than wedging the shard.
        assert_eq!(s.enqueue("Mouse.x", Value::Int(5)), EnqueueOutcome::Ignored);
    }

    #[test]
    fn subscribers_receive_ordered_updates_and_latency_is_recorded() {
        let mut s = session("counter", 16, BackpressurePolicy::Block);
        let (tx, rx) = crossbeam::channel::unbounded();
        s.subscribe(tx);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.enqueue("Mouse.clicks", Value::Unit);
        s.pump();
        let got: Vec<Update> = rx.try_iter().collect();
        assert_eq!(
            got,
            vec![
                Update::Changed {
                    session: 1,
                    seq: 1,
                    value: PlainValue::Int(1)
                },
                Update::Changed {
                    session: 1,
                    seq: 2,
                    value: PlainValue::Int(2)
                },
            ]
        );
        assert_eq!(s.latency_samples().len(), 2);
        s.notify_closed("closed");
        assert_eq!(
            rx.try_iter().collect::<Vec<_>>(),
            vec![Update::Closed {
                session: 1,
                reason: "closed".to_string()
            }]
        );
    }
}
