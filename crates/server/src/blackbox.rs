//! Flight recorder: a bounded, always-on ring of structured operational
//! records, dumped to NDJSON when something dies.
//!
//! Counters say *how much* went wrong; the flight recorder says *what
//! happened last*. Every shard-significant moment — an admission shed, a
//! resource trap, a supervised restart, a replicated journal seq, a
//! takeover, the last N applied events with their trace ids — is pushed
//! into a drop-oldest ring. The ring is cheap enough to leave on in
//! production (a mutex-guarded `VecDeque` per lane, bounded memory) and
//! is serialized to NDJSON in three situations:
//!
//! * a process panic (the `elm-server` panic hook),
//! * a SIGKILL takeover (the adopter dumps what it knows of the victim's
//!   sessions: the replicated seqs and trace ids it resumed from),
//! * any `loadgen` verdict failure (the harness pulls `{"cmd":"blackbox"}`
//!   from every surviving peer).
//!
//! Records are deliberately flat (no nested enums) so the vendored serde
//! derive can handle them and `grep` can read the dump.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One flight-recorder record. Flat by design: `kind` discriminates, the
/// other fields carry whatever subset applies (0 / -1 / "" when not).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlackboxRecord {
    /// Microseconds since the recorder was created (process start).
    pub us: u64,
    /// The local peer index, -1 when not in cluster mode.
    pub peer: i64,
    /// What happened: `applied`, `trap`, `restart`, `shed`, `replicated`,
    /// `snapshot`, `takeover`, `resume`, `fenced` (a stale-epoch write
    /// rejected by the ownership fence), or `demote` (this peer yielded a
    /// session to a higher-epoch takeover).
    pub kind: String,
    /// The session involved (0 for process-wide records).
    pub session: u64,
    /// The event sequence number involved (0 when not event-scoped).
    pub seq: u64,
    /// The causal trace id riding the event (0 = untraced).
    pub trace: u64,
    /// The peer the work arrived from (-1 for local origin).
    pub from: i64,
    /// Free-form detail: input name, trap kind, takeover reason.
    pub detail: String,
}

/// Number of lanes (records are laned by session id to keep contention
/// off the hot pump path, mirroring the shard layout).
const LANES: usize = 8;

/// Per-lane capacity. 8 lanes × 1024 records ≈ the last few seconds of a
/// busy server, which is what a post-mortem needs.
const LANE_CAPACITY: usize = 1024;

/// The process-wide flight recorder. Use [`blackbox()`] to reach it.
pub struct Blackbox {
    lanes: Vec<Mutex<VecDeque<BlackboxRecord>>>,
    origin: Instant,
    peer: AtomicI64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    dumps: AtomicU64,
}

impl Blackbox {
    fn new() -> Blackbox {
        Blackbox {
            lanes: (0..LANES).map(|_| Mutex::new(VecDeque::new())).collect(),
            origin: Instant::now(),
            peer: AtomicI64::new(-1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
        }
    }

    /// Stamps the local cluster peer index onto subsequent records.
    pub fn set_peer(&self, peer: usize) {
        self.peer.store(peer as i64, Ordering::Relaxed);
    }

    /// Microseconds since the recorder was created.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Pushes one record, evicting the lane's oldest when full. `us` and
    /// `peer` are stamped here so call sites stay one-liners.
    #[allow(clippy::too_many_arguments)]
    pub fn record(&self, kind: &str, session: u64, seq: u64, trace: u64, from: i64, detail: &str) {
        let rec = BlackboxRecord {
            us: self.now_us(),
            peer: self.peer.load(Ordering::Relaxed),
            kind: kind.to_string(),
            session,
            seq,
            trace,
            from,
            detail: detail.to_string(),
        };
        let lane = &self.lanes[(session as usize) % LANES];
        let mut lane = lane.lock().unwrap();
        if lane.len() >= LANE_CAPACITY {
            lane.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        lane.push_back(rec);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every retained record, oldest first.
    pub fn snapshot(&self) -> Vec<BlackboxRecord> {
        let mut all: Vec<BlackboxRecord> = Vec::new();
        for lane in &self.lanes {
            all.extend(lane.lock().unwrap().iter().cloned());
        }
        all.sort_by_key(|r| r.us);
        all
    }

    /// Retained records whose `session` matches one of `sessions`
    /// (post-mortem view of a victim's sessions), oldest first.
    pub fn snapshot_for(&self, sessions: &[u64]) -> Vec<BlackboxRecord> {
        let mut all = self.snapshot();
        all.retain(|r| r.session == 0 || sessions.contains(&r.session));
        all
    }

    /// Serializes records as NDJSON, one record per line.
    pub fn render_ndjson(records: &[BlackboxRecord]) -> String {
        let mut out = String::new();
        for r in records {
            if let Ok(line) = serde_json::to_string(r) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Dumps the full ring to `path` as NDJSON. Errors are swallowed —
    /// the recorder must never take the process down on its way out —
    /// but the dump counter only advances on success.
    pub fn dump_to(&self, path: &Path) {
        self.dump_records_to(path, &self.snapshot());
    }

    /// Dumps a pre-filtered record set (e.g. [`Blackbox::snapshot_for`] a
    /// takeover victim's sessions) to `path`, with the same
    /// error-swallowing and counting as [`Blackbox::dump_to`].
    pub fn dump_records_to(&self, path: &Path, records: &[BlackboxRecord]) {
        let text = Self::render_ndjson(records);
        if File::create(path)
            .and_then(|mut f| f.write_all(text.as_bytes()))
            .is_ok()
        {
            self.dumps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// (recorded, dropped, dumps) counter values.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.recorded.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.dumps.load(Ordering::Relaxed),
        )
    }

    /// Prometheus-text families for the recorder itself, appended to the
    /// server's exposition.
    pub fn render_metrics(&self) -> String {
        let (recorded, dropped, dumps) = self.counters();
        let mut out = String::new();
        out.push_str("# HELP elm_blackbox_records_total Flight-recorder records captured.\n");
        out.push_str("# TYPE elm_blackbox_records_total counter\n");
        out.push_str(&format!("elm_blackbox_records_total {recorded}\n"));
        out.push_str(
            "# HELP elm_blackbox_dropped_total Flight-recorder records evicted (drop-oldest).\n",
        );
        out.push_str("# TYPE elm_blackbox_dropped_total counter\n");
        out.push_str(&format!("elm_blackbox_dropped_total {dropped}\n"));
        out.push_str("# HELP elm_blackbox_dumps_total Flight-recorder NDJSON dumps written.\n");
        out.push_str("# TYPE elm_blackbox_dumps_total counter\n");
        out.push_str(&format!("elm_blackbox_dumps_total {dumps}\n"));
        out
    }
}

/// The process-wide recorder (created on first use).
pub fn blackbox() -> &'static Blackbox {
    static INSTANCE: OnceLock<Blackbox> = OnceLock::new();
    INSTANCE.get_or_init(Blackbox::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global recorder; session ids are chosen per
    // test (and LANES apart) so concurrent tests don't disturb each
    // other's lanes.

    #[test]
    fn records_are_retained_and_rendered_as_ndjson() {
        let bb = blackbox();
        bb.record("applied", 101, 1, 901, -1, "Mouse.x");
        bb.record("replicated", 101, 1, 901, 0, "");
        let snap = bb.snapshot_for(&[101]);
        assert!(snap.len() >= 2);
        let ndjson = Blackbox::render_ndjson(&snap);
        let mut seen_applied = false;
        for line in ndjson.lines() {
            let r: BlackboxRecord = serde_json::from_str(line).unwrap();
            if r.kind == "applied" && r.session == 101 {
                assert_eq!(r.trace, 901);
                assert_eq!(r.detail, "Mouse.x");
                seen_applied = true;
            }
        }
        assert!(seen_applied);
        let (recorded, _, _) = bb.counters();
        assert!(recorded >= 2);
    }

    #[test]
    fn lanes_drop_oldest_beyond_capacity() {
        let bb = blackbox();
        // Session 110 lanes alone into 110 % 8 = lane 6 (as long as no
        // other test uses a session ≡ 6 mod 8).
        for seq in 1..=(LANE_CAPACITY as u64 + 50) {
            bb.record("applied", 110, seq, 0, -1, "x");
        }
        let snap = bb.snapshot_for(&[110]);
        assert!(snap.len() <= LANE_CAPACITY);
        // The newest records survived; the oldest were evicted.
        assert!(snap.iter().any(|r| r.seq == LANE_CAPACITY as u64 + 50));
        assert!(!snap.iter().any(|r| r.seq == 1));
        let (_, dropped, _) = bb.counters();
        assert!(dropped >= 50);
    }

    #[test]
    fn dump_writes_a_readable_file_and_counts() {
        let bb = blackbox();
        bb.record("takeover", 120, 0, 555, 2, "peer 1 dead");
        let path =
            std::env::temp_dir().join(format!("blackbox-test-{}.ndjson", std::process::id()));
        let before = bb.counters().2;
        bb.dump_to(&path);
        assert_eq!(bb.counters().2, before + 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().any(|l| l.contains("\"takeover\"")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn metrics_render_the_three_families() {
        let bb = blackbox();
        bb.record("shed", 130, 0, 0, -1, "admission");
        let text = bb.render_metrics();
        assert!(text.contains("# TYPE elm_blackbox_records_total counter"));
        assert!(text.contains("elm_blackbox_dropped_total"));
        assert!(text.contains("elm_blackbox_dumps_total"));
    }
}
