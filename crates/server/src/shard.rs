//! Sharded worker pool: each shard is one thread owning a disjoint set of
//! sessions, actor-style.
//!
//! Sessions are pinned to a shard at open time (`session id % shard
//! count`), so all mutation of a session happens on one thread and the
//! shard needs no locks around session state. Commands arrive on a
//! channel with per-request reply channels; after each burst of commands
//! the shard pumps every session with queued events, then sweeps for
//! evictions (idle timeout, exhausted restart budget). Sessions whose
//! runtimes crash are *not* evicted — they recover in place from
//! snapshot + journal (see [`crate::session`]); only a session that
//! exhausts its [`crate::supervisor::RestartBudget`] is removed, with
//! the `recovery_failed` close reason.

use std::collections::HashMap;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use elm_environment::fault::{self, FaultPlan};
use elm_runtime::{NodeKind, PlainValue, SignalGraph, Value};
use rand::Rng;

use std::sync::Arc;

use crate::admission::{Admission, AdmissionConfig, AdmissionController, MemoryGauge};
use crate::cluster::{RepMsg, ReplicationTap};
use crate::protocol::{
    AdmissionStats, BatchOutcome, DescribeInfo, EnqueueOutcome, OpenInfo, QueryInfo, SessionStats,
    Update,
};
use crate::session::{Session, SessionConfig, SessionId, TraceMailbox};
use elm_runtime::{JournalEntry, WireSnapshot};

/// How long a shard sleeps when no commands arrive before re-checking
/// eviction deadlines.
const TICK: Duration = Duration::from_millis(5);

/// How many commands a shard absorbs back-to-back before it pumps the
/// affected sessions — bounds ingest-to-output latency under a firehose.
const MAX_BURST: usize = 256;

/// Lifecycle counters owned by one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Sessions opened on this shard.
    pub opened: u64,
    /// Sessions closed by request.
    pub closed: u64,
    /// Sessions evicted for idling past the timeout.
    pub evicted_idle: u64,
    /// Sessions evicted after exhausting their restart budget.
    pub recovery_failed: u64,
}

/// A shard's answer to [`Command::Stats`].
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Lifecycle counters.
    pub counters: ShardCounters,
    /// Per-session statistics for the selected sessions.
    pub sessions: Vec<SessionStats>,
    /// Raw latency samples of the selected sessions, for cross-session
    /// percentile aggregation (in-process only; never serialized).
    pub samples: Vec<u64>,
    /// Events queued across *all* sessions on this shard at snapshot
    /// time (the shard's ingress backlog), regardless of session filter.
    pub queue_depth: u64,
    /// Admission-control counters for this shard.
    pub admission: AdmissionStats,
    /// Commands waiting on the shard's channel when the last burst began
    /// (the admission queue depth).
    pub cmd_backlog: u64,
}

/// One request to a shard. Every variant carries its own reply channel.
pub enum Command {
    /// Host a new session.
    Open {
        /// Pre-assigned session id (routing already happened).
        id: SessionId,
        /// Display name of the resolved program.
        name: String,
        /// The compiled signal graph.
        graph: SignalGraph,
        /// The FElm source the graph was compiled from (`None` for
        /// native graphs); served back by [`Command::Describe`].
        source: Option<String>,
        /// Ingress configuration (boxed: it dwarfs every other variant).
        config: Box<SessionConfig>,
        /// Replies with the open summary, or an error when the
        /// (cluster-keyed) id is already hosted here.
        reply: Sender<Result<OpenInfo, String>>,
    },
    /// Host a session restored from a peer's shipped snapshot + journal
    /// suffix (cluster failover).
    Adopt {
        /// The session's cluster-wide id (it keeps it across the move).
        id: SessionId,
        /// Display name of the resolved program.
        name: String,
        /// The compiled signal graph.
        graph: SignalGraph,
        /// FElm source, if the program was compiled from source.
        source: Option<String>,
        /// Ingress configuration.
        config: Box<SessionConfig>,
        /// Last shipped snapshot, tagged with its applied-seq watermark.
        snapshot: Option<(u64, WireSnapshot)>,
        /// Replicated journal suffix past the snapshot.
        entries: Vec<JournalEntry>,
        /// The ownership epoch the takeover assigned: stamped on the
        /// adopted session and fenced into its journal.
        epoch: u64,
        /// Replies with the restored applied-seq high-water mark.
        reply: Sender<Result<u64, String>>,
    },
    /// Close a session because a peer took it over: subscribers get a
    /// typed `moved` redirect instead of a plain close.
    CloseMoved {
        /// Target session.
        session: SessionId,
        /// The peer address subscribers should reconnect to.
        peer: String,
        /// The takeover's trace id, echoed on the `moved` redirect.
        trace: u64,
        /// The adopter's ownership epoch (0 = legacy broadcast). Nonzero
        /// closes are demotions: this peer was fenced off at that epoch.
        epoch: u64,
        /// Acknowledges the close (`Ok(false)` when not hosted here).
        reply: Sender<bool>,
    },
    /// One input event.
    Event {
        /// Target session.
        session: SessionId,
        /// Input signal name.
        input: String,
        /// The value.
        value: Value,
        /// Causal trace id riding the event (0 = untraced).
        trace: u64,
        /// Replies with the queue outcome.
        reply: Sender<Result<EnqueueOutcome, String>>,
    },
    /// Many input events, enqueued in order.
    Batch {
        /// Target session.
        session: SessionId,
        /// `(input, value)` pairs.
        events: Vec<(String, Value)>,
        /// Replies with the per-category tally.
        reply: Sender<Result<BatchOutcome, String>>,
    },
    /// The hosted program's source and graph fingerprint.
    Describe {
        /// Target session.
        session: SessionId,
        /// Replies with the description.
        reply: Sender<Result<DescribeInfo, String>>,
    },
    /// Current output value.
    Query {
        /// Target session.
        session: SessionId,
        /// Replies with the snapshot.
        reply: Sender<Result<QueryInfo, String>>,
    },
    /// Register an update subscriber.
    Subscribe {
        /// Target session.
        session: SessionId,
        /// Where updates go.
        sink: Sender<Update>,
        /// Acknowledges registration.
        reply: Sender<Result<(), String>>,
    },
    /// Register a span-tree (`trace`) subscriber.
    TraceSubscribe {
        /// Target session.
        session: SessionId,
        /// Where rendered trace lines go (bounded, drop-oldest).
        sink: Arc<TraceMailbox>,
        /// Acknowledges registration.
        reply: Sender<Result<(), String>>,
    },
    /// Statistics for one session (`Some`) or all on this shard (`None`).
    Stats {
        /// Optional session filter.
        session: Option<SessionId>,
        /// Replies with counters and per-session stats.
        reply: Sender<ShardStats>,
    },
    /// Tear a session down.
    Close {
        /// Target session.
        session: SessionId,
        /// Acknowledges the close.
        reply: Sender<Result<(), String>>,
    },
    /// Stop the shard thread (pumps and notifies remaining sessions).
    Shutdown,
}

/// Handle to a running shard thread.
pub struct ShardHandle {
    tx: Sender<Command>,
    handle: JoinHandle<()>,
}

impl ShardHandle {
    /// Spawns a shard worker. `faults` drives worker-stall injection
    /// (deterministically seeded by the shard index); pass
    /// [`FaultPlan::disabled`] for a fault-free shard. `admission`
    /// configures the shard's load-shedding controller and `memory` is
    /// the server-wide gauge behind its watermark.
    pub fn spawn(
        index: usize,
        idle_timeout: Option<Duration>,
        faults: FaultPlan,
        admission: AdmissionConfig,
        memory: Arc<MemoryGauge>,
        tap: Arc<ReplicationTap>,
    ) -> ShardHandle {
        let (tx, rx) = channel::unbounded();
        let handle = thread::Builder::new()
            .name(format!("elm-shard-{index}"))
            .spawn(move || run(rx, idle_timeout, index, faults, admission, memory, tap))
            .expect("spawning a shard thread");
        ShardHandle { tx, handle }
    }

    /// The shard's command channel.
    pub fn sender(&self) -> &Sender<Command> {
        &self.tx
    }

    /// Stops the shard and joins its thread.
    pub fn shutdown(self) {
        let _ = self.tx.send(Command::Shutdown);
        let _ = self.handle.join();
    }
}

pub(crate) fn input_names(graph: &SignalGraph) -> Vec<String> {
    graph
        .nodes()
        .iter()
        .filter_map(|n| match &n.kind {
            NodeKind::Input { name } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

struct Shard {
    sessions: HashMap<SessionId, Session>,
    counters: ShardCounters,
    idle_timeout: Option<Duration>,
    admission: AdmissionController,
    memory: Arc<MemoryGauge>,
    cmd_backlog: u64,
    tap: Arc<ReplicationTap>,
}

#[allow(clippy::too_many_arguments)]
fn run(
    rx: Receiver<Command>,
    idle_timeout: Option<Duration>,
    index: usize,
    faults: FaultPlan,
    admission: AdmissionConfig,
    memory: Arc<MemoryGauge>,
    tap: Arc<ReplicationTap>,
) {
    let mut shard = Shard {
        sessions: HashMap::new(),
        counters: ShardCounters::default(),
        idle_timeout,
        admission: AdmissionController::new(admission, memory.clone()),
        memory,
        cmd_backlog: 0,
        tap,
    };
    // Worker-stall injection: one roll per handled command burst. Stalls
    // only delay the worker (sessions must tolerate a frozen shard); they
    // never change what gets applied.
    let mut stall_rng = (faults.stall > 0.0).then(|| faults.rng(fault::STREAM_STALL, index as u64));
    'outer: loop {
        match rx.recv_timeout(TICK) {
            Ok(cmd) => {
                shard.cmd_backlog = rx.len() as u64;
                if shard.handle(cmd) {
                    break 'outer;
                }
                for _ in 0..MAX_BURST {
                    match rx.try_recv() {
                        Ok(cmd) => {
                            if shard.handle(cmd) {
                                break 'outer;
                            }
                        }
                        Err(_) => break,
                    }
                }
                if let Some(rng) = stall_rng.as_mut() {
                    if rng.gen_bool(faults.stall) {
                        thread::sleep(Duration::from_millis(faults.stall_ms));
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        shard.pump_all();
        shard.evict();
    }
    // Drain whatever is queued so clients that already got an "accepted"
    // see their events applied, then tell subscribers we're gone.
    shard.pump_all();
    for (_, mut s) in shard.sessions.drain() {
        s.notify_closed("shutdown");
        s.stop();
    }
}

impl Shard {
    /// Applies one command; returns true on [`Command::Shutdown`].
    fn handle(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::Open {
                id,
                name,
                graph,
                source,
                config,
                reply,
            } => {
                if self.sessions.contains_key(&id) {
                    let _ = reply.send(Err(format!("session {id} already exists")));
                    return false;
                }
                let info = OpenInfo {
                    session: id,
                    program: name.clone(),
                    inputs: input_names(&graph),
                    initial: PlainValue::from_value(&graph.node(graph.output()).default)
                        .unwrap_or_else(|| PlainValue::Str("<opaque>".to_string())),
                };
                let mut session = Session::new(id, name, graph, *config);
                session.set_source(source);
                session.set_memory_gauge(self.memory.clone());
                let meta = session.replica_meta();
                let epoch = session.epoch();
                session.set_replication(self.tap.clone());
                self.sessions.insert(id, session);
                self.counters.opened += 1;
                self.tap.send(RepMsg::Open {
                    session: id,
                    meta,
                    epoch,
                });
                let _ = reply.send(Ok(info));
            }
            Command::Adopt {
                id,
                name,
                graph,
                source,
                config,
                snapshot,
                entries,
                epoch,
                reply,
            } => {
                if self.sessions.contains_key(&id) {
                    let _ = reply.send(Err(format!("session {id} already exists")));
                    return false;
                }
                let mut session = Session::new(id, name, graph, *config);
                session.set_source(source);
                session.set_memory_gauge(self.memory.clone());
                // The takeover's epoch lands before any replication: the
                // re-basing snapshot and every append after it carry the
                // new epoch, and the journal is fenced against the old.
                session.set_epoch(epoch);
                match session.restore_shipped(snapshot, entries) {
                    Ok(last_seq) => {
                        let meta = session.replica_meta();
                        // The tap attaches only after the restore, so the
                        // replayed history is not re-replicated; from here
                        // the adopted session streams to *its* replica.
                        session.set_replication(self.tap.clone());
                        self.tap.send(RepMsg::Open {
                            session: id,
                            meta,
                            epoch: session.epoch(),
                        });
                        // Re-protect immediately: a snapshot at the
                        // adoption high-water mark re-bases this
                        // session's *new* replica so the append stream
                        // that follows stays contiguous instead of
                        // gapping until the next periodic snapshot.
                        session.snapshot_now();
                        self.sessions.insert(id, session);
                        self.counters.opened += 1;
                        let _ = reply.send(Ok(last_seq));
                    }
                    Err(e) => {
                        session.stop();
                        let _ = reply.send(Err(e));
                    }
                }
            }
            Command::CloseMoved {
                session,
                peer,
                trace,
                epoch,
                reply,
            } => {
                // Split-brain guard: a stale primary drops its copy when a
                // peer announces a takeover. Deliberately no RepMsg::Drop —
                // the new primary may share our replica target, and a drop
                // from us must not erase the replica it is now feeding.
                let hosted = match self.sessions.remove(&session) {
                    Some(mut s) => {
                        if epoch > 0 {
                            // An epoch-stamped takeover means *we* were
                            // the fenced-off owner: record the demotion,
                            // not just the move.
                            crate::blackbox::blackbox().record(
                                "demote",
                                session,
                                s.last_seq(),
                                trace,
                                -1,
                                &format!("demoted to {peer} at epoch {epoch}"),
                            );
                        } else {
                            crate::blackbox::blackbox().record(
                                "takeover",
                                session,
                                0,
                                trace,
                                -1,
                                &format!("moved to {peer}"),
                            );
                        }
                        s.notify_moved(&peer);
                        s.stop();
                        self.admission.forget(session);
                        self.counters.closed += 1;
                        true
                    }
                    None => false,
                };
                let _ = reply.send(hosted);
            }
            Command::Event {
                session,
                input,
                value,
                trace,
                reply,
            } => {
                let res = if !self.sessions.contains_key(&session) {
                    Err(format!("unknown session {session}"))
                } else {
                    match self
                        .admission
                        .admit(session, 1, value.approx_cells(), Instant::now())
                    {
                        Admission::Shed { retry_after_ms } => {
                            crate::blackbox::blackbox().record(
                                "shed",
                                session,
                                0,
                                trace,
                                -1,
                                "admission",
                            );
                            Ok(EnqueueOutcome::Shed { retry_after_ms })
                        }
                        Admission::Admit => {
                            self.with_session(session, |s| s.enqueue_traced(&input, value, trace))
                        }
                    }
                };
                let _ = reply.send(res);
            }
            Command::Batch {
                session,
                events,
                reply,
            } => {
                let res = if !self.sessions.contains_key(&session) {
                    Err(format!("unknown session {session}"))
                } else {
                    let cells: u64 = events.iter().map(|(_, v)| v.approx_cells()).sum();
                    match self
                        .admission
                        .admit(session, events.len() as u64, cells, Instant::now())
                    {
                        // All-or-nothing: a shed batch debits no tokens
                        // and enqueues nothing.
                        Admission::Shed { retry_after_ms } => Ok(BatchOutcome {
                            shed: events.len() as u64,
                            retry_after_ms,
                            ..BatchOutcome::default()
                        }),
                        Admission::Admit => self.with_session(session, |s| {
                            let mut outcome = BatchOutcome::default();
                            for (input, value) in events {
                                outcome.record(s.enqueue(&input, value));
                            }
                            outcome
                        }),
                    }
                };
                let _ = reply.send(res);
            }
            Command::Describe { session, reply } => {
                let _ = reply.send(self.with_session(session, |s| s.describe()));
            }
            Command::Query { session, reply } => {
                let _ = reply.send(self.with_session(session, |s| {
                    // Answer with applied state, not queued state.
                    s.pump();
                    s.query()
                }));
            }
            Command::Subscribe {
                session,
                sink,
                reply,
            } => {
                let _ = reply.send(self.with_session(session, |s| s.subscribe(sink)));
            }
            Command::TraceSubscribe {
                session,
                sink,
                reply,
            } => {
                let res = self
                    .with_session(session, |s| s.subscribe_trace(sink))
                    .and_then(|observed| {
                        if observed {
                            Ok(())
                        } else {
                            Err(format!(
                                "session {session} was not opened with \"observe\":true"
                            ))
                        }
                    });
                let _ = reply.send(res);
            }
            Command::Stats { session, reply } => {
                let selected: Vec<&Session> = match session {
                    Some(id) => self.sessions.get(&id).into_iter().collect(),
                    None => self.sessions.values().collect(),
                };
                let mut stats = ShardStats {
                    counters: self.counters,
                    queue_depth: self.sessions.values().map(|s| s.queue_len() as u64).sum(),
                    admission: self.admission.stats(),
                    cmd_backlog: self.cmd_backlog,
                    ..ShardStats::default()
                };
                for s in selected {
                    stats.sessions.push(s.stats());
                    stats.samples.extend_from_slice(s.latency_samples());
                }
                let _ = reply.send(stats);
            }
            Command::Close { session, reply } => {
                let res = match self.sessions.remove(&session) {
                    Some(mut s) => {
                        s.pump();
                        s.notify_closed("closed");
                        let epoch = s.epoch();
                        s.stop();
                        self.admission.forget(session);
                        self.counters.closed += 1;
                        self.tap.send(RepMsg::Drop { session, epoch });
                        Ok(())
                    }
                    None => Err(format!("unknown session {session}")),
                };
                let _ = reply.send(res);
            }
            Command::Shutdown => return true,
        }
        false
    }

    fn with_session<R>(
        &mut self,
        id: SessionId,
        f: impl FnOnce(&mut Session) -> R,
    ) -> Result<R, String> {
        match self.sessions.get_mut(&id) {
            Some(s) => Ok(f(s)),
            None => Err(format!("unknown session {id}")),
        }
    }

    fn pump_all(&mut self) {
        for s in self.sessions.values_mut() {
            s.pump();
        }
    }

    fn evict(&mut self) {
        let now = Instant::now();
        let doomed: Vec<(SessionId, &'static str)> = self
            .sessions
            .values()
            .filter_map(|s| {
                if s.recovery_failed() {
                    Some((s.id(), "recovery_failed"))
                } else if self
                    .idle_timeout
                    .is_some_and(|t| now.duration_since(s.last_activity()) > t)
                {
                    Some((s.id(), "idle"))
                } else {
                    None
                }
            })
            .collect();
        for (id, reason) in doomed {
            if let Some(mut s) = self.sessions.remove(&id) {
                s.notify_closed(reason);
                let epoch = s.epoch();
                s.stop();
                self.admission.forget(id);
                self.tap.send(RepMsg::Drop { session: id, epoch });
                match reason {
                    "recovery_failed" => self.counters.recovery_failed += 1,
                    _ => self.counters.evicted_idle += 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ProgramSpec, Registry};

    fn spawn_shard(idle_timeout: Option<Duration>) -> ShardHandle {
        ShardHandle::spawn(
            0,
            idle_timeout,
            FaultPlan::disabled(),
            AdmissionConfig::default(),
            MemoryGauge::new(),
            ReplicationTap::new(),
        )
    }

    fn open_on(
        shard: &ShardHandle,
        id: SessionId,
        program: &str,
        config: SessionConfig,
    ) -> OpenInfo {
        let (name, graph, source) = Registry::standard()
            .resolve_with_source(ProgramSpec::Builtin(program))
            .unwrap();
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Open {
                id,
                name,
                graph,
                source,
                config: Box::new(config),
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap().expect("open accepted")
    }

    fn query_on(shard: &ShardHandle, id: SessionId) -> Result<QueryInfo, String> {
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Query {
                session: id,
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap()
    }

    #[test]
    fn shard_hosts_sessions_and_answers_queries() {
        let shard = spawn_shard(None);
        let info = open_on(&shard, 7, "counter", SessionConfig::default());
        assert_eq!(info.session, 7);
        assert_eq!(info.inputs, vec!["Mouse.clicks".to_string()]);
        assert_eq!(info.initial, PlainValue::Int(0));

        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Event {
                session: 7,
                input: "Mouse.clicks".to_string(),
                value: Value::Unit,
                trace: 0,
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Ok(EnqueueOutcome::Accepted));
        assert_eq!(query_on(&shard, 7).unwrap().value, PlainValue::Int(1));
        assert!(query_on(&shard, 99).is_err());
        shard.shutdown();
    }

    #[test]
    fn keyed_opens_reject_duplicates_and_adoption_restores_state() {
        let shard = spawn_shard(None);
        open_on(&shard, 7, "counter", SessionConfig::default());

        // The same cluster key cannot be hosted twice.
        let (name, graph, source) = Registry::standard()
            .resolve_with_source(ProgramSpec::Builtin("counter"))
            .unwrap();
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Open {
                id: 7,
                name,
                graph,
                source,
                config: Box::new(SessionConfig::default()),
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().unwrap().is_err());

        // Adoption replays a shipped journal suffix into a fresh session.
        let (name, graph, source) = Registry::standard()
            .resolve_with_source(ProgramSpec::Builtin("counter"))
            .unwrap();
        let entries: Vec<JournalEntry> = (1..=3)
            .map(|seq| JournalEntry {
                seq,
                input: "Mouse.clicks".to_string(),
                value: PlainValue::Unit,
                trace: 0,
            })
            .collect();
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Adopt {
                id: 9,
                name,
                graph,
                source,
                config: Box::new(SessionConfig::default()),
                snapshot: None,
                entries,
                epoch: 2,
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv().unwrap(), Ok(3));
        let q = query_on(&shard, 9).unwrap();
        assert_eq!(q.value, PlainValue::Int(3));
        assert_eq!(q.last_seq, 3);
        // Adoption stamped the takeover's ownership epoch.
        assert_eq!(q.epoch, 2);

        // A takeover close hands subscribers a typed redirect.
        let (sub_tx, sub_rx) = channel::unbounded();
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Subscribe {
                session: 9,
                sink: sub_tx,
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap().unwrap();
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::CloseMoved {
                session: 9,
                peer: "127.0.0.1:7777".to_string(),
                trace: 0,
                epoch: 3,
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().unwrap());
        assert_eq!(
            sub_rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Update::Moved {
                session: 9,
                peer: "127.0.0.1:7777".to_string()
            }
        );
        shard.shutdown();
    }

    #[test]
    fn poisoned_sessions_recover_in_place_instead_of_eviction() {
        let shard = spawn_shard(None);
        open_on(&shard, 1, "crashy", SessionConfig::default());
        open_on(&shard, 2, "counter", SessionConfig::default());

        for v in [21, -5] {
            let (tx, rx) = channel::bounded(1);
            shard
                .sender()
                .send(Command::Event {
                    session: 1,
                    input: "Mouse.x".to_string(),
                    value: Value::Int(v),
                    trace: 0,
                    reply: tx,
                })
                .unwrap();
            rx.recv().unwrap().unwrap();
        }

        // The panic triggered a supervised restart, not an eviction: the
        // session keeps its id, answers queries, and reports the restart.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let q = query_on(&shard, 1).expect("session must survive the panic");
            if q.poisoned {
                assert_eq!(q.value, PlainValue::Int(42));
                break;
            }
            assert!(Instant::now() < deadline, "panic never surfaced");
            thread::sleep(Duration::from_millis(2));
        }
        // The sibling session is untouched.
        assert_eq!(query_on(&shard, 2).unwrap().value, PlainValue::Int(0));

        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Stats {
                session: None,
                reply: tx,
            })
            .unwrap();
        let stats = rx.recv().unwrap();
        assert_eq!(stats.counters.recovery_failed, 0);
        assert_eq!(stats.sessions.len(), 2);
        let crashy = stats.sessions.iter().find(|s| s.session == 1).unwrap();
        assert_eq!(crashy.recovery.restarts, 1);
        shard.shutdown();
    }

    #[test]
    fn budget_exhaustion_evicts_with_recovery_failed() {
        let shard = spawn_shard(None);
        let config = SessionConfig {
            restart: crate::supervisor::RestartPolicy {
                max_restarts: 0,
                ..crate::supervisor::RestartPolicy::default()
            },
            ..SessionConfig::default()
        };
        open_on(&shard, 1, "crashy", config);
        let (sub_tx, sub_rx) = channel::unbounded();
        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Subscribe {
                session: 1,
                sink: sub_tx,
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap().unwrap();

        let (tx, rx) = channel::bounded(1);
        shard
            .sender()
            .send(Command::Event {
                session: 1,
                input: "Mouse.x".to_string(),
                value: Value::Int(-5),
                trace: 0,
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap().unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if query_on(&shard, 1).is_err() {
                break;
            }
            assert!(Instant::now() < deadline, "doomed session never evicted");
            thread::sleep(Duration::from_millis(2));
        }
        // The final message on the stream names the reason.
        let last = sub_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("a closed notice");
        assert_eq!(
            last,
            Update::Closed {
                session: 1,
                reason: "recovery_failed".to_string()
            }
        );
        shard.shutdown();
    }

    #[test]
    fn idle_sessions_are_evicted_after_the_timeout() {
        let shard = spawn_shard(Some(Duration::from_millis(30)));
        open_on(&shard, 1, "counter", SessionConfig::default());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match query_on(&shard, 1) {
                // Querying touches the session, pushing the idle deadline
                // out — so back off longer than the timeout between polls.
                Ok(_) => thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
            assert!(Instant::now() < deadline, "idle session never evicted");
        }
        shard.shutdown();
    }
}
