//! Cluster mode: cross-process journal replication and replica failover.
//!
//! N `elm-server` processes form a peer group over the same NDJSON wire
//! the data plane uses. Each session's key places it on a **primary**
//! peer and a designated **replica** peer via rendezvous hashing
//! ([`place`]); the primary streams the session's write-ahead journal to
//! the replica (`journal-append`) and periodically ships a state snapshot
//! (`snapshot-ship`) so the replica's replay suffix stays bounded by the
//! snapshot interval — the cluster form of the repo's recovery invariant.
//!
//! Failover follows from the paper's Theorem 1: a session's state is a
//! deterministic function of its applied event sequence, so a replica
//! that restores the last shipped snapshot and replays the journal suffix
//! *is* the session. When a peer's heartbeats go silent past the takeover
//! deadline, the monitor declares it dead, adopts every session it backed
//! up for that peer, and broadcasts a `takeover` so surviving peers
//! redirect clients (`{"error":"moved","peer":…}`) to the new home.
//!
//! Replication is asynchronous and fire-and-forget (the peer verbs
//! produce no reply lines), so the primary's data plane never blocks on a
//! peer. The cost is a bounded window of un-replicated suffix at the kill
//! point; clients recover it exactly-once by reading the adopted
//! session's `last_seq` high-water mark and re-sending their trace from
//! `last_seq + 1`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use elm_runtime::{Counter, Gauge, JournalEntry, Registry as MetricsRegistry, WireSnapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{self, SessionMeta};
use crate::server::Server;

/// Static description of the peer group, shared (index-aligned) by every
/// member.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// This process's index into `peers`.
    pub peer_index: usize,
    /// Advertised listen addresses of every peer, including this one.
    pub peers: Vec<String>,
    /// How often idle replication links send a liveness heartbeat.
    pub heartbeat: Duration,
    /// How long a peer may stay silent before it is declared dead and its
    /// replicated sessions are adopted.
    pub takeover: Duration,
    /// Epoch fencing: stale-epoch peer writes are rejected and counted.
    /// Disabling this (the `--no-fencing` regression mode) re-opens the
    /// split-brain window the partition chaos verdict exists to catch.
    pub fencing: bool,
    /// Optional seeded network-fault proxy interposed on every outbound
    /// peer link (delay/drop/duplicate/reorder plus scheduled partition
    /// windows). `None` leaves the wire untouched.
    pub netfault: Option<Arc<crate::netfault::NetFault>>,
}

impl ClusterConfig {
    /// A config with the default 100 ms heartbeat / 1 s takeover timing,
    /// fencing on, and no network faults.
    pub fn new(peer_index: usize, peers: Vec<String>) -> ClusterConfig {
        ClusterConfig {
            peer_index,
            peers,
            heartbeat: Duration::from_millis(100),
            takeover: Duration::from_millis(1000),
            fencing: true,
            netfault: None,
        }
    }
}

/// One replication event, emitted by sessions and shards at the moment
/// the primary's own state changes, and consumed by the cluster router.
#[derive(Debug)]
pub enum RepMsg {
    /// A session opened (or was adopted): ship its metadata so the
    /// replica can re-instantiate the program on takeover.
    Open {
        /// The session id (also its placement key).
        session: u64,
        /// Program identity and ingress configuration.
        meta: SessionMeta,
        /// The session's ownership epoch at emission time.
        epoch: u64,
    },
    /// One event was applied and journaled; replicate it.
    Append {
        /// The session id.
        session: u64,
        /// The journaled event.
        entry: JournalEntry,
        /// The session's ownership epoch at emission time.
        epoch: u64,
    },
    /// The primary snapshotted; ship the state so the replica can
    /// truncate its replay suffix.
    Snapshot {
        /// The session id.
        session: u64,
        /// The sequence number the snapshot covers.
        through: u64,
        /// The portable state, when every value crossed the wire
        /// boundary (`None` keeps the replica on full-journal replay).
        wire: Option<Box<WireSnapshot>>,
        /// Trace id of the last event folded into the snapshot (0 when
        /// untraced).
        trace: u64,
        /// The session's ownership epoch at emission time.
        epoch: u64,
    },
    /// The session closed; the replica forgets it.
    Drop {
        /// The session id.
        session: u64,
        /// The session's ownership epoch at emission time.
        epoch: u64,
    },
}

/// A late-bound replication sender, threaded into every [`Session`] and
/// shard at server start. Until a [`Cluster`] installs its channel the
/// tap is a no-op, so single-process servers pay one atomic load per
/// emission and nothing else.
///
/// [`Session`]: crate::session::Session
#[derive(Debug, Default)]
pub struct ReplicationTap {
    tx: OnceLock<Sender<RepMsg>>,
}

impl ReplicationTap {
    /// A disconnected tap (every send is a no-op until `install`).
    pub fn new() -> Arc<ReplicationTap> {
        Arc::new(ReplicationTap::default())
    }

    /// Emits one replication event; silently dropped when no cluster is
    /// attached or the router has shut down.
    pub fn send(&self, msg: RepMsg) {
        if let Some(tx) = self.tx.get() {
            let _ = tx.send(msg);
        }
    }

    fn install(&self, tx: Sender<RepMsg>) {
        let _ = self.tx.set(tx);
    }
}

/// Rendezvous (highest-random-weight) placement: returns the
/// `(primary, replica)` peer indices for a session key. Every peer
/// computes the same answer from the shared peer list, so placement
/// needs no coordination; removing a peer only moves the keys it owned.
/// With a single peer the replica degenerates to the primary.
pub fn place(key: u64, n_peers: usize) -> (usize, usize) {
    assert!(n_peers > 0, "placement over an empty peer group");
    if n_peers == 1 {
        return (0, 0);
    }
    let mut scored: Vec<(u64, usize)> = (0..n_peers)
        .map(|p| (rendezvous_score(key, p), p))
        .collect();
    scored.sort_unstable_by(|a, b| b.cmp(a));
    (scored[0].1, scored[1].1)
}

/// splitmix64-style finalizer over `(key, peer)`, matching the mixing
/// discipline `FaultPlan::rng` uses so adjacent keys decorrelate.
fn rendezvous_score(key: u64, peer: usize) -> u64 {
    let mut z = key
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(peer as u64 + 1))
        .wrapping_add(0x6c62_272e_07bb_0142);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One session another peer asked us to back up.
#[derive(Debug)]
struct ReplicaSession {
    /// The peer currently hosting the session (who ships to us).
    from: usize,
    meta: SessionMeta,
    snapshot: Option<Box<WireSnapshot>>,
    through: u64,
    /// Trace id covered by the shipped snapshot (0 = untraced).
    snapshot_trace: u64,
    entries: Vec<JournalEntry>,
    /// Highest ownership epoch seen on accepted traffic for this
    /// session (0 until any stamped verb arrives).
    epoch: u64,
}

impl ReplicaSession {
    /// Trace id of the newest replicated state: the last journal entry's
    /// trace, falling back to the snapshot's when the suffix is empty.
    fn last_trace(&self) -> u64 {
        self.entries
            .last()
            .map(|e| e.trace)
            .unwrap_or(self.snapshot_trace)
    }
}

/// The replica side of replication: shipped metadata, snapshots, and
/// contiguous journal suffixes, keyed by session.
#[derive(Debug, Default)]
struct ReplicaStore {
    sessions: HashMap<u64, ReplicaSession>,
    /// Appends dropped for arriving out of order or for unknown
    /// sessions. A nonzero gap count means a takeover of the affected
    /// session would diverge; the chaos verdict would catch it.
    gaps: u64,
}

impl ReplicaStore {
    fn upsert_meta(&mut self, from: usize, session: u64, meta: SessionMeta, epoch: u64) {
        match self.sessions.get_mut(&session) {
            Some(r) => {
                r.from = from;
                r.meta = meta;
                r.epoch = r.epoch.max(epoch);
            }
            None => {
                self.sessions.insert(
                    session,
                    ReplicaSession {
                        from,
                        meta,
                        snapshot: None,
                        through: 0,
                        snapshot_trace: 0,
                        entries: Vec::new(),
                        epoch,
                    },
                );
            }
        }
    }

    /// Accepts `entry` only if it extends the stored suffix contiguously
    /// (`through + 1` when empty). Duplicates are ignored silently; gaps
    /// and unknown sessions are dropped and counted.
    fn append(&mut self, session: u64, entry: JournalEntry) -> bool {
        let Some(r) = self.sessions.get_mut(&session) else {
            self.gaps += 1;
            return false;
        };
        let expected = r.entries.last().map(|e| e.seq + 1).unwrap_or(r.through + 1);
        if entry.seq < expected {
            return true; // duplicate of already-replicated state
        }
        if entry.seq > expected {
            self.gaps += 1;
            return false;
        }
        r.entries.push(entry);
        true
    }

    fn snapshot(
        &mut self,
        session: u64,
        through: u64,
        wire: Option<Box<WireSnapshot>>,
        trace: u64,
    ) {
        if let (Some(r), Some(w)) = (self.sessions.get_mut(&session), wire) {
            r.snapshot = Some(w);
            r.through = through;
            r.snapshot_trace = trace;
            r.entries.retain(|e| e.seq > through);
        }
    }

    fn drop_session(&mut self, session: u64) {
        self.sessions.remove(&session);
    }

    /// Removes and returns every session `peer` was hosting — the adopt
    /// set when `peer` is declared dead.
    fn drain_from(&mut self, peer: usize) -> Vec<(u64, ReplicaSession)> {
        let ids: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, r)| r.from == peer)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .map(|id| (id, self.sessions.remove(&id).expect("just listed")))
            .collect()
    }
}

/// The cluster layer of one `elm-server` process: outbound replication
/// links to every peer, the replica store for sessions it backs up, the
/// failure monitor, and the `moved` route table.
pub struct Cluster {
    server: Arc<Server>,
    config: ClusterConfig,
    /// Pre-rendered NDJSON lines queued per peer (`None` at our own
    /// index). A dead peer's queue grows until it returns — acceptable
    /// for run-length-bounded workloads, and honest: replication to a
    /// dead peer *is* unbounded deferred work.
    outbound: Vec<Option<Sender<String>>>,
    replicas: Mutex<ReplicaStore>,
    /// Session → (address, takeover trace, epoch) overrides learned from
    /// `takeover` broadcasts; consulted before static placement when
    /// redirecting clients. The trace is the takeover's last-replicated
    /// trace id and the epoch the adopter's new ownership epoch, both
    /// echoed on `moved` redirects so an epoch-aware client can tell a
    /// mere wrong-peer redirect from a genuine ownership handoff.
    routes: Mutex<HashMap<u64, (String, u64, u64)>>,
    /// Session → highest ownership epoch this peer has witnessed, from
    /// its own adoptions and from `takeover` broadcasts. The fence:
    /// stamped peer traffic below the recorded epoch is rejected.
    fences: Mutex<HashMap<u64, u64>>,
    last_heard: Mutex<Vec<Instant>>,
    peer_up: Vec<AtomicBool>,
    stop: AtomicBool,
    /// Outbound lines queued across all peers (replication lag).
    lag: AtomicI64,
    takeovers: Counter,
    journal_replicated: Counter,
    snapshots_shipped: Counter,
    fenced: Counter,
    takeover_last_ms: Gauge,
}

impl Cluster {
    /// Starts the cluster layer: installs the replication tap on
    /// `server`, spawns the router, one outbound link per peer, and the
    /// failure monitor, and attaches itself for `moved` redirects.
    pub fn start(server: Arc<Server>, config: ClusterConfig) -> Arc<Cluster> {
        assert!(
            config.peer_index < config.peers.len(),
            "peer index {} outside peer list of {}",
            config.peer_index,
            config.peers.len()
        );
        let me = config.peer_index;
        let n = config.peers.len();
        let mut outbound = Vec::with_capacity(n);
        let mut receivers = Vec::new();
        for peer in 0..n {
            if peer == me {
                outbound.push(None);
            } else {
                let (tx, rx) = mpsc::channel::<String>();
                outbound.push(Some(tx));
                receivers.push((peer, rx));
            }
        }
        let cluster = Arc::new(Cluster {
            server: Arc::clone(&server),
            outbound,
            replicas: Mutex::new(ReplicaStore::default()),
            routes: Mutex::new(HashMap::new()),
            fences: Mutex::new(HashMap::new()),
            last_heard: Mutex::new(vec![Instant::now(); n]),
            peer_up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            stop: AtomicBool::new(false),
            lag: AtomicI64::new(0),
            takeovers: Counter::new(),
            journal_replicated: Counter::new(),
            snapshots_shipped: Counter::new(),
            fenced: Counter::new(),
            takeover_last_ms: Gauge::new(),
            config,
        });

        let (rep_tx, rep_rx) = mpsc::channel::<RepMsg>();
        server.replication_tap().install(rep_tx);
        server.attach_cluster(&cluster);

        {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || run_router(cluster, rep_rx));
        }
        for (peer, rx) in receivers {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || run_outbound(cluster, peer, rx));
        }
        {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || run_monitor(cluster));
        }
        cluster
    }

    /// Stops the monitor (outbound links die with their channels).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// This peer's advertised address.
    pub fn my_addr(&self) -> &str {
        &self.config.peers[self.config.peer_index]
    }

    /// The peer this process replicates `key` to: the highest-scored
    /// peer other than itself. For a session this peer is primary for,
    /// that is exactly the designated replica from [`place`].
    fn replica_target(&self, key: u64) -> Option<usize> {
        let n = self.config.peers.len();
        let me = self.config.peer_index;
        (0..n)
            .filter(|&p| p != me)
            .max_by_key(|&p| rendezvous_score(key, p))
    }

    fn ship(&self, key: u64, line: String) -> bool {
        let Some(target) = self.replica_target(key) else {
            return false;
        };
        let Some(tx) = &self.outbound[target] else {
            return false;
        };
        if tx.send(line).is_ok() {
            self.lag.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn note_heard(&self, from: usize) {
        if from >= self.peer_up.len() || from == self.config.peer_index {
            return;
        }
        self.last_heard.lock().expect("cluster lock")[from] = Instant::now();
        self.peer_up[from].store(true, Ordering::Relaxed);
    }

    /// Handles a peer `hello`: confirms the link.
    pub fn handle_hello(&self, from: usize, _addr: &str) -> String {
        self.note_heard(from);
        protocol::hello_line(self.config.peer_index)
    }

    /// Handles `place`: answers with the key's primary and replica.
    pub fn handle_place(&self, key: u64) -> String {
        let (primary, replica) = place(key, self.config.peers.len());
        protocol::place_line(
            key,
            (primary, &self.config.peers[primary]),
            (replica, &self.config.peers[replica]),
        )
    }

    /// The fence check for one stamped peer verb: `Some(fence)` when the
    /// write must be rejected because `epoch` is below the highest epoch
    /// this peer has witnessed for `session`. Epoch 0 is the unfenced
    /// legacy stamp and always passes, as does everything when fencing is
    /// disabled. The fences map (own adoptions, witnessed takeovers) is
    /// consulted first, then the replica store's high-water epoch.
    fn fence_for(&self, session: u64, epoch: u64) -> Option<u64> {
        if !self.config.fencing || epoch == 0 {
            return None;
        }
        // Lock discipline: `handle_takeover` is the one path that holds
        // routes → replicas → fences together; every other path takes at
        // most one of these locks at a time. The two lookups below must
        // therefore stay in *separate statements* — an `or_else` closure
        // taking `replicas` while the `fences` guard temporary is still
        // live would deadlock ABBA against a concurrent takeover
        // broadcast on another peer link.
        let witnessed = self
            .fences
            .lock()
            .expect("cluster lock")
            .get(&session)
            .copied();
        let fence = match witnessed {
            Some(f) => f,
            None => self
                .replicas
                .lock()
                .expect("cluster lock")
                .sessions
                .get(&session)
                .map(|r| r.epoch)?,
        };
        (epoch < fence).then_some(fence)
    }

    /// Counts one fenced rejection and records it on the flight recorder.
    #[allow(clippy::too_many_arguments)]
    fn reject_fenced(
        &self,
        verb: &str,
        session: u64,
        seq: u64,
        trace: u64,
        from: usize,
        epoch: u64,
        fence: u64,
    ) {
        self.fenced.inc();
        crate::blackbox::blackbox().record(
            "fenced",
            session,
            seq,
            trace,
            from as i64,
            &format!("{verb} at stale epoch {epoch} < {fence}"),
        );
    }

    /// Handles a streamed `journal-append`. Silent: returns no reply (an
    /// error reply would desynchronize the sender's framing), so a fenced
    /// append is rejected receiver-side: counted, recorded, dropped.
    pub fn handle_journal_append(
        &self,
        from: usize,
        session: u64,
        entry: JournalEntry,
        epoch: u64,
    ) {
        self.note_heard(from);
        let (seq, trace) = (entry.seq, entry.trace);
        if let Some(fence) = self.fence_for(session, epoch) {
            self.reject_fenced("journal-append", session, seq, trace, from, epoch, fence);
            return;
        }
        let accepted = {
            let mut store = self.replicas.lock().expect("cluster lock");
            let ok = store.append(session, entry);
            if ok {
                if let Some(r) = store.sessions.get_mut(&session) {
                    r.epoch = r.epoch.max(epoch);
                }
            }
            ok
        };
        if accepted {
            crate::blackbox::blackbox().record("replicated", session, seq, trace, from as i64, "");
        }
    }

    /// Handles a streamed `snapshot-ship` (metadata upsert, snapshot
    /// install, or drop). Silent: returns no reply; stale-epoch ships are
    /// fenced receiver-side like appends.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_snapshot_ship(
        &self,
        from: usize,
        session: u64,
        meta: SessionMeta,
        snapshot: Option<Box<WireSnapshot>>,
        through: u64,
        dropped: bool,
        trace: u64,
        epoch: u64,
    ) {
        self.note_heard(from);
        if let Some(fence) = self.fence_for(session, epoch) {
            let verb = if dropped {
                "snapshot-drop"
            } else {
                "snapshot-ship"
            };
            self.reject_fenced(verb, session, through, trace, from, epoch, fence);
            return;
        }
        let mut store = self.replicas.lock().expect("cluster lock");
        if dropped {
            store.drop_session(session);
            return;
        }
        store.upsert_meta(from, session, meta, epoch);
        store.snapshot(session, through, snapshot, trace);
    }

    /// Handles a streamed `heartbeat`. Silent: returns no reply.
    pub fn handle_heartbeat(&self, from: usize) {
        self.note_heard(from);
    }

    /// Handles a `takeover` broadcast: records the adopted sessions' new
    /// home for `moved` redirects and their new ownership epochs in the
    /// fence map, forgets any replica state for them (their new primary
    /// re-replicates from scratch), and — split-brain resolution — closes
    /// any of them this peer still hosts live, with a `Moved` update
    /// pointing subscribers at the adopter. That close is the demotion
    /// path: a zombie primary hearing a takeover at a higher epoch yields
    /// the session and serves redirects only.
    pub fn handle_takeover(
        &self,
        from: usize,
        addr: &str,
        sessions: &[u64],
        traces: &[u64],
        epochs: &[u64],
    ) -> String {
        self.note_heard(from);
        let mut fresh: Vec<(u64, u64, u64)> = Vec::with_capacity(sessions.len());
        {
            let mut routes = self.routes.lock().expect("cluster lock");
            let mut store = self.replicas.lock().expect("cluster lock");
            let mut fences = self.fences.lock().expect("cluster lock");
            for (i, &sid) in sessions.iter().enumerate() {
                let trace = traces.get(i).copied().unwrap_or(0);
                let epoch = epochs.get(i).copied().unwrap_or(0);
                // Broadcasts for one session arrive on independent links
                // and can be reordered (netfault delays takeover verbs):
                // one below the highest epoch already witnessed is stale,
                // and must not repoint the route at a demoted adopter,
                // drop replica state the newer owner is feeding, or close
                // a newer local copy. Epoch 0 legacy broadcasts carry no
                // order and keep the old always-apply behavior.
                if epoch > 0 && epoch < fences.get(&sid).copied().unwrap_or(0) {
                    crate::blackbox::blackbox().record(
                        "takeover-stale",
                        sid,
                        0,
                        trace,
                        from as i64,
                        &format!(
                            "ignored stale takeover by {addr} at epoch {epoch} < {}",
                            fences[&sid]
                        ),
                    );
                    continue;
                }
                routes.insert(sid, (addr.to_string(), trace, epoch));
                store.drop_session(sid);
                if epoch > 0 {
                    let f = fences.entry(sid).or_insert(0);
                    *f = (*f).max(epoch);
                }
                fresh.push((sid, trace, epoch));
                crate::blackbox::blackbox().record(
                    "takeover",
                    sid,
                    0,
                    trace,
                    from as i64,
                    &format!("adopted by {addr} at epoch {epoch}"),
                );
            }
        }
        for &(sid, trace, epoch) in &fresh {
            // The takeover wins: if we still host the session (we were
            // partitioned, not dead), our copy yields.
            self.server.close_moved(sid, addr, trace, epoch);
        }
        protocol::takeover_ack_line(sessions.len())
    }

    /// Where a session the server does not host lives, if the cluster
    /// knows: takeover routes first, then the replica store's record of
    /// who ships to us, then static placement. The second element is the
    /// takeover trace id for route-table hits (0 otherwise) and the third
    /// the owner's epoch where known (0 otherwise), both echoed on
    /// `moved` redirects.
    pub fn redirect_for(&self, session: u64) -> Option<(String, u64, u64)> {
        if let Some((addr, trace, epoch)) = self.routes.lock().expect("cluster lock").get(&session)
        {
            return Some((addr.clone(), *trace, *epoch));
        }
        if let Some(r) = self
            .replicas
            .lock()
            .expect("cluster lock")
            .sessions
            .get(&session)
        {
            return Some((self.config.peers[r.from].clone(), 0, r.epoch));
        }
        let (primary, _) = place(session, self.config.peers.len());
        if primary != self.config.peer_index {
            return Some((self.config.peers[primary].clone(), 0, 0));
        }
        None
    }

    /// Declares `peer` dead: adopts every session it replicated to us
    /// and broadcasts the takeover to the surviving peers.
    ///
    /// Guarded by a majority quorum for groups of three or more: a peer
    /// that can reach at most half the group is on the minority side of a
    /// partition, and adopting there would fork session history (both
    /// sides serving the same session). The minority peer marks the
    /// silent peer down but keeps its replica state untouched, so the
    /// majority side's takeover — and the backlog that flushes at heal —
    /// lands on intact state. Two-peer groups keep the old always-adopt
    /// behavior: with n = 2 there is no majority to defer to.
    ///
    /// Reachability is judged by heartbeat *recency*, not by whether a
    /// peer's own takeover timer has fired yet: when one partition cuts
    /// several links at once, the timers expire milliseconds apart, and
    /// counting a peer as "up" merely because its timer is still pending
    /// would let the isolated side adopt through the gap.
    fn declare_dead(&self, peer: usize) {
        self.peer_up[peer].store(false, Ordering::Relaxed);
        let n = self.config.peers.len();
        let me = self.config.peer_index;
        let now = Instant::now();
        let fresh = self.config.takeover / 2;
        let up = {
            let heard = self.last_heard.lock().expect("cluster lock");
            (0..n)
                .filter(|&p| {
                    p == me
                        || (p != peer
                            && self.peer_up[p].load(Ordering::Relaxed)
                            && now.saturating_duration_since(heard[p]) < fresh)
                })
                .count()
        };
        if n >= 3 && up * 2 <= n {
            eprintln!(
                "cluster: peer {peer} silent, but only {up}/{n} peers heard from recently — \
                 minority side of a partition, refusing takeover"
            );
            return;
        }
        let started = Instant::now();
        let victims = self.replicas.lock().expect("cluster lock").drain_from(peer);
        if victims.is_empty() {
            return;
        }
        let sids: Vec<u64> = victims.iter().map(|(id, _)| *id).collect();
        // The victim's last known trace per session rides the takeover
        // broadcast so every survivor — and the `moved` redirects they
        // serve — can stitch the failover into the same causal trace.
        let traces: Vec<u64> = victims.iter().map(|(_, r)| r.last_trace()).collect();
        // Adoption bumps each session past the highest epoch its old
        // owner was seen writing at; recording the new epoch in the fence
        // map is what rejects the zombie's backlog when the wire heals.
        let epochs: Vec<u64> = victims.iter().map(|(_, r)| r.epoch.max(1) + 1).collect();
        {
            let mut fences = self.fences.lock().expect("cluster lock");
            for (i, sid) in sids.iter().enumerate() {
                let f = fences.entry(*sid).or_insert(0);
                *f = (*f).max(epochs[i]);
            }
        }
        // Broadcast intent *before* adopting: surviving peers must
        // process the takeover (dropping their stale replica state for
        // these sessions) before the adoption's own re-replication
        // stream — `Open`, re-basing snapshot, appends — reaches them on
        // the same FIFO link, or the drop would erase the state that
        // stream just established.
        {
            let mut routes = self.routes.lock().expect("cluster lock");
            for sid in &sids {
                routes.remove(sid);
            }
        }
        let line = protocol::takeover_request(
            self.config.peer_index,
            self.my_addr(),
            &sids,
            &traces,
            &epochs,
        );
        for tx in self.outbound.iter().flatten() {
            if tx.send(line.clone()).is_ok() {
                self.lag.fetch_add(1, Ordering::Relaxed);
            }
        }
        for (i, (sid, r)) in victims.into_iter().enumerate() {
            crate::blackbox::blackbox().record(
                "takeover",
                sid,
                r.through,
                traces[i],
                peer as i64,
                &format!("peer dead, adopting at epoch {}", epochs[i]),
            );
            let snapshot = r.snapshot.map(|w| (r.through, *w));
            match self
                .server
                .adopt(sid, &r.meta, snapshot, r.entries, epochs[i])
            {
                Ok(last_seq) => {
                    self.takeovers.inc();
                    eprintln!(
                        "cluster: peer {peer} dead, adopted session {sid} at seq {last_seq} \
                         epoch {}",
                        epochs[i]
                    );
                }
                Err(e) => eprintln!("cluster: takeover of session {sid} failed: {e}"),
            }
        }
        // Post-mortem: dump what the adopter knows of the victim's
        // sessions (replicated seqs, trace ids, the adoption itself).
        let bb = crate::blackbox::blackbox();
        let path = format!("BLACKBOX_peer{me}_adopts_peer{peer}.ndjson");
        bb.dump_records_to(std::path::Path::new(&path), &bb.snapshot_for(&sids));
        eprintln!("cluster: wrote flight-recorder dump {path}");
        self.takeover_last_ms
            .set(started.elapsed().as_millis() as i64);
    }

    /// Sessions adopted from dead peers, cumulatively.
    pub fn takeovers_total(&self) -> u64 {
        self.takeovers.get()
    }

    /// Stale-epoch peer writes rejected by the fence, cumulatively.
    pub fn fenced_total(&self) -> u64 {
        self.fenced.get()
    }

    /// Renders the `elm_cluster_*` metric families as Prometheus text.
    /// `sessions_primary` is the number of sessions this server hosts
    /// live (the caller already collected it for the core families).
    pub fn render_metrics(&self, sessions_primary: i64) -> String {
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "elm_cluster_takeovers_total",
            "Sessions adopted from peers declared dead.",
            &[],
            self.takeovers.get(),
        );
        for (i, _) in self.config.peers.iter().enumerate() {
            let p = i.to_string();
            let up = if i == self.config.peer_index {
                1
            } else {
                i64::from(self.peer_up[i].load(Ordering::Relaxed))
            };
            reg.gauge(
                "elm_cluster_peer_up",
                "1 while the peer's heartbeats are inside the takeover deadline.",
                &[("peer", &p)],
                up,
            );
        }
        {
            // Heartbeat recency per peer: rises during a partition long
            // before the takeover deadline fires, so operators see the
            // onset, not just the verdict.
            let heard = self.last_heard.lock().expect("cluster lock");
            for (i, _) in self.config.peers.iter().enumerate() {
                if i == self.config.peer_index {
                    continue;
                }
                let p = i.to_string();
                reg.gauge(
                    "elm_cluster_heartbeat_age_ms",
                    "Milliseconds since the last line heard from the peer.",
                    &[("peer", &p)],
                    heard[i].elapsed().as_millis() as i64,
                );
            }
        }
        reg.gauge(
            "elm_cluster_sessions_primary",
            "Sessions this peer hosts live.",
            &[],
            sessions_primary,
        );
        reg.gauge(
            "elm_cluster_sessions_replica",
            "Sessions this peer backs up for others.",
            &[],
            self.replicas.lock().expect("cluster lock").sessions.len() as i64,
        );
        reg.counter(
            "elm_cluster_journal_replicated_total",
            "Journal entries shipped to replica peers.",
            &[],
            self.journal_replicated.get(),
        );
        reg.counter(
            "elm_cluster_snapshots_shipped_total",
            "State snapshots shipped to replica peers.",
            &[],
            self.snapshots_shipped.get(),
        );
        reg.counter(
            "elm_cluster_replication_gaps_total",
            "Replicated appends dropped for arriving out of order.",
            &[],
            self.replicas.lock().expect("cluster lock").gaps,
        );
        reg.counter(
            "elm_cluster_fenced_total",
            "Stale-epoch peer writes rejected by the ownership fence.",
            &[],
            self.fenced.get(),
        );
        {
            let mut fenced: Vec<(u64, u64)> = self
                .fences
                .lock()
                .expect("cluster lock")
                .iter()
                .map(|(&sid, &epoch)| (sid, epoch))
                .collect();
            fenced.sort_unstable();
            for (sid, epoch) in fenced {
                let s = sid.to_string();
                reg.gauge(
                    "elm_cluster_epoch",
                    "Highest ownership epoch witnessed per session (present once a takeover fences it).",
                    &[("session", &s)],
                    epoch as i64,
                );
            }
        }
        reg.gauge(
            "elm_cluster_replication_lag_entries",
            "Outbound replication lines queued across all peer links.",
            &[],
            self.lag.load(Ordering::Relaxed),
        );
        reg.gauge(
            "elm_cluster_takeover_last_ms",
            "Duration of the most recent takeover (adoption of all sessions), in milliseconds.",
            &[],
            self.takeover_last_ms.get(),
        );
        reg.render()
    }

    /// One cluster-wide Prometheus exposition: fans `{"cmd":"metrics"}`
    /// out to every other peer (short connect/read timeouts so a dead
    /// peer costs at most the timeout), then merges the scrapes with
    /// `peer` labels via [`crate::metrics::federate`]. `local` is this
    /// peer's own full exposition, collected by the caller.
    pub fn federated_metrics(&self, local: &str) -> String {
        let me = self.config.peer_index;
        let mut scrapes: Vec<(usize, Option<String>)> = Vec::new();
        for (i, addr) in self.config.peers.iter().enumerate() {
            if i == me {
                scrapes.push((i, Some(local.to_string())));
                continue;
            }
            scrapes.push((i, fetch_peer_metrics(addr)));
        }
        crate::metrics::federate(&scrapes)
    }
}

/// Fetches one peer's exposition text over a throwaway connection, or
/// `None` if the peer is unreachable or replies malformed. Timeouts are
/// short: federation is a scrape path, not a consensus path.
fn fetch_peer_metrics(addr: &str) -> Option<String> {
    let addr: std::net::SocketAddr = addr.parse().ok()?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(1500)))
        .ok()?;
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"{\"cmd\":\"metrics\"}\n").ok()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).ok()?;
    let reply: serde_json::Value = serde_json::from_str(line.trim()).ok()?;
    reply
        .get("metrics")
        .and_then(serde_json::Value::as_str)
        .map(str::to_string)
}

/// Consumes the replication tap, renders peer verbs, and enqueues them on
/// the session's replica link. Remembers each session's metadata from its
/// `Open` so snapshot ships stay self-contained.
fn run_router(cluster: Arc<Cluster>, rx: Receiver<RepMsg>) {
    let me = cluster.config.peer_index;
    let mut meta: HashMap<u64, SessionMeta> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            RepMsg::Open {
                session,
                meta: m,
                epoch,
            } => {
                let line = protocol::snapshot_ship_request(me, session, &m, None, 0, 0, epoch);
                meta.insert(session, m);
                cluster.ship(session, line);
            }
            RepMsg::Append {
                session,
                entry,
                epoch,
            } => {
                let line = protocol::journal_append_request(me, session, &entry, epoch);
                if cluster.ship(session, line) {
                    cluster.journal_replicated.inc();
                }
            }
            RepMsg::Snapshot {
                session,
                through,
                wire,
                trace,
                epoch,
            } => {
                if let Some(m) = meta.get(&session) {
                    let line = protocol::snapshot_ship_request(
                        me,
                        session,
                        m,
                        wire.as_deref(),
                        through,
                        trace,
                        epoch,
                    );
                    if cluster.ship(session, line) {
                        cluster.snapshots_shipped.inc();
                    }
                }
            }
            RepMsg::Drop { session, epoch } => {
                meta.remove(&session);
                cluster.ship(session, protocol::snapshot_drop_request(me, session, epoch));
            }
        }
    }
}

/// One outbound replication link: connects (with jittered exponential
/// backoff), introduces itself with `hello`, then forwards queued lines —
/// injecting a `heartbeat` whenever the queue stays idle for a heartbeat
/// interval, so the link doubles as the liveness signal.
///
/// When a [`crate::netfault::NetFault`] proxy is configured, every line
/// passes through it first. A scheduled partition *retains* the current
/// line (the inner loop spins until the window closes), so the channel
/// queues behind it exactly as it does for a dead peer — FIFO order
/// survives the cut, and the backlog flushes in order at heal. Random
/// faults (delay, drop, duplicate, reorder) shape individual deliveries.
fn run_outbound(cluster: Arc<Cluster>, peer: usize, rx: Receiver<String>) {
    let me = cluster.config.peer_index;
    let addr = cluster.config.peers[peer].clone();
    let hello = protocol::hello_request(me, cluster.my_addr());
    let netfault = cluster.config.netfault.clone();
    let mut rng =
        StdRng::seed_from_u64(0x0063_6c75_7374_6572_u64 ^ ((me as u64) << 8) ^ peer as u64);
    let mut attempt = 0u32;
    let mut conn: Option<TcpStream> = None;
    loop {
        let line = match rx.recv_timeout(cluster.config.heartbeat) {
            Ok(l) => {
                cluster.lag.fetch_sub(1, Ordering::Relaxed);
                l
            }
            Err(RecvTimeoutError::Timeout) => protocol::heartbeat_request(me),
            Err(RecvTimeoutError::Disconnected) => return,
        };
        loop {
            if cluster.stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(nf) = &netfault {
                if nf.partitioned(me, peer) {
                    // Retain the line and retry after the window; also
                    // drop the connection so the heal starts with a
                    // fresh hello'd link.
                    conn = None;
                    thread::sleep(Duration::from_millis(5));
                    continue;
                }
            }
            if conn.is_none() {
                match TcpStream::connect(&addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        conn = Some(stream);
                        attempt = 0;
                        // Introduce the link; replies (the hello ack) are
                        // never read — this direction only streams.
                        if write_line(conn.as_mut().expect("just set"), &hello).is_err() {
                            conn = None;
                            continue;
                        }
                    }
                    Err(_) => {
                        attempt = attempt.saturating_add(1);
                        let cap = 10u64.saturating_mul(1u64 << attempt.min(7)).min(1000);
                        thread::sleep(Duration::from_millis(rng.gen_range(cap / 2..=cap.max(1))));
                        continue;
                    }
                }
            }
            let delivery = match &netfault {
                Some(nf) => nf.process(me, peer, &line),
                None => crate::netfault::Delivery::passthrough(&line),
            };
            if !delivery.delay.is_zero() {
                thread::sleep(delivery.delay);
            }
            let stream = conn.as_mut().expect("connected");
            let mut wrote = true;
            for l in &delivery.lines {
                if write_line(stream, l).is_err() {
                    wrote = false;
                    break;
                }
            }
            if wrote {
                break;
            }
            conn = None; // reconnect and resend this line
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

/// Watches per-peer heartbeat recency and fires takeovers past the
/// deadline. A returning peer (heartbeats resume) is marked up again by
/// `note_heard`.
fn run_monitor(cluster: Arc<Cluster>) {
    let me = cluster.config.peer_index;
    loop {
        thread::sleep(cluster.config.heartbeat);
        if cluster.stop.load(Ordering::Relaxed) {
            return;
        }
        let deadline = cluster.config.takeover;
        let silent: Vec<usize> = {
            let heard = cluster.last_heard.lock().expect("cluster lock");
            (0..cluster.config.peers.len())
                .filter(|&p| {
                    p != me
                        && cluster.peer_up[p].load(Ordering::Relaxed)
                        && heard[p].elapsed() > deadline
                })
                .collect()
        };
        for p in silent {
            cluster.declare_dead(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BackpressurePolicy;
    use elm_runtime::PlainValue;

    fn meta() -> SessionMeta {
        SessionMeta {
            program: "counter".to_string(),
            source: None,
            queue: 64,
            policy: BackpressurePolicy::Block,
        }
    }

    fn entry(seq: u64) -> JournalEntry {
        traced_entry(seq, 0)
    }

    fn traced_entry(seq: u64, trace: u64) -> JournalEntry {
        JournalEntry {
            seq,
            input: "Mouse.clicks".to_string(),
            value: PlainValue::Unit,
            trace,
        }
    }

    #[test]
    fn placement_is_deterministic_and_spreads_keys() {
        let mut owned = [0usize; 3];
        for key in 0..300u64 {
            let (p, r) = place(key, 3);
            assert_eq!((p, r), place(key, 3));
            assert_ne!(p, r, "primary and replica must differ for key {key}");
            assert!(p < 3 && r < 3);
            owned[p] += 1;
        }
        // Rendezvous hashing balances within loose bounds.
        for (peer, n) in owned.iter().enumerate() {
            assert!(
                (50..=150).contains(n),
                "peer {peer} owns {n} of 300 keys: {owned:?}"
            );
        }
        // A single-peer group degenerates to self-replication.
        assert_eq!(place(7, 1), (0, 0));
    }

    #[test]
    fn replica_store_keeps_a_contiguous_suffix_past_snapshots() {
        let mut store = ReplicaStore::default();

        // Appends before the meta ship are gaps, not state.
        assert!(!store.append(5, entry(1)));
        assert_eq!(store.gaps, 1);

        store.upsert_meta(1, 5, meta(), 1);
        for seq in 1..=4 {
            assert!(store.append(5, entry(seq)));
        }
        // Duplicate: ignored without damage. Gap: dropped and counted.
        assert!(store.append(5, entry(2)));
        assert!(!store.append(5, entry(7)));
        assert_eq!(store.gaps, 2);
        assert_eq!(store.sessions[&5].entries.len(), 4);

        // A snapshot through 3 truncates the suffix to entry 4.
        store.snapshot(5, 3, Some(Box::new(WireSnapshot::default())), 0);
        let r = &store.sessions[&5];
        assert_eq!(r.through, 3);
        assert_eq!(r.entries.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![4]);
        // The suffix keeps extending from the truncated tail.
        assert!(store.append(5, entry(5)));

        store.drop_session(5);
        assert!(store.sessions.is_empty());
    }

    #[test]
    fn replica_tracks_the_last_replicated_trace_across_snapshots() {
        let mut store = ReplicaStore::default();
        store.upsert_meta(1, 9, meta(), 1);
        // No entries, no snapshot: nothing to continue from.
        assert_eq!(store.sessions[&9].last_trace(), 0);

        store.append(9, traced_entry(1, 0xa1));
        store.append(9, traced_entry(2, 0xa2));
        assert_eq!(store.sessions[&9].last_trace(), 0xa2);

        // A snapshot that covers the whole suffix leaves the snapshot's
        // own trace as the continuation point.
        store.snapshot(9, 2, Some(Box::new(WireSnapshot::default())), 0xa2);
        assert_eq!(store.sessions[&9].entries.len(), 0);
        assert_eq!(store.sessions[&9].last_trace(), 0xa2);

        // Entries past the snapshot win over the snapshot trace — the
        // takeover must continue the *newest* replicated trace.
        store.append(9, traced_entry(3, 0xa3));
        assert_eq!(store.sessions[&9].last_trace(), 0xa3);
    }

    #[test]
    fn replica_store_drains_by_hosting_peer() {
        let mut store = ReplicaStore::default();
        store.upsert_meta(0, 1, meta(), 1);
        store.upsert_meta(2, 2, meta(), 1);
        store.upsert_meta(0, 3, meta(), 1);
        let mut adopted: Vec<u64> = store.drain_from(0).into_iter().map(|(id, _)| id).collect();
        adopted.sort_unstable();
        assert_eq!(adopted, vec![1, 3]);
        assert_eq!(store.sessions.len(), 1);
        assert!(store.sessions.contains_key(&2));
    }

    #[test]
    fn tap_is_a_no_op_until_installed() {
        let tap = ReplicationTap::new();
        tap.send(RepMsg::Drop {
            session: 1,
            epoch: 1,
        }); // must not panic or block
        let (tx, rx) = mpsc::channel();
        tap.install(tx);
        tap.send(RepMsg::Drop {
            session: 2,
            epoch: 1,
        });
        match rx.try_recv() {
            Ok(RepMsg::Drop { session: 2, .. }) => {}
            other => panic!("expected the installed tap to deliver, got {other:?}"),
        }
    }

    /// A cluster whose peers point at an unroutable port: outbound links
    /// just back off, which is all these receiver-side tests need.
    fn offline_cluster(n: usize) -> Arc<Cluster> {
        let server = Arc::new(Server::start(crate::server::ServerConfig::default()));
        let mut config = ClusterConfig::new(0, vec!["127.0.0.1:1".to_string(); n]);
        config.takeover = Duration::from_secs(3600); // monitor never fires
        Cluster::start(server, config)
    }

    #[test]
    fn stale_epoch_traffic_is_fenced_and_counted() {
        let cluster = offline_cluster(2);

        // Peer 1 replicates session 5 at epoch 1: accepted.
        cluster.handle_snapshot_ship(1, 5, meta(), None, 0, false, 0, 1);
        cluster.handle_journal_append(1, 5, entry(1), 1);
        assert_eq!(cluster.fenced_total(), 0);

        // A witnessed takeover fences the session at epoch 2. The stale
        // owner's flushed backlog is rejected and counted — and does NOT
        // land in the gap counter (it is a fence, not a stream tear).
        cluster.handle_takeover(1, "127.0.0.1:9", &[5], &[0], &[2]);
        cluster.handle_journal_append(1, 5, entry(2), 1);
        cluster.handle_snapshot_ship(1, 5, meta(), None, 2, false, 0, 1);
        cluster.handle_snapshot_ship(1, 5, meta(), None, 0, true, 0, 1);
        assert_eq!(cluster.fenced_total(), 3);
        assert_eq!(cluster.replicas.lock().unwrap().gaps, 0);

        // Traffic at or above the fence passes; the new owner's stream
        // re-establishes the replica.
        cluster.handle_snapshot_ship(1, 5, meta(), None, 0, false, 0, 2);
        cluster.handle_journal_append(1, 5, entry(1), 2);
        assert_eq!(cluster.fenced_total(), 3);
        assert_eq!(cluster.replicas.lock().unwrap().sessions[&5].epoch, 2);

        // Epoch 0 is the legacy unfenced stamp: never rejected.
        cluster.handle_journal_append(1, 5, entry(2), 0);
        assert_eq!(cluster.fenced_total(), 3);

        let text = cluster.render_metrics(0);
        assert!(text.contains("elm_cluster_fenced_total 3"), "{text}");
        assert!(
            text.contains("elm_cluster_epoch{session=\"5\"} 2"),
            "{text}"
        );
        assert!(text.contains("elm_cluster_heartbeat_age_ms"), "{text}");
        cluster.stop();
    }

    #[test]
    fn stale_takeover_broadcast_cannot_overwrite_a_newer_route() {
        let cluster = offline_cluster(3);
        // Peer 1 adopts session 5 at epoch 3; the route points at it.
        cluster.handle_takeover(1, "127.0.0.1:31", &[5], &[7], &[3]);
        assert_eq!(
            cluster.redirect_for(5),
            Some(("127.0.0.1:31".to_string(), 7, 3))
        );
        // A delayed broadcast of the *previous* takeover (epoch 2, a
        // different adopter) arrives out of order on another link: it
        // must not repoint the route at the demoted adopter or lower
        // the fence.
        cluster.handle_takeover(2, "127.0.0.1:32", &[5], &[8], &[2]);
        assert_eq!(
            cluster.redirect_for(5),
            Some(("127.0.0.1:31".to_string(), 7, 3))
        );
        assert_eq!(cluster.fences.lock().unwrap()[&5], 3);
        // A newer broadcast still applies.
        cluster.handle_takeover(2, "127.0.0.1:32", &[5], &[9], &[4]);
        assert_eq!(
            cluster.redirect_for(5),
            Some(("127.0.0.1:32".to_string(), 9, 4))
        );
        cluster.stop();
    }

    #[test]
    fn fencing_disabled_lets_stale_epochs_tear_the_stream() {
        let cluster = {
            let server = Arc::new(Server::start(crate::server::ServerConfig::default()));
            let mut config = ClusterConfig::new(0, vec!["127.0.0.1:1".to_string(); 2]);
            config.takeover = Duration::from_secs(3600);
            config.fencing = false;
            Cluster::start(server, config)
        };
        cluster.handle_snapshot_ship(1, 5, meta(), None, 0, false, 0, 1);
        cluster.handle_journal_append(1, 5, entry(1), 1);
        cluster.handle_takeover(1, "127.0.0.1:9", &[5], &[0], &[2]);
        // Unfenced, the zombie's backlog hits the dropped session and
        // registers as a replication gap — the divergence signal the
        // partition verdict (and this regression) exists to catch.
        cluster.handle_journal_append(1, 5, entry(2), 1);
        assert_eq!(cluster.fenced_total(), 0);
        assert_eq!(cluster.replicas.lock().unwrap().gaps, 1);
        cluster.stop();
    }

    #[test]
    fn minority_side_refuses_takeover_and_keeps_replica_state() {
        let cluster = offline_cluster(3);
        cluster.handle_snapshot_ship(2, 7, meta(), None, 0, false, 0, 1);

        // First silence: 2 of 3 reachable — still the majority side, but
        // peer 1 hosted nothing here, so nothing is adopted.
        cluster.declare_dead(1);
        assert_eq!(cluster.takeovers_total(), 0);

        // Second silence: only this peer reachable (1 of 3) — minority
        // side of a partition. The takeover must be refused and the
        // replica state for session 7 kept intact, so the majority's
        // re-replication (or the heal) finds it contiguous.
        cluster.declare_dead(2);
        assert_eq!(cluster.takeovers_total(), 0);
        let text = cluster.render_metrics(0);
        assert!(text.contains("elm_cluster_sessions_replica 1"), "{text}");
        assert!(cluster.fences.lock().unwrap().is_empty());
        cluster.stop();
    }
}
