//! TCP front end: newline-delimited JSON over a socket.
//!
//! One reader thread per connection parses request lines and dispatches
//! to the shared [`Server`]; one writer thread serializes replies and
//! subscription pushes from an outbound channel, so streamed updates
//! interleave safely with request/reply traffic on the same socket.
//!
//! Try it with `nc` (see the README quick-start):
//!
//! ```text
//! $ echo '{"cmd":"open","program":"counter"}' | nc localhost 7878
//! {"ok":true,"session":0,"program":"counter","inputs":["Mouse.clicks"],"initial":{"Int":0}}
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use crossbeam::channel::{self, Sender};

use crate::protocol::{self, Request};
use crate::registry::ProgramSpec;
use crate::server::Server;
use crate::session::TracePop;

/// Accepts connections forever, one handler thread per client.
pub fn serve(server: Arc<Server>, listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let server = Arc::clone(&server);
                thread::spawn(move || handle_client(server, stream));
            }
            Err(_) => break,
        }
    }
}

/// Runs one client connection to completion (EOF or socket error).
pub fn handle_client(server: Arc<Server>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = channel::unbounded::<String>();
    let mut write_half = stream;
    let writer = thread::spawn(move || {
        for line in out_rx.iter() {
            if write_half
                .write_all(line.as_bytes())
                .and_then(|()| write_half.write_all(b"\n"))
                .and_then(|()| write_half.flush())
                .is_err()
            {
                break;
            }
        }
    });

    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // HTTP-ish escape hatch: a Prometheus scraper (or curl) speaking
        // plain HTTP gets one response and a closed connection.
        if let Some(rest) = line.strip_prefix("GET ") {
            let _ = out_tx.send(http_response(&server, rest));
            break;
        }
        let reply = dispatch(&server, line, &out_tx);
        if out_tx.send(reply).is_err() {
            break;
        }
    }
    drop(out_tx);
    let _ = writer.join();
}

/// Builds a minimal HTTP/1.0 response for `GET <path> ...` request lines.
/// Only `/metrics` exists. The writer thread appends one `\n` to every
/// outbound line, so the advertised `Content-Length` counts it.
fn http_response(server: &Arc<Server>, request_rest: &str) -> String {
    let path = request_rest.split_whitespace().next().unwrap_or("");
    let (status, content_type, body) = if path == "/metrics" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            server.metrics_text(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no such path {path}\n"),
        )
    };
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len() + 1,
    )
}

fn dispatch(server: &Arc<Server>, line: &str, out: &Sender<String>) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return protocol::err_line(&e),
    };
    match request {
        Request::Open {
            program,
            source,
            queue,
            policy,
            observe,
        } => {
            let spec = match (&program, &source) {
                (Some(p), None) => ProgramSpec::Builtin(p),
                (None, Some(s)) => ProgramSpec::Source(s),
                _ => {
                    return protocol::err_line(
                        "open needs exactly one of \"program\" or \"source\"",
                    )
                }
            };
            match server.open(spec, queue, policy, observe) {
                Ok(info) => protocol::opened_line(&info),
                Err(e) => protocol::err_line(&e),
            }
        }
        Request::Event {
            session,
            input,
            value,
        } => match server.event(session, &input, value) {
            Ok(outcome) => protocol::event_line(outcome),
            Err(e) => protocol::err_line(&e),
        },
        Request::Batch { session, events } => match server.batch(session, &events) {
            Ok(outcome) => protocol::batch_line(&outcome),
            Err(e) => protocol::err_line(&e),
        },
        Request::Query { session } => match server.query(session) {
            Ok(info) => protocol::query_line(&info),
            Err(e) => protocol::err_line(&e),
        },
        Request::Subscribe { session } => match server.subscribe(session) {
            Ok(rx) => {
                // Forward updates until the session closes or the client
                // goes away; the writer thread owns actual socket I/O.
                // A `closed` update is always the stream's final message,
                // so the forwarder ends right after relaying it.
                let out = out.clone();
                thread::spawn(move || {
                    for update in rx.iter() {
                        let is_final = matches!(update, crate::protocol::Update::Closed { .. });
                        if out.send(protocol::update_line(&update)).is_err() || is_final {
                            break;
                        }
                    }
                });
                protocol::subscribed_line(session)
            }
            Err(e) => protocol::err_line(&e),
        },
        Request::Stats { session } => match session {
            Some(id) => match server.session_stats(id) {
                Ok(stats) => protocol::session_stats_line(&stats),
                Err(e) => protocol::err_line(&e),
            },
            None => {
                let (global, sessions) = server.stats();
                protocol::stats_line(&global, &sessions)
            }
        },
        Request::Metrics => protocol::metrics_line(&server.metrics_text()),
        Request::Trace { session } => match server.trace_subscribe(session) {
            Ok(mailbox) => {
                // Forward rendered trace lines until the session closes
                // the mailbox or the client goes away. Waits are bounded
                // so a dead connection is noticed within a second.
                let out = out.clone();
                thread::spawn(move || loop {
                    match mailbox.recv_timeout(std::time::Duration::from_secs(1)) {
                        TracePop::Line(line) => {
                            if out.send(line).is_err() {
                                mailbox.close();
                                break;
                            }
                        }
                        TracePop::Empty => {
                            if out.send(String::new()).is_err() {
                                // Writer is gone; skip the keepalive probe
                                // and stop pulling lines.
                                mailbox.close();
                                break;
                            }
                        }
                        TracePop::Closed => break,
                    }
                });
                protocol::trace_subscribed_line(session)
            }
            Err(e) => protocol::err_line(&e),
        },
        Request::Close { session } => match server.close(session) {
            Ok(()) => protocol::closed_line(session),
            Err(e) => protocol::err_line(&e),
        },
    }
}
