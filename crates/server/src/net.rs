//! TCP front end: newline-delimited JSON over a socket.
//!
//! One reader thread per connection parses request lines and dispatches
//! to the shared [`Server`]; one writer thread serializes replies and
//! subscription pushes from a *bounded* outbound queue, so streamed
//! updates interleave safely with request/reply traffic on the same
//! socket and a stalled client cannot pin unbounded memory.
//!
//! Overload hardening:
//!
//! * Request lines are length-capped ([`NetConfig::max_line_bytes`],
//!   1 MiB by default). An oversized or non-UTF-8 line is discarded up
//!   to its terminating newline and answered with a typed
//!   `protocol_error`; the connection itself survives.
//! * Every outbound push has a write deadline. A subscriber that stops
//!   draining its socket gets its backlog dropped, a final
//!   `{"update":"closed","reason":"slow_consumer"}` best-effort notice,
//!   and a hard disconnect — without stalling any other connection.
//!
//! Try it with `nc` (see the README quick-start):
//!
//! ```text
//! $ echo '{"cmd":"open","program":"counter"}' | nc localhost 7878
//! {"ok":true,"session":0,"program":"counter","inputs":["Mouse.clicks"],"initial":{"Int":0}}
//! ```

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::protocol::{self, EnqueueOutcome, Request, Update};
use crate::registry::ProgramSpec;
use crate::server::Server;
use crate::session::TracePop;

/// Tuning knobs for the TCP front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Longest accepted request line in bytes (excluding the newline).
    /// Longer lines are discarded and answered with `protocol_error`.
    pub max_line_bytes: usize,
    /// Outbound queue capacity in lines. When full, pushes wait up to
    /// `write_deadline` for the writer to drain before declaring the
    /// client a slow consumer.
    pub outbound_queue: usize,
    /// How long a reply or subscription push may wait on a full
    /// outbound queue (and how long a blocked socket write may take)
    /// before the connection is cut.
    pub write_deadline: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_line_bytes: 1024 * 1024,
            outbound_queue: 1024,
            write_deadline: Duration::from_secs(2),
        }
    }
}

/// Monotonic counters for the whole TCP front end (all connections).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Request frames rejected for oversize or invalid UTF-8.
    pub frames_rejected: u64,
    /// Connections cut because they stopped draining their queue.
    pub slow_disconnects: u64,
}

static FRAMES_REJECTED: AtomicU64 = AtomicU64::new(0);
static SLOW_DISCONNECTS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the front-end counters, for `/metrics`.
pub fn counters() -> NetCounters {
    NetCounters {
        frames_rejected: FRAMES_REJECTED.load(Ordering::Relaxed),
        slow_disconnects: SLOW_DISCONNECTS.load(Ordering::Relaxed),
    }
}

/// Accepts connections forever, one handler thread per client.
pub fn serve(server: Arc<Server>, listener: TcpListener) {
    serve_with(server, listener, NetConfig::default());
}

/// [`serve`] with explicit front-end tuning.
pub fn serve_with(server: Arc<Server>, listener: TcpListener, config: NetConfig) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let server = Arc::clone(&server);
                thread::spawn(move || handle_client_with(server, stream, config));
            }
            Err(_) => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded outbound queue
// ---------------------------------------------------------------------------

/// What happened to an outbound line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    /// Queued for the writer.
    Sent,
    /// The queue stayed full past the deadline: the client is not
    /// draining its socket.
    TimedOut,
    /// The connection is already closing; the line was dropped.
    Closed,
}

struct OutboundState {
    lines: VecDeque<String>,
    /// No further sends are accepted; the writer drains what is queued
    /// (usually nothing, or one final notice) and shuts the socket down.
    closed: bool,
}

/// Bounded MPSC line queue between request/forwarder threads and the
/// one writer thread. Producers block (with a deadline) when it fills;
/// the slow-consumer path clears it so the cut is never delayed behind
/// a backlog the client will never read.
struct OutboundQueue {
    inner: Mutex<OutboundState>,
    /// Signalled when space frees up (producers wait here).
    space: Condvar,
    /// Signalled when lines arrive or the queue closes (writer waits here).
    ready: Condvar,
    cap: usize,
}

impl OutboundQueue {
    fn new(cap: usize) -> Arc<Self> {
        Arc::new(OutboundQueue {
            inner: Mutex::new(OutboundState {
                lines: VecDeque::new(),
                closed: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            cap: cap.max(1),
        })
    }

    fn send_with_deadline(&self, line: String, deadline: Instant) -> SendOutcome {
        let mut st = self.inner.lock().unwrap();
        loop {
            if st.closed {
                return SendOutcome::Closed;
            }
            if st.lines.len() < self.cap {
                st.lines.push_back(line);
                self.ready.notify_one();
                return SendOutcome::Sent;
            }
            let now = Instant::now();
            if now >= deadline {
                return SendOutcome::TimedOut;
            }
            let (guard, _) = self.space.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Blocks until a line is available; `None` once closed and drained.
    fn pop(&self) -> Option<String> {
        let mut st = self.inner.lock().unwrap();
        loop {
            if let Some(line) = st.lines.pop_front() {
                self.space.notify_all();
                return Some(line);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Normal shutdown: stop accepting sends, let the writer drain.
    fn close(&self) {
        let mut st = self.inner.lock().unwrap();
        st.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Slow-consumer cut: drop the backlog the client will never read,
    /// queue one final notice, and close.
    fn poison_slow(&self, final_line: String) {
        let mut st = self.inner.lock().unwrap();
        if !st.closed {
            st.lines.clear();
            st.lines.push_back(final_line);
            st.closed = true;
        }
        self.ready.notify_all();
        self.space.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

// ---------------------------------------------------------------------------
// Capped frame reader
// ---------------------------------------------------------------------------

enum Frame {
    /// A complete line within the cap (newline stripped).
    Line(String),
    /// The line was discarded; `0` is a typed error detail.
    Rejected(String),
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-terminated frame without ever buffering more than
/// `max` payload bytes: once a line exceeds the cap, the remainder is
/// consumed and thrown away up to the newline, so a 100 MiB line costs
/// streaming reads but no proportional memory.
fn read_frame(reader: &mut BufReader<TcpStream>, max: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (newline_at, chunk_len, overflow) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                // EOF. A partial unterminated line is treated as final.
                if buf.is_empty() {
                    return Ok(Frame::Eof);
                }
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => (Some(pos), chunk.len(), buf.len() + pos > max),
                None => (None, chunk.len(), buf.len() + chunk.len() > max),
            }
        };
        match (newline_at, overflow) {
            (Some(pos), false) => {
                let chunk = reader.fill_buf()?;
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                break;
            }
            (Some(pos), true) => {
                let dropped = buf.len() + pos;
                reader.consume(pos + 1);
                return Ok(Frame::Rejected(format!(
                    "line of {dropped} bytes exceeds the {max} byte limit"
                )));
            }
            (None, false) => {
                let chunk = reader.fill_buf()?;
                buf.extend_from_slice(chunk);
                reader.consume(chunk_len);
            }
            (None, true) => {
                // Discard mode: swallow the rest of this line without
                // accumulating it, then reject.
                let mut dropped = buf.len() + chunk_len;
                buf.clear();
                reader.consume(chunk_len);
                loop {
                    let (pos, len) = {
                        let chunk = reader.fill_buf()?;
                        if chunk.is_empty() {
                            // EOF inside an oversized line.
                            return Ok(Frame::Eof);
                        }
                        (chunk.iter().position(|&b| b == b'\n'), chunk.len())
                    };
                    match pos {
                        Some(p) => {
                            dropped += p;
                            reader.consume(p + 1);
                            return Ok(Frame::Rejected(format!(
                                "line of {dropped} bytes exceeds the {max} byte limit"
                            )));
                        }
                        None => {
                            dropped += len;
                            reader.consume(len);
                        }
                    }
                }
            }
        }
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Frame::Line(s)),
        Err(_) => Ok(Frame::Rejected("request line is not valid UTF-8".into())),
    }
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

/// Runs one client connection to completion (EOF or socket error) with
/// default tuning.
pub fn handle_client(server: Arc<Server>, stream: TcpStream) {
    handle_client_with(server, stream, NetConfig::default());
}

/// [`handle_client`] with explicit front-end tuning.
pub fn handle_client_with(server: Arc<Server>, stream: TcpStream, config: NetConfig) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Request/reply ping-pong must not pay Nagle latency.
    let _ = stream.set_nodelay(true);
    // A blocked socket write is bounded by the same deadline as queue
    // waits, so a stuffed kernel buffer cannot wedge the writer thread.
    let _ = stream.set_write_timeout(Some(config.write_deadline.max(Duration::from_millis(1))));
    let out = OutboundQueue::new(config.outbound_queue);

    let writer_out = Arc::clone(&out);
    let mut write_half = stream;
    let writer = thread::spawn(move || {
        while let Some(line) = writer_out.pop() {
            if write_half
                .write_all(line.as_bytes())
                .and_then(|()| write_half.write_all(b"\n"))
                .and_then(|()| write_half.flush())
                .is_err()
            {
                writer_out.close();
                break;
            }
        }
        // Unblocks a reader parked in fill_buf and tells the peer the
        // stream is over even if it never reads another byte.
        let _ = write_half.shutdown(Shutdown::Both);
    });

    let mut reader = BufReader::new(read_half);
    while let Ok(frame) = read_frame(&mut reader, config.max_line_bytes) {
        let reply = match frame {
            Frame::Eof => break,
            Frame::Rejected(detail) => {
                FRAMES_REJECTED.fetch_add(1, Ordering::Relaxed);
                protocol::protocol_error_line(&detail)
            }
            Frame::Line(line) => {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                // HTTP-ish escape hatch: a Prometheus scraper (or curl)
                // speaking plain HTTP gets one response and a closed
                // connection.
                if let Some(rest) = line.strip_prefix("GET ") {
                    let deadline = Instant::now() + config.write_deadline;
                    let _ = out.send_with_deadline(http_response(&server, rest), deadline);
                    break;
                }
                dispatch(&server, line, &out, config)
            }
        };
        if reply.is_empty() {
            // Silent cluster verbs (journal-append, snapshot-ship,
            // heartbeat) produce no reply line.
            continue;
        }
        let deadline = Instant::now() + config.write_deadline;
        match out.send_with_deadline(reply, deadline) {
            SendOutcome::Sent => {}
            SendOutcome::TimedOut => {
                // The client keeps sending requests but never reads the
                // replies: same pathology as a slow subscriber.
                SLOW_DISCONNECTS.fetch_add(1, Ordering::Relaxed);
                out.poison_slow(protocol::err_line("slow_consumer"));
                break;
            }
            SendOutcome::Closed => break,
        }
    }
    out.close();
    let _ = writer.join();
}

/// Builds a minimal HTTP/1.0 response for `GET <path> ...` request lines.
/// Only `/metrics` (this peer) and `/metrics?federate=1` (the whole
/// cluster, `peer`-labelled) exist. The writer thread appends one `\n` to
/// every outbound line, so the advertised `Content-Length` counts it.
fn http_response(server: &Arc<Server>, request_rest: &str) -> String {
    let path = request_rest.split_whitespace().next().unwrap_or("");
    let (status, content_type, body) = if path == "/metrics" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            server.metrics_text(),
        )
    } else if path == "/metrics?federate=1" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            server.federated_metrics_text(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no such path {path}\n"),
        )
    };
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len() + 1,
    )
}

/// Pushes one streamed line, declaring the connection a slow consumer
/// (backlog dropped, final `closed{reason:"slow_consumer"}` notice,
/// counter bumped) if it cannot be queued within the deadline.
/// Returns `false` once the forwarder should stop.
fn forward_or_cut(out: &OutboundQueue, line: String, session: u64, config: NetConfig) -> bool {
    let deadline = Instant::now() + config.write_deadline;
    match out.send_with_deadline(line, deadline) {
        SendOutcome::Sent => true,
        SendOutcome::Closed => false,
        SendOutcome::TimedOut => {
            SLOW_DISCONNECTS.fetch_add(1, Ordering::Relaxed);
            out.poison_slow(protocol::update_line(&Update::Closed {
                session,
                reason: "slow_consumer".to_string(),
            }));
            false
        }
    }
}

fn dispatch(
    server: &Arc<Server>,
    line: &str,
    out: &Arc<OutboundQueue>,
    config: NetConfig,
) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => return protocol::err_line(&e),
    };
    match request {
        Request::Open {
            program,
            source,
            queue,
            policy,
            observe,
            session,
        } => {
            let spec = match (&program, &source) {
                (Some(p), None) => ProgramSpec::Builtin(p),
                (None, Some(s)) => ProgramSpec::Source(s),
                _ => {
                    return protocol::err_line(
                        "open needs exactly one of \"program\" or \"source\"",
                    )
                }
            };
            let opened = match session {
                // Cluster-keyed open: placement chose the id.
                Some(key) => server.open_with_key(key, spec, queue, policy, observe),
                None => server.open(spec, queue, policy, observe),
            };
            match opened {
                Ok(info) => protocol::opened_line(&info),
                Err(e) => protocol::err_line(&e),
            }
        }
        Request::Event {
            session,
            input,
            value,
            trace,
        } => match server.event_traced(session, &input, value, trace) {
            Ok(EnqueueOutcome::Shed { retry_after_ms }) => {
                protocol::overloaded_line(retry_after_ms)
            }
            Ok(outcome) => protocol::event_line(outcome),
            Err(e) => err_or_moved(server, session, e),
        },
        Request::Batch { session, events } => match server.batch(session, &events) {
            // Admission is all-or-nothing per batch: a shed batch had
            // nothing enqueued, so the whole reply is the typed
            // overload signal with its retry hint.
            Ok(outcome) if outcome.shed > 0 => protocol::overloaded_line(outcome.retry_after_ms),
            Ok(outcome) => protocol::batch_line(&outcome),
            Err(e) => err_or_moved(server, session, e),
        },
        Request::Query { session } => match server.query(session) {
            Ok(info) => protocol::query_line(&info),
            Err(e) => err_or_moved(server, session, e),
        },
        Request::Subscribe { session } => match server.subscribe(session) {
            Ok(rx) => {
                // Forward updates until the session closes, the client
                // goes away, or the client stops draining; the writer
                // thread owns actual socket I/O. A `closed` (or `moved`)
                // update is always the stream's final message, so the
                // forwarder ends right after relaying it.
                let out = Arc::clone(out);
                thread::spawn(move || {
                    for update in rx.iter() {
                        let is_final =
                            matches!(update, Update::Closed { .. } | Update::Moved { .. });
                        let line = protocol::update_line(&update);
                        if !forward_or_cut(&out, line, session, config) || is_final {
                            break;
                        }
                    }
                });
                protocol::subscribed_line(session)
            }
            Err(e) => err_or_moved(server, session, e),
        },
        Request::Stats { session } => match session {
            Some(id) => match server.session_stats(id) {
                Ok(stats) => protocol::session_stats_line(&stats),
                Err(e) => protocol::err_line(&e),
            },
            None => {
                let (global, sessions) = server.stats();
                protocol::stats_line(&global, &sessions)
            }
        },
        Request::Metrics { cluster } => {
            if cluster {
                protocol::metrics_line(&server.federated_metrics_text())
            } else {
                protocol::metrics_line(&server.metrics_text())
            }
        }
        Request::Blackbox => {
            let bb = crate::blackbox::blackbox();
            protocol::blackbox_line(&crate::blackbox::Blackbox::render_ndjson(&bb.snapshot()))
        }
        Request::Trace { session } => match server.trace_subscribe(session) {
            Ok(mailbox) => {
                // Forward rendered trace lines until the session closes
                // the mailbox or the client goes away. Waits are bounded
                // so a dead connection is noticed within a second.
                let out = Arc::clone(out);
                thread::spawn(move || loop {
                    match mailbox.recv_timeout(Duration::from_secs(1)) {
                        TracePop::Line(line) => {
                            if !forward_or_cut(&out, line, session, config) {
                                mailbox.close();
                                break;
                            }
                        }
                        TracePop::Empty => {
                            // Keepalive probe; also notices a closed
                            // connection so the mailbox gets released.
                            if out.is_closed() {
                                mailbox.close();
                                break;
                            }
                        }
                        TracePop::Closed => break,
                    }
                });
                protocol::trace_subscribed_line(session)
            }
            Err(e) => protocol::err_line(&e),
        },
        Request::Describe { session } => match server.describe(session) {
            Ok(info) => protocol::describe_line(&info),
            Err(e) => err_or_moved(server, session, e),
        },
        Request::Close { session } => match server.close(session) {
            Ok(()) => protocol::closed_line(session),
            Err(e) => err_or_moved(server, session, e),
        },
        // --- cluster peer verbs -------------------------------------
        Request::Hello { from, addr } => match server.cluster() {
            Some(cluster) => cluster.handle_hello(from, &addr),
            None => protocol::err_line("not in cluster mode"),
        },
        Request::Place { key } => match server.cluster() {
            Some(cluster) => cluster.handle_place(key),
            None => protocol::err_line("not in cluster mode"),
        },
        Request::Takeover {
            from,
            addr,
            sessions,
            traces,
            epochs,
        } => match server.cluster() {
            Some(cluster) => cluster.handle_takeover(from, &addr, &sessions, &traces, &epochs),
            None => protocol::err_line("not in cluster mode"),
        },
        // Streamed verbs are silent even outside cluster mode: they are
        // fire-and-forget, so an error reply would desynchronize the
        // sender's framing. The empty string is skipped by the caller.
        Request::JournalAppend {
            from,
            session,
            entry,
            epoch,
        } => {
            if let Some(cluster) = server.cluster() {
                cluster.handle_journal_append(from, session, entry, epoch);
            }
            String::new()
        }
        Request::SnapshotShip {
            from,
            session,
            meta,
            snapshot,
            through,
            dropped,
            trace,
            epoch,
        } => {
            if let Some(cluster) = server.cluster() {
                cluster.handle_snapshot_ship(
                    from, session, meta, snapshot, through, dropped, trace, epoch,
                );
            }
            String::new()
        }
        Request::Heartbeat { from } => {
            if let Some(cluster) = server.cluster() {
                cluster.handle_heartbeat(from);
            }
            String::new()
        }
    }
}

/// An `unknown session` error becomes a typed `moved` redirect when the
/// cluster knows (or can compute) where the session lives now.
fn err_or_moved(server: &Arc<Server>, session: u64, e: String) -> String {
    if e.starts_with("unknown session") {
        if let Some((peer, trace, epoch)) = server.cluster().and_then(|c| c.redirect_for(session)) {
            return protocol::moved_line(session, &peer, trace, epoch);
        }
    }
    protocol::err_line(&e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use std::io::Read;

    fn start(config: NetConfig) -> (Arc<Server>, std::net::SocketAddr) {
        let server = Arc::new(Server::start(ServerConfig {
            shards: 1,
            ..ServerConfig::default()
        }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        thread::spawn(move || serve_with(srv, listener, config));
        (server, addr)
    }

    fn read_line(reader: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() && !line.is_empty() {
                continue; // trace keepalive blank line
            }
            return line.trim().to_string();
        }
    }

    #[test]
    fn oversized_line_is_rejected_but_the_connection_survives() {
        let before = counters().frames_rejected;
        let (_server, addr) = start(NetConfig {
            max_line_bytes: 64 * 1024,
            ..NetConfig::default()
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // A 100 MiB line, streamed in 1 MiB chunks so the test itself
        // stays cheap; the server must discard it without buffering.
        let chunk = vec![b'a'; 1024 * 1024];
        for _ in 0..100 {
            writer.write_all(&chunk).unwrap();
        }
        writer.write_all(b"\n").unwrap();
        let reply = read_line(&mut reader);
        assert!(
            reply.contains("\"error\":\"protocol_error\""),
            "expected typed protocol_error, got: {reply}"
        );
        assert!(reply.contains("exceeds the 65536 byte limit"), "{reply}");

        // The same connection still serves requests afterwards.
        writer
            .write_all(b"{\"cmd\":\"open\",\"program\":\"counter\"}\n")
            .unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(counters().frames_rejected > before);
    }

    #[test]
    fn describe_round_trips_source_and_fingerprint() {
        let (server, addr) = start(NetConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // Ad-hoc source: describe must echo it back verbatim.
        let src = "main = foldp (\\\\e n -> n + 1) 0 Mouse.clicks";
        writer
            .write_all(format!("{{\"cmd\":\"open\",\"source\":\"{src}\"}}\n").as_bytes())
            .unwrap();
        let opened = read_line(&mut reader);
        assert!(opened.contains("\"ok\":true"), "{opened}");
        let parsed: serde_json::Value = serde_json::from_str(&opened).unwrap();
        let sid = match parsed.get("session") {
            Some(serde_json::Value::I64(n)) => *n as u64,
            other => panic!("bad session field: {other:?}"),
        };

        writer
            .write_all(format!("{{\"cmd\":\"describe\",\"session\":{sid}}}\n").as_bytes())
            .unwrap();
        let described = read_line(&mut reader);
        assert!(described.contains("\"ok\":true"), "{described}");
        let parsed: serde_json::Value = serde_json::from_str(&described).unwrap();
        assert_eq!(
            parsed.get("source").and_then(serde_json::Value::as_str),
            Some("main = foldp (\\e n -> n + 1) 0 Mouse.clicks")
        );
        assert_eq!(
            parsed.get("program").and_then(serde_json::Value::as_str),
            Some("<source>")
        );
        let fingerprint = parsed.get("fingerprint").cloned();
        assert!(
            matches!(
                fingerprint,
                Some(serde_json::Value::I64(_) | serde_json::Value::U64(_))
            ),
            "{described}"
        );
        // The in-process API agrees with the wire reply.
        let info = server.describe(sid).unwrap();
        assert_eq!(info.inputs, vec!["Mouse.clicks".to_string()]);

        // A native-graph builtin has no source, served as null.
        let native = server
            .open(ProgramSpec::Builtin("crashy"), None, None, false)
            .unwrap();
        let desc = server.describe(native.session).unwrap();
        assert_eq!(desc.source, None);
        writer
            .write_all(
                format!("{{\"cmd\":\"describe\",\"session\":{}}}\n", native.session).as_bytes(),
            )
            .unwrap();
        let described = read_line(&mut reader);
        assert!(described.contains("\"source\":null"), "{described}");

        // Unknown sessions get a plain error.
        writer
            .write_all(b"{\"cmd\":\"describe\",\"session\":999}\n")
            .unwrap();
        assert!(read_line(&mut reader).contains("\"ok\":false"));
    }

    #[test]
    fn invalid_utf8_line_is_rejected_with_a_typed_error() {
        let (_server, addr) = start(NetConfig::default());
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"\xff\xfe{\"cmd\":\"stats\"}\n").unwrap();
        let reply = read_line(&mut reader);
        assert!(
            reply.contains("\"error\":\"protocol_error\"") && reply.contains("UTF-8"),
            "{reply}"
        );
        writer.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
        let reply = read_line(&mut reader);
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }

    #[test]
    fn slow_subscriber_is_cut_without_stalling_its_peers() {
        let before = counters().slow_disconnects;
        let (server, addr) = start(NetConfig {
            outbound_queue: 8,
            write_deadline: Duration::from_millis(100),
            ..NetConfig::default()
        });

        // Open a session whose output echoes big strings so each push
        // is fat enough to fill kernel socket buffers quickly.
        let info = server
            .open(ProgramSpec::Builtin("latest-word"), None, None, false)
            .unwrap();
        let sid = info.session;

        // The slow client subscribes and then never reads again.
        let slow = TcpStream::connect(addr).unwrap();
        let mut slow_writer = slow.try_clone().unwrap();
        let mut slow_reader = BufReader::new(slow);
        slow_writer
            .write_all(format!("{{\"cmd\":\"subscribe\",\"session\":{sid}}}\n").as_bytes())
            .unwrap();
        assert!(read_line(&mut slow_reader).contains("\"ok\":true"));

        // The healthy client subscribes too and keeps draining.
        let healthy = TcpStream::connect(addr).unwrap();
        let mut healthy_writer = healthy.try_clone().unwrap();
        let mut healthy_reader = BufReader::new(healthy);
        healthy_writer
            .write_all(format!("{{\"cmd\":\"subscribe\",\"session\":{sid}}}\n").as_bytes())
            .unwrap();
        assert!(read_line(&mut healthy_reader).contains("\"ok\":true"));

        let healthy_updates = Arc::new(AtomicU64::new(0));
        let drained = Arc::clone(&healthy_updates);
        thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match healthy_reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if line.contains("\"update\":\"changed\"") {
                            drained.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        });

        // Pump fat updates until the slow connection is cut.
        let word = "w".repeat(64 * 1024);
        let start_time = Instant::now();
        while counters().slow_disconnects == before {
            assert!(
                start_time.elapsed() < Duration::from_secs(30),
                "slow subscriber was never disconnected"
            );
            let _ = server.event(
                sid,
                "Words.input",
                elm_runtime::PlainValue::Str(word.clone()),
            );
            let _ = server.query(sid);
        }

        // The slow socket is actually torn down: reads drain whatever
        // was in flight and then hit EOF (or a reset).
        let mut sink = [0u8; 64 * 1024];
        let inner = slow_reader.get_mut();
        inner
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        loop {
            match inner.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => {
                    assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::ConnectionReset | io::ErrorKind::BrokenPipe
                        ),
                        "unexpected read error on cut socket: {e:?}"
                    );
                    break;
                }
            }
        }

        // Peers kept receiving throughout.
        let seen = healthy_updates.load(Ordering::Relaxed);
        let _ = server.event(
            sid,
            "Words.input",
            elm_runtime::PlainValue::Str("tail".to_string()),
        );
        let _ = server.query(sid);
        let start_time = Instant::now();
        while healthy_updates.load(Ordering::Relaxed) <= seen {
            assert!(
                start_time.elapsed() < Duration::from_secs(10),
                "healthy subscriber stalled after the slow one was cut"
            );
            thread::sleep(Duration::from_millis(10));
        }
        assert!(counters().slow_disconnects > before);
    }
}
