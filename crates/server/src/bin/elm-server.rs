//! The `elm-server` daemon: hosts FRP sessions over TCP.
//!
//! ```text
//! elm-server [--addr 127.0.0.1:7878] [--shards N] [--queue N]
//!            [--policy block|drop-oldest|coalesce] [--idle-ms N]
//!            [--peer-id I --peers HOST:PORT,HOST:PORT,...]
//!            [--heartbeat-ms N] [--takeover-ms N] [--snapshot-interval N]
//! ```
//!
//! Cluster mode: pass `--peer-id` and `--peers` to join an N-process
//! peer group. `--peers` lists every member's address (including this
//! process's own, at position `--peer-id`); the process binds that
//! address, replicates each hosted session's journal to its rendezvous
//! replica, and takes over a dead peer's sessions after `--takeover-ms`
//! without a heartbeat.

use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use elm_server::{net, BackpressurePolicy, Cluster, ClusterConfig, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: elm-server [--addr HOST:PORT] [--shards N] [--queue N] \
         [--policy block|drop-oldest|coalesce] [--idle-ms N] \
         [--peer-id I --peers HOST:PORT,...] [--heartbeat-ms N] \
         [--takeover-ms N] [--snapshot-interval N]"
    );
    exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut peer_id: Option<usize> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut heartbeat_ms: u64 = 100;
    let mut takeover_ms: u64 = 1000;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--shards" => config.shards = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.session.queue_capacity = value().parse().unwrap_or_else(|_| usage())
            }
            "--policy" => {
                config.session.policy =
                    BackpressurePolicy::parse(&value()).unwrap_or_else(|| usage())
            }
            "--idle-ms" => {
                config.idle_timeout = Some(Duration::from_millis(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--peer-id" => peer_id = Some(value().parse().unwrap_or_else(|_| usage())),
            "--peers" => {
                peers = value()
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--heartbeat-ms" => heartbeat_ms = value().parse().unwrap_or_else(|_| usage()),
            "--takeover-ms" => takeover_ms = value().parse().unwrap_or_else(|_| usage()),
            "--snapshot-interval" => {
                config.session.snapshot_interval = value().parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(id) = peer_id {
        // Cluster mode binds the peer's own published address.
        if id >= peers.len() {
            eprintln!(
                "elm-server: --peer-id {id} is out of range for {} peer(s)",
                peers.len()
            );
            exit(2);
        }
        addr = peers[id].clone();
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("elm-server: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    // The flight recorder outlives whatever kills the process: dump it on
    // panic (SIGKILL needs no hook — the adopting peer dumps instead).
    {
        let peer = peer_id;
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let name = match peer {
                Some(id) => format!("BLACKBOX_panic_peer{id}.ndjson"),
                None => "BLACKBOX_panic.ndjson".to_string(),
            };
            elm_server::blackbox().dump_to(std::path::Path::new(&name));
            eprintln!("elm-server: panic — flight recorder dumped to {name}");
            default_hook(info);
        }));
    }

    let server = Arc::new(Server::start(config));
    let _cluster = peer_id.map(|id| {
        elm_server::blackbox().set_peer(id);
        let mut cc = ClusterConfig::new(id, peers.clone());
        cc.heartbeat = Duration::from_millis(heartbeat_ms.max(1));
        cc.takeover = Duration::from_millis(takeover_ms.max(1));
        let cluster = Cluster::start(Arc::clone(&server), cc);
        println!(
            "elm-server peer {id}/{} in cluster mode (heartbeat {heartbeat_ms}ms, \
             takeover {takeover_ms}ms)",
            peers.len()
        );
        cluster
    });
    println!(
        "elm-server listening on {addr} ({} shards, queue {}, policy {})",
        config.shards,
        config.session.queue_capacity,
        config.session.policy.label()
    );
    println!("builtin programs: {}", server.registry().names().join(", "));
    net::serve(server, listener);
}
