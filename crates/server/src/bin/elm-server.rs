//! The `elm-server` daemon: hosts FRP sessions over TCP.
//!
//! ```text
//! elm-server [--addr 127.0.0.1:7878] [--shards N] [--queue N]
//!            [--policy block|drop-oldest|coalesce] [--idle-ms N]
//! ```

use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use elm_server::{net, BackpressurePolicy, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: elm-server [--addr HOST:PORT] [--shards N] [--queue N] \
         [--policy block|drop-oldest|coalesce] [--idle-ms N]"
    );
    exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--shards" => config.shards = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.session.queue_capacity = value().parse().unwrap_or_else(|_| usage())
            }
            "--policy" => {
                config.session.policy =
                    BackpressurePolicy::parse(&value()).unwrap_or_else(|| usage())
            }
            "--idle-ms" => {
                config.idle_timeout = Some(Duration::from_millis(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("elm-server: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    let server = Arc::new(Server::start(config));
    println!(
        "elm-server listening on {addr} ({} shards, queue {}, policy {})",
        config.shards,
        config.session.queue_capacity,
        config.session.policy.label()
    );
    println!("builtin programs: {}", server.registry().names().join(", "));
    net::serve(server, listener);
}
