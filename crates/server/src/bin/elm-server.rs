//! The `elm-server` daemon: hosts FRP sessions over TCP.
//!
//! ```text
//! elm-server [--addr 127.0.0.1:7878] [--shards N] [--queue N]
//!            [--policy block|drop-oldest|coalesce] [--idle-ms N]
//!            [--peer-id I --peers HOST:PORT,HOST:PORT,...]
//!            [--heartbeat-ms N] [--takeover-ms N] [--snapshot-interval N]
//!            [--net-seed S] [--partition-window A:B:START_MS:DUR_MS]...
//!            [--no-fencing]
//! ```
//!
//! Cluster mode: pass `--peer-id` and `--peers` to join an N-process
//! peer group. `--peers` lists every member's address (including this
//! process's own, at position `--peer-id`); the process binds that
//! address, replicates each hosted session's journal to its rendezvous
//! replica, and takes over a dead peer's sessions after `--takeover-ms`
//! without a heartbeat.
//!
//! Chaos plumbing (cluster mode only): `--net-seed` turns on the
//! deterministic network-fault proxy on the peer wire with light random
//! delay/drop/duplicate/reorder; `--partition-window A:B:START_MS:DUR_MS`
//! (repeatable) schedules a full bidirectional cut between peers `A` and
//! `B` relative to process start; `--no-fencing` disables epoch fencing
//! (for demonstrating why it exists — never in production).

use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use elm_environment::fault::FaultPlan;
use elm_server::{
    net, BackpressurePolicy, Cluster, ClusterConfig, NetFault, NetFaultConfig, PartitionWindow,
    Server, ServerConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: elm-server [--addr HOST:PORT] [--shards N] [--queue N] \
         [--policy block|drop-oldest|coalesce] [--idle-ms N] \
         [--peer-id I --peers HOST:PORT,...] [--heartbeat-ms N] \
         [--takeover-ms N] [--snapshot-interval N] [--net-seed S] \
         [--partition-window A:B:START_MS:DUR_MS]... [--no-fencing]"
    );
    exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut peer_id: Option<usize> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut heartbeat_ms: u64 = 100;
    let mut takeover_ms: u64 = 1000;
    let mut net_seed: Option<u64> = None;
    let mut windows: Vec<PartitionWindow> = Vec::new();
    let mut fencing = true;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--shards" => config.shards = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                config.session.queue_capacity = value().parse().unwrap_or_else(|_| usage())
            }
            "--policy" => {
                config.session.policy =
                    BackpressurePolicy::parse(&value()).unwrap_or_else(|| usage())
            }
            "--idle-ms" => {
                config.idle_timeout = Some(Duration::from_millis(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--peer-id" => peer_id = Some(value().parse().unwrap_or_else(|_| usage())),
            "--peers" => {
                peers = value()
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--heartbeat-ms" => heartbeat_ms = value().parse().unwrap_or_else(|_| usage()),
            "--takeover-ms" => takeover_ms = value().parse().unwrap_or_else(|_| usage()),
            "--snapshot-interval" => {
                config.session.snapshot_interval = value().parse().unwrap_or_else(|_| usage())
            }
            "--net-seed" => net_seed = Some(value().parse().unwrap_or_else(|_| usage())),
            "--partition-window" => {
                windows.push(PartitionWindow::parse(&value()).unwrap_or_else(|e| {
                    eprintln!("elm-server: bad --partition-window: {e}");
                    exit(2);
                }))
            }
            "--no-fencing" => fencing = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if let Some(id) = peer_id {
        // Cluster mode binds the peer's own published address.
        if id >= peers.len() {
            eprintln!(
                "elm-server: --peer-id {id} is out of range for {} peer(s)",
                peers.len()
            );
            exit(2);
        }
        addr = peers[id].clone();
    }

    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("elm-server: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    // The flight recorder outlives whatever kills the process: dump it on
    // panic (SIGKILL needs no hook — the adopting peer dumps instead).
    {
        let peer = peer_id;
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let name = match peer {
                Some(id) => format!("BLACKBOX_panic_peer{id}.ndjson"),
                None => "BLACKBOX_panic.ndjson".to_string(),
            };
            elm_server::blackbox().dump_to(std::path::Path::new(&name));
            eprintln!("elm-server: panic — flight recorder dumped to {name}");
            default_hook(info);
        }));
    }

    let server = Arc::new(Server::start(config));
    let _cluster = peer_id.map(|id| {
        elm_server::blackbox().set_peer(id);
        let mut cc = ClusterConfig::new(id, peers.clone());
        cc.heartbeat = Duration::from_millis(heartbeat_ms.max(1));
        cc.takeover = Duration::from_millis(takeover_ms.max(1));
        cc.fencing = fencing;
        if !fencing {
            eprintln!("elm-server: WARNING epoch fencing disabled (--no-fencing)");
        }
        if net_seed.is_some() || !windows.is_empty() {
            // Random faults only when a seed was given; scheduled
            // partition windows work either way.
            let fault_config = match net_seed {
                Some(_) => NetFaultConfig::light(),
                None => NetFaultConfig::disabled(),
            };
            let plan = FaultPlan {
                seed: net_seed.unwrap_or(0),
                ..FaultPlan::disabled()
            };
            cc.netfault = Some(Arc::new(NetFault::new(
                plan,
                peers.len(),
                fault_config,
                windows.clone(),
            )));
            println!(
                "elm-server peer {id}: netfault active (seed {}, {} partition window(s))",
                net_seed.unwrap_or(0),
                windows.len()
            );
        }
        let cluster = Cluster::start(Arc::clone(&server), cc);
        println!(
            "elm-server peer {id}/{} in cluster mode (heartbeat {heartbeat_ms}ms, \
             takeover {takeover_ms}ms)",
            peers.len()
        );
        cluster
    });
    println!(
        "elm-server listening on {addr} ({} shards, queue {}, policy {})",
        config.shards,
        config.session.queue_capacity,
        config.session.policy.label()
    );
    println!("builtin programs: {}", server.registry().names().join(", "));
    net::serve(server, listener);
}
